//! Global, lock-free runtime counters for the node-level substrates.
//!
//! The paper attributes its kernel wins to two layers below the physics:
//! the threading runtime (Sec. 5.5's two-level work decomposition) and the
//! ZGEMM substrate (Sec. 5.6's Tensile-tuned GEMMs). These counters make
//! both layers observable from any binary without plumbing handles through
//! every call site: `bgw-par` records worker-pool dispatches and the time
//! spent inside pooled regions, `bgw-linalg` records GEMM packing versus
//! compute time.
//!
//! Counters are process-global, **monotonic** atomics. Readers take
//! [`snapshot`]s and difference them around a region of interest with
//! [`CounterSnapshot::delta`]; concurrent work from other threads is
//! included by design (the counters describe the process, not a call
//! tree — `bgw-trace` builds the call-tree view on top of these deltas).
//! There is deliberately no global reset: a reset interleaving with
//! another reader's snapshot pair silently destroys that reader's delta,
//! which is exactly the flake the old benchmark-harness `reset()` caused
//! under `cargo test`'s threaded runner. Harnesses that need isolation
//! serialize through [`exclusive_test_guard`] instead.
//!
//! ## Pool-time attribution
//!
//! Pooled parallel regions are split into *dispatch overhead*
//! (publish/wakeup plus the post-body quiesce wait, measured on the
//! dispatching thread) and *region execution* (body time summed over the
//! participating threads, each participant excluding any nested inline
//! parallel calls it made — those are charged once, to
//! [`CounterSnapshot::pool_inline_ns`]). Exclusive attribution means the
//! three pool time counters never double-count a nanosecond of body work.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

static POOL_DISPATCHES: AtomicU64 = AtomicU64::new(0);
static POOL_DISPATCH_NS: AtomicU64 = AtomicU64::new(0);
static POOL_REGION_NS: AtomicU64 = AtomicU64::new(0);
static POOL_INLINE_RUNS: AtomicU64 = AtomicU64::new(0);
static POOL_INLINE_NS: AtomicU64 = AtomicU64::new(0);
static GEMM_CALLS: AtomicU64 = AtomicU64::new(0);
static GEMM_PACK_NS: AtomicU64 = AtomicU64::new(0);
static GEMM_COMPUTE_NS: AtomicU64 = AtomicU64::new(0);
static FFT_GRIDS: AtomicU64 = AtomicU64::new(0);
static FFT_LINES: AtomicU64 = AtomicU64::new(0);
static FFT_NS: AtomicU64 = AtomicU64::new(0);
static COMM_COLLECTIVES: AtomicU64 = AtomicU64::new(0);
static COMM_FAULTS: AtomicU64 = AtomicU64::new(0);
static COMM_RETRIES: AtomicU64 = AtomicU64::new(0);
static COMM_CRASHES: AtomicU64 = AtomicU64::new(0);
static COMM_SHRINKS: AtomicU64 = AtomicU64::new(0);
static COMM_RECOVERY_NS: AtomicU64 = AtomicU64::new(0);
static CKPT_WRITES: AtomicU64 = AtomicU64::new(0);
static CKPT_READS: AtomicU64 = AtomicU64::new(0);
static CKPT_BYTES: AtomicU64 = AtomicU64::new(0);
static FF_HERMITICITY_DROPS: AtomicU64 = AtomicU64::new(0);
static DAG_TASKS: AtomicU64 = AtomicU64::new(0);
static DAG_STEALS: AtomicU64 = AtomicU64::new(0);
static DAG_REENQUEUED: AtomicU64 = AtomicU64::new(0);
static SERVE_REQUESTS: AtomicU64 = AtomicU64::new(0);
static SERVE_COMPLETED: AtomicU64 = AtomicU64::new(0);
static SERVE_HITS_MEM: AtomicU64 = AtomicU64::new(0);
static SERVE_HITS_DISK: AtomicU64 = AtomicU64::new(0);
static SERVE_MISSES: AtomicU64 = AtomicU64::new(0);
static SERVE_COALESCED: AtomicU64 = AtomicU64::new(0);
static SERVE_PREEMPTIONS: AtomicU64 = AtomicU64::new(0);
static SERVE_RETRIES: AtomicU64 = AtomicU64::new(0);
static SERVE_REENQUEUED: AtomicU64 = AtomicU64::new(0);
static SERVE_STORE_INVALID: AtomicU64 = AtomicU64::new(0);
static SERVE_QUEUE_NS: AtomicU64 = AtomicU64::new(0);
static SERVE_MEM_EVICTED: AtomicU64 = AtomicU64::new(0);
static SERVE_GC_REMOVED: AtomicU64 = AtomicU64::new(0);
static SERVE_GC_BYTES: AtomicU64 = AtomicU64::new(0);

/// Number of SIMD instruction-set lanes tracked by the per-ISA kernel
/// counters. Indices follow `bgw_num::simd::Isa::index()`: 0 scalar,
/// 1 neon, 2 avx2, 3 avx512 (this crate is dependency-free, so the
/// correspondence is by convention, pinned by tests on the consumer side).
pub const ISA_LANES: usize = 4;

/// Lowercase ISA names in [`ISA_LANES`] index order (matches
/// `bgw_num::simd::Isa::name()`).
pub const ISA_NAMES: [&str; ISA_LANES] = ["scalar", "neon", "avx2", "avx512"];

static GEMM_MK_CALLS: [AtomicU64; ISA_LANES] = [const { AtomicU64::new(0) }; ISA_LANES];
static GEMM_MK_PACK_NS: [AtomicU64; ISA_LANES] = [const { AtomicU64::new(0) }; ISA_LANES];
static GEMM_MK_COMPUTE_NS: [AtomicU64; ISA_LANES] = [const { AtomicU64::new(0) }; ISA_LANES];
static FFT_MK_CALLS: [AtomicU64; ISA_LANES] = [const { AtomicU64::new(0) }; ISA_LANES];

/// Point-in-time reading of every substrate counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Parallel regions executed on the persistent worker pool.
    pub pool_dispatches: u64,
    /// Dispatch overhead of pooled regions: job publish + worker wakeup
    /// plus the post-body quiesce wait, measured on the dispatching
    /// thread (excludes all body execution).
    pub pool_dispatch_ns: u64,
    /// Region body execution nanoseconds, summed over participating
    /// threads; each participant excludes nested inline parallel calls,
    /// so this never overlaps `pool_inline_ns`.
    pub pool_region_ns: u64,
    /// Parallel calls that ran inline (single worker requested, nested
    /// call, or the pool was busy with another dispatcher).
    pub pool_inline_runs: u64,
    /// Exclusive nanoseconds spent in inline parallel calls (nested
    /// inline calls are charged to themselves, not to their parent).
    pub pool_inline_ns: u64,
    /// Blocked/parallel/tuned ZGEMM invocations.
    pub gemm_calls: u64,
    /// Nanoseconds spent packing GEMM operand panels (summed over threads).
    pub gemm_pack_ns: u64,
    /// Nanoseconds spent in the GEMM microkernel sweep (summed over
    /// threads; overlapping threads each contribute their own time).
    pub gemm_compute_ns: u64,
    /// 3-D FFT grid transforms executed (each counts one `Fft3d` pass,
    /// whichever path — pooled, serial or batched-many — ran it).
    pub fft_grids: u64,
    /// 1-D line transforms executed inside 3-D passes (nx*ny + nx*nz +
    /// ny*nz per grid), the natural work unit of the batched driver.
    pub fft_lines: u64,
    /// Wall-clock nanoseconds spent inside `Fft3d` passes, measured on
    /// the calling thread (dispatch + gather/scatter + butterflies).
    pub fft_ns: u64,
    /// Slot-rendezvous collective operations entered (per rank).
    pub comm_collectives: u64,
    /// Fault events injected by the `bgw-comm` fault plan (all kinds).
    pub comm_faults: u64,
    /// Communicator retries: transient-fault backoff retries plus
    /// collective retransmits after a corrupted payload.
    pub comm_retries: u64,
    /// Permanent (injected or fatal) rank crashes observed by the runtime.
    pub comm_crashes: u64,
    /// Communicator shrinks performed by surviving ranks.
    pub comm_shrinks: u64,
    /// Nanoseconds spent inside `Comm::shrink` recovery, summed over
    /// the participating ranks.
    pub comm_recovery_ns: u64,
    /// Checkpoint records written through `bgw-io`.
    pub ckpt_writes: u64,
    /// Checkpoint records read back through `bgw-io`.
    pub ckpt_reads: u64,
    /// Checkpoint payload bytes moved (written + read).
    pub ckpt_bytes: u64,
    /// FF Sigma bilinear forms `q_k(n)` whose imaginary part exceeded the
    /// Hermiticity tolerance before being discarded. Taking `Re(q)` is
    /// only exact for a Hermitian spectral weight `B(omega_k)`; a nonzero
    /// count means that assumption was violated and spectral weight was
    /// silently dropped — surfaced instead of hidden (debug builds also
    /// assert).
    pub ff_hermiticity_drops: u64,
    /// Tasks executed by the `bgw-par` DAG scheduler (pooled or inline).
    pub dag_tasks: u64,
    /// DAG tasks a worker stole from another worker's deque.
    pub dag_steals: u64,
    /// DAG tasks re-enqueued by fault recovery (lost ranks' tasks only,
    /// not whole-phase redistribution).
    pub dag_reenqueued: u64,
    /// GW requests accepted into the serving queue (`bgw-serve`).
    pub serve_requests: u64,
    /// GW requests completed (successfully or with a typed error). The
    /// instantaneous queue depth is `serve_requests - serve_completed`.
    pub serve_completed: u64,
    /// Served requests whose W screening came from the in-memory cache.
    pub serve_hits_mem: u64,
    /// Served requests whose W screening was restarted from an on-disk
    /// artifact record (a cache hit that is a checkpoint read).
    pub serve_hits_disk: u64,
    /// Served requests whose W screening had to be computed from scratch.
    pub serve_misses: u64,
    /// Requests that shared another request's screening build within one
    /// coalesced batch (group size minus one, summed over groups).
    pub serve_coalesced: u64,
    /// Requests preempted mid-evaluation (checkpointed and re-enqueued in
    /// favor of a higher-priority request).
    pub serve_preemptions: u64,
    /// Transient-fault retries performed by the serving loop.
    pub serve_retries: u64,
    /// Requests re-enqueued after a crash mid-evaluation (only the dead
    /// request, never its batch mates).
    pub serve_reenqueued: u64,
    /// Artifact-store entries rejected as corrupt/torn and recomputed
    /// (a checksum failure downgraded to a miss, never a wrong hit).
    pub serve_store_invalid: u64,
    /// Nanoseconds requests spent queued before their evaluation began.
    pub serve_queue_ns: u64,
    /// Decoded screenings evicted from the in-memory cache by the
    /// cost-aware byte budget.
    pub serve_mem_evicted: u64,
    /// Artifact-store files (artifacts + partials) reclaimed by GC.
    pub serve_gc_removed: u64,
    /// Bytes reclaimed from the artifact store by GC.
    pub serve_gc_bytes: u64,
    /// ZGEMM calls dispatched to the scalar microkernel.
    pub gemm_mk_calls_scalar: u64,
    /// ZGEMM calls dispatched to the NEON microkernel.
    pub gemm_mk_calls_neon: u64,
    /// ZGEMM calls dispatched to the AVX2+FMA microkernel.
    pub gemm_mk_calls_avx2: u64,
    /// ZGEMM calls dispatched to the AVX-512 microkernel.
    pub gemm_mk_calls_avx512: u64,
    /// GEMM packing nanoseconds attributed to scalar-microkernel calls.
    pub gemm_mk_pack_ns_scalar: u64,
    /// GEMM packing nanoseconds attributed to NEON-microkernel calls.
    pub gemm_mk_pack_ns_neon: u64,
    /// GEMM packing nanoseconds attributed to AVX2-microkernel calls.
    pub gemm_mk_pack_ns_avx2: u64,
    /// GEMM packing nanoseconds attributed to AVX-512-microkernel calls.
    pub gemm_mk_pack_ns_avx512: u64,
    /// GEMM microkernel-sweep nanoseconds on the scalar variant.
    pub gemm_mk_compute_ns_scalar: u64,
    /// GEMM microkernel-sweep nanoseconds on the NEON variant.
    pub gemm_mk_compute_ns_neon: u64,
    /// GEMM microkernel-sweep nanoseconds on the AVX2 variant.
    pub gemm_mk_compute_ns_avx2: u64,
    /// GEMM microkernel-sweep nanoseconds on the AVX-512 variant.
    pub gemm_mk_compute_ns_avx512: u64,
    /// Batched-FFT butterfly passes executed by the scalar combine set.
    pub fft_mk_calls_scalar: u64,
    /// Batched-FFT butterfly passes executed by the NEON combine set.
    pub fft_mk_calls_neon: u64,
    /// Batched-FFT butterfly passes executed by the AVX2 combine set.
    pub fft_mk_calls_avx2: u64,
    /// Batched-FFT butterfly passes executed by the AVX-512 combine set.
    pub fft_mk_calls_avx512: u64,
    /// Monotonicity violations observed while computing this snapshot as
    /// a delta: the number of counters that went *backwards* between the
    /// two snapshots. Always zero for direct [`snapshot`]s; nonzero on a
    /// delta means work was lost between the endpoints (snapshots taken
    /// in the wrong order, or mixed across processes) and the clamped
    /// fields under-report — surfaced instead of silently hidden.
    pub delta_underflows: u64,
}

macro_rules! for_each_counter_field {
    ($m:ident) => {
        $m!(pool_dispatches);
        $m!(pool_dispatch_ns);
        $m!(pool_region_ns);
        $m!(pool_inline_runs);
        $m!(pool_inline_ns);
        $m!(gemm_calls);
        $m!(gemm_pack_ns);
        $m!(gemm_compute_ns);
        $m!(fft_grids);
        $m!(fft_lines);
        $m!(fft_ns);
        $m!(comm_collectives);
        $m!(comm_faults);
        $m!(comm_retries);
        $m!(comm_crashes);
        $m!(comm_shrinks);
        $m!(comm_recovery_ns);
        $m!(ckpt_writes);
        $m!(ckpt_reads);
        $m!(ckpt_bytes);
        $m!(ff_hermiticity_drops);
        $m!(dag_tasks);
        $m!(dag_steals);
        $m!(dag_reenqueued);
        $m!(serve_requests);
        $m!(serve_completed);
        $m!(serve_hits_mem);
        $m!(serve_hits_disk);
        $m!(serve_misses);
        $m!(serve_coalesced);
        $m!(serve_preemptions);
        $m!(serve_retries);
        $m!(serve_reenqueued);
        $m!(serve_store_invalid);
        $m!(serve_queue_ns);
        $m!(serve_mem_evicted);
        $m!(serve_gc_removed);
        $m!(serve_gc_bytes);
        $m!(gemm_mk_calls_scalar);
        $m!(gemm_mk_calls_neon);
        $m!(gemm_mk_calls_avx2);
        $m!(gemm_mk_calls_avx512);
        $m!(gemm_mk_pack_ns_scalar);
        $m!(gemm_mk_pack_ns_neon);
        $m!(gemm_mk_pack_ns_avx2);
        $m!(gemm_mk_pack_ns_avx512);
        $m!(gemm_mk_compute_ns_scalar);
        $m!(gemm_mk_compute_ns_neon);
        $m!(gemm_mk_compute_ns_avx2);
        $m!(gemm_mk_compute_ns_avx512);
        $m!(fft_mk_calls_scalar);
        $m!(fft_mk_calls_neon);
        $m!(fft_mk_calls_avx2);
        $m!(fft_mk_calls_avx512);
    };
}

impl CounterSnapshot {
    /// Counter increments between `self` (earlier) and `later`, plus the
    /// number of monotonicity violations — fields where `later` reads
    /// *below* `self`, i.e. where the saturating subtraction clamped to
    /// zero and lost work. The caller decides how loudly to surface a
    /// nonzero count; [`CounterSnapshot::delta`] debug-asserts on it.
    pub fn delta_checked(&self, later: &CounterSnapshot) -> (CounterSnapshot, u64) {
        let mut out = CounterSnapshot::default();
        let mut underflows = 0u64;
        macro_rules! sub_field {
            ($f:ident) => {
                if later.$f < self.$f {
                    underflows += 1;
                }
                out.$f = later.$f.saturating_sub(self.$f);
            };
        }
        for_each_counter_field!(sub_field);
        out.delta_underflows = underflows;
        (out, underflows)
    }

    /// Counter increments between `self` (earlier) and `later`.
    ///
    /// Counters are monotonic, so a field of `later` reading below `self`
    /// means the snapshots were taken in the wrong order (or crossed a
    /// process boundary). That used to be clamped to zero silently; it is
    /// now a debug assertion, and release builds surface it through the
    /// [`CounterSnapshot::delta_underflows`] field of the result.
    pub fn delta(&self, later: &CounterSnapshot) -> CounterSnapshot {
        let (out, underflows) = self.delta_checked(later);
        debug_assert_eq!(
            underflows, 0,
            "CounterSnapshot::delta: {underflows} counters went backwards \
             between snapshots (earlier/later swapped?) — the clamped delta \
             under-reports lost work"
        );
        out
    }

    /// Field-wise accumulation (used by the span registry to sum per-span
    /// deltas; `delta_underflows` accumulates too, so a span tree never
    /// hides a monotonicity violation seen by any of its spans).
    pub fn accumulate(&mut self, other: &CounterSnapshot) {
        macro_rules! add_field {
            ($f:ident) => {
                self.$f += other.$f;
            };
        }
        for_each_counter_field!(add_field);
        self.delta_underflows += other.delta_underflows;
    }

    /// Visits every counter field as a `(name, value)` pair in declaration
    /// order — the single source of truth for serializers.
    pub fn for_each_field(&self, mut f: impl FnMut(&'static str, u64)) {
        macro_rules! visit_field {
            ($f:ident) => {
                f(stringify!($f), self.$f);
            };
        }
        for_each_counter_field!(visit_field);
        f("delta_underflows", self.delta_underflows);
    }

    /// Sets a counter field by name (deserializer hook); returns `false`
    /// for an unknown name.
    pub fn set_field(&mut self, name: &str, value: u64) -> bool {
        macro_rules! match_field {
            ($f:ident) => {
                if name == stringify!($f) {
                    self.$f = value;
                    return true;
                }
            };
        }
        for_each_counter_field!(match_field);
        if name == "delta_underflows" {
            self.delta_underflows = value;
            return true;
        }
        false
    }

    /// True when every counter (including `delta_underflows`) is zero.
    pub fn is_zero(&self) -> bool {
        *self == CounterSnapshot::default()
    }

    /// Seconds spent inside 3-D FFT passes.
    pub fn fft_seconds(&self) -> f64 {
        self.fft_ns as f64 * 1e-9
    }

    /// Seconds spent packing GEMM operands.
    pub fn gemm_pack_seconds(&self) -> f64 {
        self.gemm_pack_ns as f64 * 1e-9
    }

    /// Seconds spent in the GEMM microkernel.
    pub fn gemm_compute_seconds(&self) -> f64 {
        self.gemm_compute_ns as f64 * 1e-9
    }

    /// Seconds of pooled-region dispatch overhead (publish/wakeup + join).
    pub fn pool_dispatch_seconds(&self) -> f64 {
        self.pool_dispatch_ns as f64 * 1e-9
    }

    /// Seconds of pooled-region body execution, summed over threads.
    pub fn pool_region_seconds(&self) -> f64 {
        self.pool_region_ns as f64 * 1e-9
    }

    /// Exclusive seconds spent in inline parallel calls.
    pub fn pool_inline_seconds(&self) -> f64 {
        self.pool_inline_ns as f64 * 1e-9
    }

    /// Seconds inside parallel regions, pooled or inline (dispatch
    /// overhead + summed body time + inline time) — the closest successor
    /// of the old single `pool_parallel_ns` aggregate.
    pub fn pool_total_seconds(&self) -> f64 {
        (self.pool_dispatch_ns + self.pool_region_ns + self.pool_inline_ns) as f64 * 1e-9
    }

    /// Seconds spent inside communicator shrink/recovery.
    pub fn comm_recovery_seconds(&self) -> f64 {
        self.comm_recovery_ns as f64 * 1e-9
    }

    /// ZGEMM microkernel dispatch counts by ISA index ([`ISA_NAMES`] order).
    pub fn gemm_mk_calls_by_isa(&self) -> [u64; ISA_LANES] {
        [
            self.gemm_mk_calls_scalar,
            self.gemm_mk_calls_neon,
            self.gemm_mk_calls_avx2,
            self.gemm_mk_calls_avx512,
        ]
    }

    /// GEMM packing nanoseconds by consuming-microkernel ISA index.
    pub fn gemm_mk_pack_ns_by_isa(&self) -> [u64; ISA_LANES] {
        [
            self.gemm_mk_pack_ns_scalar,
            self.gemm_mk_pack_ns_neon,
            self.gemm_mk_pack_ns_avx2,
            self.gemm_mk_pack_ns_avx512,
        ]
    }

    /// GEMM microkernel-sweep nanoseconds by ISA index.
    pub fn gemm_mk_compute_ns_by_isa(&self) -> [u64; ISA_LANES] {
        [
            self.gemm_mk_compute_ns_scalar,
            self.gemm_mk_compute_ns_neon,
            self.gemm_mk_compute_ns_avx2,
            self.gemm_mk_compute_ns_avx512,
        ]
    }

    /// Batched-FFT butterfly pass counts by combine-set ISA index.
    pub fn fft_mk_calls_by_isa(&self) -> [u64; ISA_LANES] {
        [
            self.fft_mk_calls_scalar,
            self.fft_mk_calls_neon,
            self.fft_mk_calls_avx2,
            self.fft_mk_calls_avx512,
        ]
    }

    /// Fraction of GEMM time the ISA-`isa` variant spent packing operand
    /// panels (`pack / (pack + compute)`), or `None` when that variant
    /// recorded no work. Autotune sweeps read this per configuration to
    /// see when a wider register tile shifts time into packing.
    pub fn gemm_mk_pack_fraction(&self, isa: usize) -> Option<f64> {
        let lane = isa.min(ISA_LANES - 1);
        let pack = self.gemm_mk_pack_ns_by_isa()[lane];
        let compute = self.gemm_mk_compute_ns_by_isa()[lane];
        if pack + compute == 0 {
            None
        } else {
            Some(pack as f64 / (pack + compute) as f64)
        }
    }
}

/// Reads all counters.
pub fn snapshot() -> CounterSnapshot {
    CounterSnapshot {
        pool_dispatches: POOL_DISPATCHES.load(Ordering::Relaxed),
        pool_dispatch_ns: POOL_DISPATCH_NS.load(Ordering::Relaxed),
        pool_region_ns: POOL_REGION_NS.load(Ordering::Relaxed),
        pool_inline_runs: POOL_INLINE_RUNS.load(Ordering::Relaxed),
        pool_inline_ns: POOL_INLINE_NS.load(Ordering::Relaxed),
        gemm_calls: GEMM_CALLS.load(Ordering::Relaxed),
        gemm_pack_ns: GEMM_PACK_NS.load(Ordering::Relaxed),
        gemm_compute_ns: GEMM_COMPUTE_NS.load(Ordering::Relaxed),
        fft_grids: FFT_GRIDS.load(Ordering::Relaxed),
        fft_lines: FFT_LINES.load(Ordering::Relaxed),
        fft_ns: FFT_NS.load(Ordering::Relaxed),
        comm_collectives: COMM_COLLECTIVES.load(Ordering::Relaxed),
        comm_faults: COMM_FAULTS.load(Ordering::Relaxed),
        comm_retries: COMM_RETRIES.load(Ordering::Relaxed),
        comm_crashes: COMM_CRASHES.load(Ordering::Relaxed),
        comm_shrinks: COMM_SHRINKS.load(Ordering::Relaxed),
        comm_recovery_ns: COMM_RECOVERY_NS.load(Ordering::Relaxed),
        ckpt_writes: CKPT_WRITES.load(Ordering::Relaxed),
        ckpt_reads: CKPT_READS.load(Ordering::Relaxed),
        ckpt_bytes: CKPT_BYTES.load(Ordering::Relaxed),
        ff_hermiticity_drops: FF_HERMITICITY_DROPS.load(Ordering::Relaxed),
        dag_tasks: DAG_TASKS.load(Ordering::Relaxed),
        dag_steals: DAG_STEALS.load(Ordering::Relaxed),
        dag_reenqueued: DAG_REENQUEUED.load(Ordering::Relaxed),
        serve_requests: SERVE_REQUESTS.load(Ordering::Relaxed),
        serve_completed: SERVE_COMPLETED.load(Ordering::Relaxed),
        serve_hits_mem: SERVE_HITS_MEM.load(Ordering::Relaxed),
        serve_hits_disk: SERVE_HITS_DISK.load(Ordering::Relaxed),
        serve_misses: SERVE_MISSES.load(Ordering::Relaxed),
        serve_coalesced: SERVE_COALESCED.load(Ordering::Relaxed),
        serve_preemptions: SERVE_PREEMPTIONS.load(Ordering::Relaxed),
        serve_retries: SERVE_RETRIES.load(Ordering::Relaxed),
        serve_reenqueued: SERVE_REENQUEUED.load(Ordering::Relaxed),
        serve_store_invalid: SERVE_STORE_INVALID.load(Ordering::Relaxed),
        serve_queue_ns: SERVE_QUEUE_NS.load(Ordering::Relaxed),
        serve_mem_evicted: SERVE_MEM_EVICTED.load(Ordering::Relaxed),
        serve_gc_removed: SERVE_GC_REMOVED.load(Ordering::Relaxed),
        serve_gc_bytes: SERVE_GC_BYTES.load(Ordering::Relaxed),
        gemm_mk_calls_scalar: GEMM_MK_CALLS[0].load(Ordering::Relaxed),
        gemm_mk_calls_neon: GEMM_MK_CALLS[1].load(Ordering::Relaxed),
        gemm_mk_calls_avx2: GEMM_MK_CALLS[2].load(Ordering::Relaxed),
        gemm_mk_calls_avx512: GEMM_MK_CALLS[3].load(Ordering::Relaxed),
        gemm_mk_pack_ns_scalar: GEMM_MK_PACK_NS[0].load(Ordering::Relaxed),
        gemm_mk_pack_ns_neon: GEMM_MK_PACK_NS[1].load(Ordering::Relaxed),
        gemm_mk_pack_ns_avx2: GEMM_MK_PACK_NS[2].load(Ordering::Relaxed),
        gemm_mk_pack_ns_avx512: GEMM_MK_PACK_NS[3].load(Ordering::Relaxed),
        gemm_mk_compute_ns_scalar: GEMM_MK_COMPUTE_NS[0].load(Ordering::Relaxed),
        gemm_mk_compute_ns_neon: GEMM_MK_COMPUTE_NS[1].load(Ordering::Relaxed),
        gemm_mk_compute_ns_avx2: GEMM_MK_COMPUTE_NS[2].load(Ordering::Relaxed),
        gemm_mk_compute_ns_avx512: GEMM_MK_COMPUTE_NS[3].load(Ordering::Relaxed),
        fft_mk_calls_scalar: FFT_MK_CALLS[0].load(Ordering::Relaxed),
        fft_mk_calls_neon: FFT_MK_CALLS[1].load(Ordering::Relaxed),
        fft_mk_calls_avx2: FFT_MK_CALLS[2].load(Ordering::Relaxed),
        fft_mk_calls_avx512: FFT_MK_CALLS[3].load(Ordering::Relaxed),
        delta_underflows: 0,
    }
}

static EXCLUSIVE: Mutex<()> = Mutex::new(());

/// Serializes counter-sensitive test/benchmark sections.
///
/// `cargo test` runs tests of one binary on several threads; two tests
/// that bracket pool/GEMM work with snapshot pairs and assert *upper
/// bounds* (or equalities) on the delta race each other — the other
/// test's work lands inside this test's bracket. Holding this guard for
/// the duration of the bracketed section removes the interleaving without
/// any global reset. Lower-bound (`>=`) assertions don't need it:
/// concurrent work only adds. The guard recovers from poisoning, so one
/// panicking test does not cascade.
pub fn exclusive_test_guard() -> MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Records one pooled parallel region whose dispatch overhead (publish +
/// wakeup + quiesce wait, body time excluded) was `overhead_ns`.
#[inline]
pub fn record_pool_dispatch(overhead_ns: u64) {
    POOL_DISPATCHES.fetch_add(1, Ordering::Relaxed);
    POOL_DISPATCH_NS.fetch_add(overhead_ns, Ordering::Relaxed);
}

/// Adds one participant's exclusive region-body time (nested inline
/// parallel calls already subtracted by the caller).
#[inline]
pub fn record_pool_region_ns(ns: u64) {
    POOL_REGION_NS.fetch_add(ns, Ordering::Relaxed);
}

/// Records one inline (non-pooled) parallel call of exclusive duration
/// `ns` (nested inline calls subtracted by the caller).
#[inline]
pub fn record_pool_inline(ns: u64) {
    POOL_INLINE_RUNS.fetch_add(1, Ordering::Relaxed);
    POOL_INLINE_NS.fetch_add(ns, Ordering::Relaxed);
}

/// Records one blocked-family ZGEMM invocation.
#[inline]
pub fn record_gemm_call() {
    GEMM_CALLS.fetch_add(1, Ordering::Relaxed);
}

/// Adds operand-packing time to the GEMM accounting.
#[inline]
pub fn record_gemm_pack_ns(ns: u64) {
    GEMM_PACK_NS.fetch_add(ns, Ordering::Relaxed);
}

/// Adds microkernel time to the GEMM accounting.
#[inline]
pub fn record_gemm_compute_ns(ns: u64) {
    GEMM_COMPUTE_NS.fetch_add(ns, Ordering::Relaxed);
}

/// Records one 3-D FFT pass of `lines` 1-D transforms taking `ns`
/// nanoseconds on the calling thread.
#[inline]
pub fn record_fft_pass(lines: u64, ns: u64) {
    FFT_GRIDS.fetch_add(1, Ordering::Relaxed);
    FFT_LINES.fetch_add(lines, Ordering::Relaxed);
    FFT_NS.fetch_add(ns, Ordering::Relaxed);
}

/// Records one slot-rendezvous collective entered by a rank.
#[inline]
pub fn record_comm_collective() {
    COMM_COLLECTIVES.fetch_add(1, Ordering::Relaxed);
}

/// Records one injected communicator fault event.
#[inline]
pub fn record_comm_fault() {
    COMM_FAULTS.fetch_add(1, Ordering::Relaxed);
}

/// Records one communicator retry (backoff retry or retransmit).
#[inline]
pub fn record_comm_retry() {
    COMM_RETRIES.fetch_add(1, Ordering::Relaxed);
}

/// Records one permanent rank crash.
#[inline]
pub fn record_comm_crash() {
    COMM_CRASHES.fetch_add(1, Ordering::Relaxed);
}

/// Records one communicator shrink taking `ns` nanoseconds on the
/// calling rank.
#[inline]
pub fn record_comm_shrink(ns: u64) {
    COMM_SHRINKS.fetch_add(1, Ordering::Relaxed);
    COMM_RECOVERY_NS.fetch_add(ns, Ordering::Relaxed);
}

/// Records one checkpoint record written with `bytes` of payload.
#[inline]
pub fn record_ckpt_write(bytes: u64) {
    CKPT_WRITES.fetch_add(1, Ordering::Relaxed);
    CKPT_BYTES.fetch_add(bytes, Ordering::Relaxed);
}

/// Records one checkpoint record read back with `bytes` of payload.
#[inline]
pub fn record_ckpt_read(bytes: u64) {
    CKPT_READS.fetch_add(1, Ordering::Relaxed);
    CKPT_BYTES.fetch_add(bytes, Ordering::Relaxed);
}

/// Records one FF Sigma bilinear form whose imaginary residue exceeded
/// the Hermiticity tolerance when it was discarded.
pub fn record_ff_hermiticity_drop() {
    FF_HERMITICITY_DROPS.fetch_add(1, Ordering::Relaxed);
}

/// Records `n` tasks executed by the DAG scheduler.
#[inline]
pub fn record_dag_tasks(n: u64) {
    DAG_TASKS.fetch_add(n, Ordering::Relaxed);
}

/// Records `n` DAG tasks acquired by stealing from another worker.
#[inline]
pub fn record_dag_steals(n: u64) {
    DAG_STEALS.fetch_add(n, Ordering::Relaxed);
}

/// Records `n` DAG tasks re-enqueued by task-granular fault recovery.
#[inline]
pub fn record_dag_reenqueued(n: u64) {
    DAG_REENQUEUED.fetch_add(n, Ordering::Relaxed);
}

/// Records one request accepted into the serving queue.
#[inline]
pub fn record_serve_request() {
    SERVE_REQUESTS.fetch_add(1, Ordering::Relaxed);
}

/// Records one request completed after spending `queue_ns` queued.
#[inline]
pub fn record_serve_completed(queue_ns: u64) {
    SERVE_COMPLETED.fetch_add(1, Ordering::Relaxed);
    SERVE_QUEUE_NS.fetch_add(queue_ns, Ordering::Relaxed);
}

/// Records one screening served from the in-memory cache.
#[inline]
pub fn record_serve_hit_mem() {
    SERVE_HITS_MEM.fetch_add(1, Ordering::Relaxed);
}

/// Records one screening restarted from an on-disk artifact record.
#[inline]
pub fn record_serve_hit_disk() {
    SERVE_HITS_DISK.fetch_add(1, Ordering::Relaxed);
}

/// Records one screening computed from scratch (cache miss).
#[inline]
pub fn record_serve_miss() {
    SERVE_MISSES.fetch_add(1, Ordering::Relaxed);
}

/// Records `n` requests that rode along on another request's screening
/// within one coalesced batch.
#[inline]
pub fn record_serve_coalesced(n: u64) {
    SERVE_COALESCED.fetch_add(n, Ordering::Relaxed);
}

/// Records one mid-evaluation preemption (checkpoint + re-enqueue).
#[inline]
pub fn record_serve_preemption() {
    SERVE_PREEMPTIONS.fetch_add(1, Ordering::Relaxed);
}

/// Records one transient-fault retry in the serving loop.
#[inline]
pub fn record_serve_retry() {
    SERVE_RETRIES.fetch_add(1, Ordering::Relaxed);
}

/// Records one request re-enqueued after a crash mid-evaluation.
#[inline]
pub fn record_serve_reenqueued() {
    SERVE_REENQUEUED.fetch_add(1, Ordering::Relaxed);
}

/// Records one corrupt/torn artifact-store entry downgraded to a miss.
#[inline]
pub fn record_serve_store_invalid() {
    SERVE_STORE_INVALID.fetch_add(1, Ordering::Relaxed);
}

/// Records one screening evicted from the in-memory cache by the byte
/// budget.
#[inline]
pub fn record_serve_mem_evicted() {
    SERVE_MEM_EVICTED.fetch_add(1, Ordering::Relaxed);
}

/// Records `n` artifact-store files reclaiming `bytes` bytes in one GC
/// pass.
#[inline]
pub fn record_serve_gc(n: u64, bytes: u64) {
    SERVE_GC_REMOVED.fetch_add(n, Ordering::Relaxed);
    SERVE_GC_BYTES.fetch_add(bytes, Ordering::Relaxed);
}

#[inline]
fn isa_lane(isa: usize) -> usize {
    debug_assert!(isa < ISA_LANES, "unknown ISA index {isa}");
    isa.min(ISA_LANES - 1)
}

/// Records one blocked-family ZGEMM call dispatched to the microkernel
/// of ISA index `isa` (see [`ISA_NAMES`]).
#[inline]
pub fn record_gemm_mk_call(isa: usize) {
    GEMM_MK_CALLS[isa_lane(isa)].fetch_add(1, Ordering::Relaxed);
}

/// Adds operand-packing time attributed to the microkernel of ISA index
/// `isa` (the packing layout is the one that kernel's register tile
/// demands, so packing cost is charged to the consuming variant).
#[inline]
pub fn record_gemm_mk_pack_ns(isa: usize, ns: u64) {
    GEMM_MK_PACK_NS[isa_lane(isa)].fetch_add(ns, Ordering::Relaxed);
}

/// Adds microkernel-sweep time for the variant of ISA index `isa`.
#[inline]
pub fn record_gemm_mk_compute_ns(isa: usize, ns: u64) {
    GEMM_MK_COMPUTE_NS[isa_lane(isa)].fetch_add(ns, Ordering::Relaxed);
}

/// Records one batched-FFT butterfly pass executed by the combine set of
/// ISA index `isa`.
#[inline]
pub fn record_fft_mk_call(isa: usize) {
    FFT_MK_CALLS[isa_lane(isa)].fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_deltas_reflect_records() {
        let before = snapshot();
        record_pool_dispatch(1000);
        record_pool_region_ns(4000);
        record_pool_inline(200);
        record_gemm_call();
        record_gemm_pack_ns(10);
        record_gemm_compute_ns(20);
        record_fft_pass(48, 30);
        record_comm_collective();
        record_comm_fault();
        record_comm_retry();
        record_comm_crash();
        record_comm_shrink(500);
        record_ckpt_write(64);
        record_ckpt_read(64);
        record_dag_tasks(9);
        record_dag_steals(2);
        record_dag_reenqueued(3);
        record_serve_request();
        record_serve_hit_mem();
        record_serve_hit_disk();
        record_serve_miss();
        record_serve_coalesced(4);
        record_serve_preemption();
        record_serve_retry();
        record_serve_reenqueued();
        record_serve_store_invalid();
        record_serve_mem_evicted();
        record_serve_gc(2, 4096);
        record_serve_completed(750);
        let after = snapshot();
        let d = before.delta(&after);
        assert!(d.pool_dispatches >= 1);
        assert!(d.pool_dispatch_ns >= 1000);
        assert!(d.pool_region_ns >= 4000);
        assert!(d.pool_inline_runs >= 1);
        assert!(d.pool_inline_ns >= 200);
        assert!(d.gemm_calls >= 1);
        assert!(d.gemm_pack_ns >= 10);
        assert!(d.gemm_compute_ns >= 20);
        assert!(d.gemm_pack_seconds() > 0.0);
        assert!(d.gemm_compute_seconds() > 0.0);
        assert!(d.pool_dispatch_seconds() > 0.0);
        assert!(d.pool_region_seconds() > 0.0);
        assert!(d.pool_inline_seconds() > 0.0);
        assert!(d.pool_total_seconds() > 0.0);
        assert!(d.fft_grids >= 1);
        assert!(d.fft_lines >= 48);
        assert!(d.fft_ns >= 30);
        assert!(d.fft_seconds() > 0.0);
        assert!(d.comm_collectives >= 1);
        assert!(d.comm_faults >= 1);
        assert!(d.comm_retries >= 1);
        assert!(d.comm_crashes >= 1);
        assert!(d.comm_shrinks >= 1);
        assert!(d.comm_recovery_ns >= 500);
        assert!(d.comm_recovery_seconds() > 0.0);
        assert!(d.ckpt_writes >= 1);
        assert!(d.ckpt_reads >= 1);
        assert!(d.ckpt_bytes >= 128);
        assert!(d.dag_tasks >= 9);
        assert!(d.dag_steals >= 2);
        assert!(d.dag_reenqueued >= 3);
        assert!(d.serve_requests >= 1);
        assert!(d.serve_completed >= 1);
        assert!(d.serve_hits_mem >= 1);
        assert!(d.serve_hits_disk >= 1);
        assert!(d.serve_misses >= 1);
        assert!(d.serve_coalesced >= 4);
        assert!(d.serve_preemptions >= 1);
        assert!(d.serve_retries >= 1);
        assert!(d.serve_reenqueued >= 1);
        assert!(d.serve_store_invalid >= 1);
        assert!(d.serve_queue_ns >= 750);
        assert!(d.serve_mem_evicted >= 1);
        assert!(d.serve_gc_removed >= 2);
        assert!(d.serve_gc_bytes >= 4096);
        assert_eq!(d.delta_underflows, 0);
    }

    #[test]
    fn delta_checked_counts_monotonicity_violations() {
        let earlier = CounterSnapshot {
            gemm_calls: 10,
            fft_ns: 500,
            ..Default::default()
        };
        let later = CounterSnapshot {
            gemm_calls: 7, // went backwards
            fft_ns: 400,   // went backwards
            ckpt_bytes: 3,
            ..Default::default()
        };
        let (d, underflows) = earlier.delta_checked(&later);
        assert_eq!(underflows, 2);
        assert_eq!(d.delta_underflows, 2);
        assert_eq!(d.gemm_calls, 0, "clamped, but counted");
        assert_eq!(d.fft_ns, 0);
        assert_eq!(d.ckpt_bytes, 3, "forward fields still differenced");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "went backwards"))]
    fn delta_asserts_on_underflow_in_debug() {
        let earlier = CounterSnapshot {
            gemm_calls: 10,
            ..Default::default()
        };
        let later = CounterSnapshot::default();
        let d = earlier.delta(&later);
        // Release builds reach here and surface the violation as data.
        assert_eq!(d.delta_underflows, 1);
    }

    #[test]
    fn per_isa_kernel_counters_advance() {
        let before = snapshot();
        record_gemm_mk_call(3);
        record_gemm_mk_pack_ns(3, 250);
        record_gemm_mk_compute_ns(3, 750);
        record_fft_mk_call(0);
        let d = before.delta(&snapshot());
        assert!(d.gemm_mk_calls_by_isa()[3] >= 1);
        assert!(d.gemm_mk_pack_ns_by_isa()[3] >= 250);
        assert!(d.gemm_mk_compute_ns_by_isa()[3] >= 750);
        assert!(d.fft_mk_calls_by_isa()[0] >= 1);
        let frac = d.gemm_mk_pack_fraction(3).expect("variant recorded work");
        assert!(frac > 0.0 && frac < 1.0, "pack fraction {frac}");
        assert_eq!(ISA_NAMES[3], "avx512");
    }

    #[test]
    fn pack_fraction_is_none_without_work() {
        let z = CounterSnapshot::default();
        for isa in 0..ISA_LANES {
            assert_eq!(z.gemm_mk_pack_fraction(isa), None);
        }
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = CounterSnapshot {
            gemm_calls: 2,
            delta_underflows: 1,
            ..Default::default()
        };
        let b = CounterSnapshot {
            gemm_calls: 3,
            pool_region_ns: 7,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.gemm_calls, 5);
        assert_eq!(a.pool_region_ns, 7);
        assert_eq!(a.delta_underflows, 1);
    }

    #[test]
    fn field_visitor_roundtrip() {
        let a = CounterSnapshot {
            pool_dispatches: 1,
            gemm_pack_ns: 2,
            ckpt_bytes: 3,
            delta_underflows: 4,
            ..Default::default()
        };
        let mut b = CounterSnapshot::default();
        let mut n_fields = 0;
        a.for_each_field(|name, value| {
            assert!(b.set_field(name, value), "unknown field {name}");
            n_fields += 1;
        });
        assert_eq!(a, b);
        assert_eq!(n_fields, 55, "visitor must cover every field");
        assert!(!b.set_field("no_such_counter", 1));
        assert!(CounterSnapshot::default().is_zero());
        assert!(!a.is_zero());
    }
}
