//! Global, lock-free runtime counters for the node-level substrates.
//!
//! The paper attributes its kernel wins to two layers below the physics:
//! the threading runtime (Sec. 5.5's two-level work decomposition) and the
//! ZGEMM substrate (Sec. 5.6's Tensile-tuned GEMMs). These counters make
//! both layers observable from any binary without plumbing handles through
//! every call site: `bgw-par` records worker-pool dispatches and the time
//! spent inside pooled regions, `bgw-linalg` records GEMM packing versus
//! compute time.
//!
//! Counters are process-global atomics. Readers take [`snapshot`]s and
//! difference them around a region of interest; concurrent work from other
//! threads is included by design (the counters describe the process, not a
//! call tree).

use std::sync::atomic::{AtomicU64, Ordering};

static POOL_DISPATCHES: AtomicU64 = AtomicU64::new(0);
static POOL_PARALLEL_NS: AtomicU64 = AtomicU64::new(0);
static POOL_INLINE_RUNS: AtomicU64 = AtomicU64::new(0);
static GEMM_CALLS: AtomicU64 = AtomicU64::new(0);
static GEMM_PACK_NS: AtomicU64 = AtomicU64::new(0);
static GEMM_COMPUTE_NS: AtomicU64 = AtomicU64::new(0);
static FFT_GRIDS: AtomicU64 = AtomicU64::new(0);
static FFT_LINES: AtomicU64 = AtomicU64::new(0);
static FFT_NS: AtomicU64 = AtomicU64::new(0);
static COMM_FAULTS: AtomicU64 = AtomicU64::new(0);
static COMM_RETRIES: AtomicU64 = AtomicU64::new(0);
static COMM_CRASHES: AtomicU64 = AtomicU64::new(0);
static COMM_SHRINKS: AtomicU64 = AtomicU64::new(0);
static COMM_RECOVERY_NS: AtomicU64 = AtomicU64::new(0);
static CKPT_WRITES: AtomicU64 = AtomicU64::new(0);
static CKPT_READS: AtomicU64 = AtomicU64::new(0);
static CKPT_BYTES: AtomicU64 = AtomicU64::new(0);

/// Point-in-time reading of every substrate counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Parallel regions executed on the persistent worker pool.
    pub pool_dispatches: u64,
    /// Wall-clock nanoseconds spent inside pooled parallel regions
    /// (dispatch + body + join, measured on the calling thread).
    pub pool_parallel_ns: u64,
    /// Parallel calls that ran inline (single worker requested, nested
    /// call, or the pool was busy with another dispatcher).
    pub pool_inline_runs: u64,
    /// Blocked/parallel/tuned ZGEMM invocations.
    pub gemm_calls: u64,
    /// Nanoseconds spent packing GEMM operand panels (summed over threads).
    pub gemm_pack_ns: u64,
    /// Nanoseconds spent in the GEMM microkernel sweep (summed over
    /// threads; overlapping threads each contribute their own time).
    pub gemm_compute_ns: u64,
    /// 3-D FFT grid transforms executed (each counts one `Fft3d` pass,
    /// whichever path — pooled, serial or batched-many — ran it).
    pub fft_grids: u64,
    /// 1-D line transforms executed inside 3-D passes (nx*ny + nx*nz +
    /// ny*nz per grid), the natural work unit of the batched driver.
    pub fft_lines: u64,
    /// Wall-clock nanoseconds spent inside `Fft3d` passes, measured on
    /// the calling thread (dispatch + gather/scatter + butterflies).
    pub fft_ns: u64,
    /// Fault events injected by the `bgw-comm` fault plan (all kinds).
    pub comm_faults: u64,
    /// Communicator retries: transient-fault backoff retries plus
    /// collective retransmits after a corrupted payload.
    pub comm_retries: u64,
    /// Permanent (injected or fatal) rank crashes observed by the runtime.
    pub comm_crashes: u64,
    /// Communicator shrinks performed by surviving ranks.
    pub comm_shrinks: u64,
    /// Nanoseconds spent inside `Comm::shrink` recovery, summed over
    /// the participating ranks.
    pub comm_recovery_ns: u64,
    /// Checkpoint records written through `bgw-io`.
    pub ckpt_writes: u64,
    /// Checkpoint records read back through `bgw-io`.
    pub ckpt_reads: u64,
    /// Checkpoint payload bytes moved (written + read).
    pub ckpt_bytes: u64,
}

impl CounterSnapshot {
    /// Counter increments between `self` (earlier) and `later`.
    pub fn delta(&self, later: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            pool_dispatches: later.pool_dispatches.saturating_sub(self.pool_dispatches),
            pool_parallel_ns: later.pool_parallel_ns.saturating_sub(self.pool_parallel_ns),
            pool_inline_runs: later.pool_inline_runs.saturating_sub(self.pool_inline_runs),
            gemm_calls: later.gemm_calls.saturating_sub(self.gemm_calls),
            gemm_pack_ns: later.gemm_pack_ns.saturating_sub(self.gemm_pack_ns),
            gemm_compute_ns: later.gemm_compute_ns.saturating_sub(self.gemm_compute_ns),
            fft_grids: later.fft_grids.saturating_sub(self.fft_grids),
            fft_lines: later.fft_lines.saturating_sub(self.fft_lines),
            fft_ns: later.fft_ns.saturating_sub(self.fft_ns),
            comm_faults: later.comm_faults.saturating_sub(self.comm_faults),
            comm_retries: later.comm_retries.saturating_sub(self.comm_retries),
            comm_crashes: later.comm_crashes.saturating_sub(self.comm_crashes),
            comm_shrinks: later.comm_shrinks.saturating_sub(self.comm_shrinks),
            comm_recovery_ns: later.comm_recovery_ns.saturating_sub(self.comm_recovery_ns),
            ckpt_writes: later.ckpt_writes.saturating_sub(self.ckpt_writes),
            ckpt_reads: later.ckpt_reads.saturating_sub(self.ckpt_reads),
            ckpt_bytes: later.ckpt_bytes.saturating_sub(self.ckpt_bytes),
        }
    }

    /// Seconds spent inside 3-D FFT passes.
    pub fn fft_seconds(&self) -> f64 {
        self.fft_ns as f64 * 1e-9
    }

    /// Seconds spent packing GEMM operands.
    pub fn gemm_pack_seconds(&self) -> f64 {
        self.gemm_pack_ns as f64 * 1e-9
    }

    /// Seconds spent in the GEMM microkernel.
    pub fn gemm_compute_seconds(&self) -> f64 {
        self.gemm_compute_ns as f64 * 1e-9
    }

    /// Seconds spent inside pooled parallel regions.
    pub fn pool_parallel_seconds(&self) -> f64 {
        self.pool_parallel_ns as f64 * 1e-9
    }

    /// Seconds spent inside communicator shrink/recovery.
    pub fn comm_recovery_seconds(&self) -> f64 {
        self.comm_recovery_ns as f64 * 1e-9
    }
}

/// Reads all counters.
pub fn snapshot() -> CounterSnapshot {
    CounterSnapshot {
        pool_dispatches: POOL_DISPATCHES.load(Ordering::Relaxed),
        pool_parallel_ns: POOL_PARALLEL_NS.load(Ordering::Relaxed),
        pool_inline_runs: POOL_INLINE_RUNS.load(Ordering::Relaxed),
        gemm_calls: GEMM_CALLS.load(Ordering::Relaxed),
        gemm_pack_ns: GEMM_PACK_NS.load(Ordering::Relaxed),
        gemm_compute_ns: GEMM_COMPUTE_NS.load(Ordering::Relaxed),
        fft_grids: FFT_GRIDS.load(Ordering::Relaxed),
        fft_lines: FFT_LINES.load(Ordering::Relaxed),
        fft_ns: FFT_NS.load(Ordering::Relaxed),
        comm_faults: COMM_FAULTS.load(Ordering::Relaxed),
        comm_retries: COMM_RETRIES.load(Ordering::Relaxed),
        comm_crashes: COMM_CRASHES.load(Ordering::Relaxed),
        comm_shrinks: COMM_SHRINKS.load(Ordering::Relaxed),
        comm_recovery_ns: COMM_RECOVERY_NS.load(Ordering::Relaxed),
        ckpt_writes: CKPT_WRITES.load(Ordering::Relaxed),
        ckpt_reads: CKPT_READS.load(Ordering::Relaxed),
        ckpt_bytes: CKPT_BYTES.load(Ordering::Relaxed),
    }
}

/// Resets every counter to zero (benchmark harness convenience; racing
/// writers are not a correctness problem, only an accounting smear).
pub fn reset() {
    POOL_DISPATCHES.store(0, Ordering::Relaxed);
    POOL_PARALLEL_NS.store(0, Ordering::Relaxed);
    POOL_INLINE_RUNS.store(0, Ordering::Relaxed);
    GEMM_CALLS.store(0, Ordering::Relaxed);
    GEMM_PACK_NS.store(0, Ordering::Relaxed);
    GEMM_COMPUTE_NS.store(0, Ordering::Relaxed);
    FFT_GRIDS.store(0, Ordering::Relaxed);
    FFT_LINES.store(0, Ordering::Relaxed);
    FFT_NS.store(0, Ordering::Relaxed);
    COMM_FAULTS.store(0, Ordering::Relaxed);
    COMM_RETRIES.store(0, Ordering::Relaxed);
    COMM_CRASHES.store(0, Ordering::Relaxed);
    COMM_SHRINKS.store(0, Ordering::Relaxed);
    COMM_RECOVERY_NS.store(0, Ordering::Relaxed);
    CKPT_WRITES.store(0, Ordering::Relaxed);
    CKPT_READS.store(0, Ordering::Relaxed);
    CKPT_BYTES.store(0, Ordering::Relaxed);
}

/// Records one pooled parallel region of `ns` nanoseconds.
#[inline]
pub fn record_pool_dispatch(ns: u64) {
    POOL_DISPATCHES.fetch_add(1, Ordering::Relaxed);
    POOL_PARALLEL_NS.fetch_add(ns, Ordering::Relaxed);
}

/// Records one inline (non-pooled) parallel call.
#[inline]
pub fn record_pool_inline() {
    POOL_INLINE_RUNS.fetch_add(1, Ordering::Relaxed);
}

/// Records one blocked-family ZGEMM invocation.
#[inline]
pub fn record_gemm_call() {
    GEMM_CALLS.fetch_add(1, Ordering::Relaxed);
}

/// Adds operand-packing time to the GEMM accounting.
#[inline]
pub fn record_gemm_pack_ns(ns: u64) {
    GEMM_PACK_NS.fetch_add(ns, Ordering::Relaxed);
}

/// Adds microkernel time to the GEMM accounting.
#[inline]
pub fn record_gemm_compute_ns(ns: u64) {
    GEMM_COMPUTE_NS.fetch_add(ns, Ordering::Relaxed);
}

/// Records one 3-D FFT pass of `lines` 1-D transforms taking `ns`
/// nanoseconds on the calling thread.
#[inline]
pub fn record_fft_pass(lines: u64, ns: u64) {
    FFT_GRIDS.fetch_add(1, Ordering::Relaxed);
    FFT_LINES.fetch_add(lines, Ordering::Relaxed);
    FFT_NS.fetch_add(ns, Ordering::Relaxed);
}

/// Records one injected communicator fault event.
#[inline]
pub fn record_comm_fault() {
    COMM_FAULTS.fetch_add(1, Ordering::Relaxed);
}

/// Records one communicator retry (backoff retry or retransmit).
#[inline]
pub fn record_comm_retry() {
    COMM_RETRIES.fetch_add(1, Ordering::Relaxed);
}

/// Records one permanent rank crash.
#[inline]
pub fn record_comm_crash() {
    COMM_CRASHES.fetch_add(1, Ordering::Relaxed);
}

/// Records one communicator shrink taking `ns` nanoseconds on the
/// calling rank.
#[inline]
pub fn record_comm_shrink(ns: u64) {
    COMM_SHRINKS.fetch_add(1, Ordering::Relaxed);
    COMM_RECOVERY_NS.fetch_add(ns, Ordering::Relaxed);
}

/// Records one checkpoint record written with `bytes` of payload.
#[inline]
pub fn record_ckpt_write(bytes: u64) {
    CKPT_WRITES.fetch_add(1, Ordering::Relaxed);
    CKPT_BYTES.fetch_add(bytes, Ordering::Relaxed);
}

/// Records one checkpoint record read back with `bytes` of payload.
#[inline]
pub fn record_ckpt_read(bytes: u64) {
    CKPT_READS.fetch_add(1, Ordering::Relaxed);
    CKPT_BYTES.fetch_add(bytes, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_deltas_reflect_records() {
        let before = snapshot();
        record_pool_dispatch(1000);
        record_pool_inline();
        record_gemm_call();
        record_gemm_pack_ns(10);
        record_gemm_compute_ns(20);
        record_fft_pass(48, 30);
        record_comm_fault();
        record_comm_retry();
        record_comm_crash();
        record_comm_shrink(500);
        record_ckpt_write(64);
        record_ckpt_read(64);
        let after = snapshot();
        let d = before.delta(&after);
        assert!(d.pool_dispatches >= 1);
        assert!(d.pool_parallel_ns >= 1000);
        assert!(d.pool_inline_runs >= 1);
        assert!(d.gemm_calls >= 1);
        assert!(d.gemm_pack_ns >= 10);
        assert!(d.gemm_compute_ns >= 20);
        assert!(d.gemm_pack_seconds() > 0.0);
        assert!(d.gemm_compute_seconds() > 0.0);
        assert!(d.pool_parallel_seconds() > 0.0);
        assert!(d.fft_grids >= 1);
        assert!(d.fft_lines >= 48);
        assert!(d.fft_ns >= 30);
        assert!(d.fft_seconds() > 0.0);
        assert!(d.comm_faults >= 1);
        assert!(d.comm_retries >= 1);
        assert!(d.comm_crashes >= 1);
        assert!(d.comm_shrinks >= 1);
        assert!(d.comm_recovery_ns >= 500);
        assert!(d.comm_recovery_seconds() > 0.0);
        assert!(d.ckpt_writes >= 1);
        assert!(d.ckpt_reads >= 1);
        assert!(d.ckpt_bytes >= 128);
    }
}
