//! Second property-style suite: physics-layer invariants (lattices,
//! spheres, pseudopotentials, distributed algebra, Pade continuation,
//! communicator semantics) under deterministic randomized sweeps.

use berkeleygw_rs::comm::run_world;
use berkeleygw_rs::dist::{newton_schulz_inverse, row_range, DistMatrix};
use berkeleygw_rs::linalg::CMatrix;
use berkeleygw_rs::num::pade::PadeApproximant;
use berkeleygw_rs::num::{c64, Complex64, Xoshiro256StarStar};
use berkeleygw_rs::pwdft::{Crystal, GSphere, Lattice, Species};

#[test]
fn lattice_volume_scales_with_supercell() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xA5A5_0001);
    for case in 0..16 {
        let a0 = 5.0 + 10.0 * rng.next_f64();
        let (n1, n2, n3) = (
            1 + rng.next_below(3),
            1 + rng.next_below(3),
            1 + rng.next_below(3),
        );
        let c = Crystal::diamond(Species::Si, a0);
        let s = c.supercell([n1, n2, n3]);
        let expect = c.lattice.volume() * (n1 * n2 * n3) as f64;
        assert!(
            (s.lattice.volume() - expect).abs() < 1e-6 * expect,
            "case {case}"
        );
        assert_eq!(s.n_atoms(), 8 * n1 * n2 * n3);
        // electron counting is extensive
        assert_eq!(s.n_electrons(), c.n_electrons() * n1 * n2 * n3);
    }
}

#[test]
fn gsphere_invariants() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xA5A5_0002);
    for case in 0..16 {
        let a0 = 6.0 + 8.0 * rng.next_f64();
        let ecut = 1.0 + 4.0 * rng.next_f64();
        let lat = Lattice::cubic(a0);
        let sph = GSphere::new(&lat, ecut);
        // all inside cutoff, sorted, inversion-symmetric
        assert!(sph.norm2.iter().all(|&n2| n2 <= ecut + 1e-9), "case {case}");
        assert!(sph.norm2.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        for i in 0..sph.len() {
            let j = sph.minus(i);
            assert!((sph.norm2[i] - sph.norm2[j]).abs() < 1e-9);
        }
        // count grows monotonically with cutoff
        let bigger = GSphere::new(&lat, ecut * 1.5);
        assert!(bigger.len() >= sph.len());
    }
}

#[test]
fn form_factors_are_bounded_and_decay() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xA5A5_0003);
    for case in 0..64 {
        let q = 30.0 * rng.next_f64();
        for sp in [
            Species::Si,
            Species::Li,
            Species::H,
            Species::B,
            Species::N,
            Species::C,
        ] {
            let u = sp.form_factor(q);
            assert!(u.is_finite(), "case {case}");
            assert!(u.abs() < 500.0, "{sp:?} at q={q}: {u}");
            // beyond the tabulated range everything is exactly zero
            if q > 10.0 {
                assert_eq!(u, 0.0);
            }
        }
    }
}

#[test]
fn displacement_roundtrip() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xA5A5_0004);
    for case in 0..16 {
        let d: Vec<f64> = (0..3).map(|_| 0.4 * rng.next_f64() - 0.2).collect();
        let c = Crystal::diamond(Species::Si, 10.26);
        let moved = c.with_displacement(3, [d[0], d[1], d[2]]);
        let back = moved.with_displacement(3, [-d[0], -d[1], -d[2]]);
        for (a, b) in c.atoms.iter().zip(&back.atoms) {
            for k in 0..3 {
                assert!((a.frac[k] - b.frac[k]).abs() < 1e-12, "case {case}");
            }
        }
    }
}

#[test]
fn row_ranges_partition() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xA5A5_0005);
    for case in 0..16 {
        let n = 1 + rng.next_below(199);
        let size = 1 + rng.next_below(11);
        let mut covered = vec![false; n];
        for r in 0..size {
            let (lo, hi) = row_range(n, size, r);
            for slot in covered.iter_mut().take(hi).skip(lo) {
                assert!(!*slot, "case {case}: overlap");
                *slot = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "case {case}: n={n} size={size}");
    }
}

#[test]
fn pade_exactness_for_moebius() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xA5A5_0006);
    for case in 0..16 {
        // f(z) = (a z + 1) / (z + b): 4 samples determine it exactly.
        let a = c64(4.0 * rng.next_f64() - 2.0, 4.0 * rng.next_f64() - 2.0);
        let b = c64(0.5 + 1.5 * rng.next_f64(), 0.3);
        let f = |z: Complex64| (a * z + 1.0) / (z + b);
        let nodes: Vec<Complex64> = (1..=4).map(|k| c64(0.0, k as f64)).collect();
        let vals: Vec<Complex64> = nodes.iter().map(|&z| f(z)).collect();
        let p = PadeApproximant::new(&nodes, &vals);
        let z = c64(0.7, 0.2);
        assert!((p.eval(z) - f(z)).abs() < 1e-7, "case {case}");
    }
}

#[test]
fn distributed_inverse_randomized() {
    // deterministic multi-size sweep (fixed seeds so failures reproduce)
    for (n, world, seed) in [(6usize, 2usize, 1u64), (10, 3, 2), (15, 4, 3)] {
        let mut a = CMatrix::random(n, n, seed);
        for d in 0..n {
            a[(d, d)] += c64(3.0, 0.0);
        }
        let reference = berkeleygw_rs::linalg::invert(&a).unwrap();
        let (out, _) = run_world(world, |comm| {
            let da = DistMatrix::from_replicated(comm, &a);
            let (inv, _) = newton_schulz_inverse(comm, &da, 1e-11, 80);
            inv.to_replicated(comm).as_slice().to_vec()
        });
        for flat in out {
            let inv = CMatrix::from_vec(n, n, flat);
            assert!(inv.max_abs_diff(&reference) < 1e-8, "n={n}, world={world}");
        }
    }
}

#[test]
fn collectives_compose_arbitrarily() {
    // a randomized (but rank-uniform) sequence of collectives must be
    // deadlock-free and consistent
    let ops: Vec<u8> = vec![0, 2, 1, 3, 0, 1, 2, 3, 3, 1];
    let (out, _) = run_world(4, |comm| {
        let mut acc = comm.rank() as u64;
        for (i, &op) in ops.iter().enumerate() {
            match op {
                0 => {
                    acc = comm.allreduce(acc, |a, b| a.wrapping_add(b));
                }
                1 => {
                    let all = comm.allgather(acc);
                    acc = all
                        .iter()
                        .fold(0u64, |a, &b| a.wrapping_mul(31).wrapping_add(b));
                }
                2 => {
                    acc = comm.bcast(i % comm.size(), Some(acc));
                }
                _ => comm.barrier(),
            }
        }
        acc
    });
    // every rank converges to the same value (all ops end symmetric)
    assert!(out.windows(2).all(|w| w[0] == w[1]), "{out:?}");
}

#[test]
fn mtxel_g0_is_overlap_for_random_band_pairs() {
    use berkeleygw_rs::core::mtxel::Mtxel;
    use berkeleygw_rs::pwdft::solve_bands;
    let c = Crystal::diamond(Species::Si, 10.26);
    let wfn = GSphere::new(&c.lattice, 2.2);
    let eps = GSphere::new(&c.lattice, 0.8);
    let wf = solve_bands(&c, &wfn, 24);
    let eng = Mtxel::new(&wfn, &eps);
    // pseudo-random pair sweep
    let mut rng = Xoshiro256StarStar::seed_from_u64(12345);
    for _ in 0..12 {
        let m = rng.next_below(24);
        let n = rng.next_below(24);
        let row = eng.band_pair(&wf, m, n);
        let expect = if m == n { 1.0 } else { 0.0 };
        assert!(
            (row[0] - c64(expect, 0.0)).abs() < 1e-9,
            "pair ({m},{n}): {}",
            row[0]
        );
    }
}
