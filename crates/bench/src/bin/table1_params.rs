//! Regenerates paper Table 1: the computational parameters of the GW
//! workflow and their synopses.

use bgw_core::GwParams;
use bgw_perf::Table;

fn main() {
    let mut t = Table::new(
        "Table 1: Computational parameters in the GW workflow",
        &["Symbol", "Synopsis"],
    );
    for (sym, syn) in GwParams::synopsis() {
        t.row(&[sym.to_string(), syn.to_string()]);
    }
    print!("{}", t.render());
    println!("\nAll parameters grow linearly with system size except N_E and N_omega.");
}
