//! Band solver ("Parabands").
//!
//! The paper's Parabands module generates the large band sets `{psi_n}`
//! needed by the sum-over-bands GW formulas by *densely diagonalizing* the
//! mean-field Hamiltonian in the plane-wave basis (iterative DFT solvers
//! struggle to converge thousands of empty states). We do the same with the
//! in-repo Hermitian eigensolver, and additionally expose a residual check
//! and the real-space density needed by the GPP model.

use crate::gvec::GSphere;
use crate::hamiltonian::Hamiltonian;
use crate::lattice::Crystal;
use bgw_fft::{Direction, Fft3d};
use bgw_linalg::{eigh, CMatrix};
use bgw_num::Complex64;

/// A set of Gamma-point Bloch states on a plane-wave sphere.
#[derive(Clone, Debug)]
pub struct Wavefunctions {
    /// Band energies (Ry), ascending.
    pub energies: Vec<f64>,
    /// Plane-wave coefficients: row `n` holds band `n` over the sphere
    /// (`n_bands x N_G^psi`). Rows are orthonormal.
    pub coeffs: CMatrix,
    /// Number of doubly-occupied valence bands.
    pub n_valence: usize,
}

impl Wavefunctions {
    /// Number of bands kept (`N_b`).
    pub fn n_bands(&self) -> usize {
        self.coeffs.nrows()
    }

    /// Plane-wave basis size (`N_G^psi`).
    pub fn n_g(&self) -> usize {
        self.coeffs.ncols()
    }

    /// Number of conduction (empty) bands (`N_c`).
    pub fn n_conduction(&self) -> usize {
        self.n_bands() - self.n_valence
    }

    /// Mean-field band gap (Ry): `E_{N_v} - E_{N_v - 1}`.
    pub fn gap_ry(&self) -> f64 {
        assert!(self.n_valence > 0 && self.n_bands() > self.n_valence);
        self.energies[self.n_valence] - self.energies[self.n_valence - 1]
    }

    /// Fermi level estimate (Ry): midgap.
    pub fn fermi_ry(&self) -> f64 {
        0.5 * (self.energies[self.n_valence] + self.energies[self.n_valence - 1])
    }

    /// Maximum deviation from orthonormality `max |<m|n> - delta_mn|`.
    pub fn orthonormality_error(&self) -> f64 {
        let nb = self.n_bands();
        let mut err: f64 = 0.0;
        for m in 0..nb {
            for n in m..nb {
                let mut acc = Complex64::ZERO;
                for (a, b) in self.coeffs.row(m).iter().zip(self.coeffs.row(n)) {
                    acc = acc.conj_mul_add(*a, *b);
                }
                let target = if m == n { 1.0 } else { 0.0 };
                err = err.max((acc - target).abs());
            }
        }
        err
    }

    /// Truncates to the first `n_bands` states.
    pub fn truncated(&self, n_bands: usize) -> Self {
        assert!(n_bands <= self.n_bands() && n_bands > self.n_valence);
        Self {
            energies: self.energies[..n_bands].to_vec(),
            coeffs: self.coeffs.submatrix(0, n_bands, 0, self.n_g()),
            n_valence: self.n_valence,
        }
    }
}

/// Diagonalizes the Hamiltonian and keeps the lowest `n_bands` states
/// (all states if `n_bands >= N_G`).
pub fn solve_bands(crystal: &Crystal, sph: &GSphere, n_bands: usize) -> Wavefunctions {
    let h = Hamiltonian::new(crystal, sph);
    solve_bands_from_h(&h, crystal, sph, n_bands)
}

/// Same as [`solve_bands`] for a prebuilt Hamiltonian.
pub fn solve_bands_from_h(
    h: &Hamiltonian,
    crystal: &Crystal,
    sph: &GSphere,
    n_bands: usize,
) -> Wavefunctions {
    let _span = bgw_trace::span!("pwdft.solve_bands");
    let n_g = sph.len();
    let keep = n_bands.min(n_g);
    let n_valence = crystal.n_valence_bands();
    assert!(
        keep > n_valence,
        "need at least one empty band: requested {keep}, N_v = {n_valence}"
    );
    let eig = eigh(&h.to_matrix());
    // Eigenvectors are columns; store bands as rows.
    let coeffs = CMatrix::from_fn(keep, n_g, |n, g| eig.vectors[(g, n)]);
    Wavefunctions {
        energies: eig.values[..keep].to_vec(),
        coeffs,
        n_valence,
    }
}

/// Maximum residual `||H psi_n - E_n psi_n||` over the first `check` bands.
pub fn residual_norm(h: &Hamiltonian, wf: &Wavefunctions, check: usize) -> f64 {
    let mut worst: f64 = 0.0;
    for n in 0..check.min(wf.n_bands()) {
        let psi = wf.coeffs.row(n);
        let hpsi = h.matvec(psi);
        let mut r2 = 0.0;
        for (hp, p) in hpsi.iter().zip(psi) {
            r2 += (*hp - p.scale(wf.energies[n])).norm_sqr();
        }
        worst = worst.max(r2.sqrt());
    }
    worst
}

/// Valence charge density `rho(G)` on the sphere (electrons per cell at
/// `G = 0`), computed by FFT of `sum_v 2 |psi_v(r)|^2` — the input to the
/// generalized plasmon-pole model.
pub fn charge_density_g(wf: &Wavefunctions, sph: &GSphere) -> Vec<Complex64> {
    let (nx, ny, nz) = sph.fft_dims;
    let plan = Fft3d::new(nx, ny, nz);
    let npts = plan.len();
    let mut rho_r = vec![0.0f64; npts];
    // Transform valence bands in batched blocks through the pooled 3-D
    // FFT; the block bounds the extra memory at a few grids.
    const RHO_BLOCK: usize = 8;
    for v0 in (0..wf.n_valence).step_by(RHO_BLOCK) {
        let v1 = (v0 + RHO_BLOCK).min(wf.n_valence);
        let mut grids: Vec<Vec<Complex64>> = (v0..v1)
            .map(|v| {
                let mut grid = vec![Complex64::ZERO; npts];
                for g in 0..sph.len() {
                    grid[sph.fft_index(g)] = wf.coeffs[(v, g)];
                }
                grid
            })
            .collect();
        plan.inverse_many(&mut grids);
        // Inverse carries 1/N; |psi(r)|^2 with psi(r) = sum_G c_G e^{iGr}
        // means we must undo that normalization.
        let scale = npts as f64;
        for grid in &grids {
            for (r, z) in rho_r.iter_mut().zip(grid) {
                let amp = z.scale(scale);
                *r += 2.0 * amp.norm_sqr(); // spin factor 2
            }
        }
    }
    // Forward FFT of the density, normalized so rho(G=0) = N_electrons.
    let mut rho_c: Vec<Complex64> = rho_r.iter().map(|&r| Complex64::real(r)).collect();
    plan.process(&mut rho_c, Direction::Forward);
    let norm = 1.0 / npts as f64;
    (0..sph.len())
        .map(|g| rho_c[sph.fft_index(g)].scale(norm))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Crystal;
    use crate::pseudo::{Species, LIH_A0, SI_A0};
    use bgw_num::RYDBERG_EV;

    fn si_bulk_wf() -> (Crystal, GSphere, Wavefunctions) {
        let c = Crystal::diamond(Species::Si, SI_A0);
        let sph = GSphere::new(&c.lattice, 3.2);
        let wf = solve_bands(&c, &sph, 40);
        (c, sph, wf)
    }

    #[test]
    fn bands_are_sorted_and_orthonormal() {
        let (_, _, wf) = si_bulk_wf();
        for w in wf.energies.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        assert!(
            wf.orthonormality_error() < 1e-8,
            "{}",
            wf.orthonormality_error()
        );
    }

    #[test]
    fn si_model_is_insulating_with_sane_gap() {
        let (_, _, wf) = si_bulk_wf();
        assert_eq!(wf.n_valence, 16);
        let gap_ev = wf.gap_ry() * RYDBERG_EV;
        assert!(
            gap_ev > 0.2 && gap_ev < 5.0,
            "Si-model gap out of window: {gap_ev} eV"
        );
    }

    #[test]
    fn lih_model_is_insulating() {
        let c = Crystal::rocksalt(Species::Li, Species::H, LIH_A0);
        let sph = GSphere::new(&c.lattice, 3.0);
        let wf = solve_bands(&c, &sph, 16);
        let gap_ev = wf.gap_ry() * RYDBERG_EV;
        assert!(gap_ev > 0.5, "LiH-model gap too small: {gap_ev} eV");
    }

    #[test]
    fn residuals_are_small() {
        let (c, sph, wf) = si_bulk_wf();
        let h = Hamiltonian::new(&c, &sph);
        assert!(residual_norm(&h, &wf, 10) < 1e-8);
    }

    #[test]
    fn truncation_keeps_prefix() {
        let (_, _, wf) = si_bulk_wf();
        let t = wf.truncated(20);
        assert_eq!(t.n_bands(), 20);
        assert_eq!(t.n_conduction(), 4);
        assert_eq!(t.energies[..], wf.energies[..20]);
        assert_eq!(t.coeffs.row(7), wf.coeffs.row(7));
    }

    #[test]
    fn density_normalizes_to_electron_count() {
        let (c, sph, wf) = si_bulk_wf();
        let rho = charge_density_g(&wf, &sph);
        // rho(G=0) = number of electrons in the cell
        assert!(
            (rho[0].re - c.n_electrons() as f64).abs() < 1e-6,
            "rho(0) = {} vs {}",
            rho[0].re,
            c.n_electrons()
        );
        assert!(rho[0].im.abs() < 1e-9);
        // Hermitian symmetry rho(-G) = conj(rho(G))
        for i in 0..sph.len().min(30) {
            let j = sph.minus(i);
            assert!((rho[i] - rho[j].conj()).abs() < 1e-8, "i = {i}");
        }
    }

    #[test]
    fn vacancy_introduces_gap_state() {
        // A vacancy in a (small) Si supercell should pull states into the
        // gap: the HOMO-LUMO gap of the defective cell is smaller than the
        // bulk gap of the same supercell.
        let bulk = Crystal::diamond(Species::Si, SI_A0);
        let sph_b = GSphere::new(&bulk.lattice, 2.6);
        let wf_b = solve_bands(&bulk, &sph_b, bulk.n_valence_bands() + 6);
        let vac = bulk.with_vacancy(0);
        let sph_v = GSphere::new(&vac.lattice, 2.6);
        let wf_v = solve_bands(&vac, &sph_v, vac.n_valence_bands() + 6);
        assert!(
            wf_v.gap_ry() < wf_b.gap_ry(),
            "vacancy gap {} !< bulk gap {}",
            wf_v.gap_ry(),
            wf_b.gap_ry()
        );
    }

    #[test]
    #[should_panic(expected = "at least one empty band")]
    fn too_few_bands_rejected() {
        let c = Crystal::diamond(Species::Si, SI_A0);
        let sph = GSphere::new(&c.lattice, 2.0);
        let _ = solve_bands(&c, &sph, c.n_valence_bands());
    }
}
