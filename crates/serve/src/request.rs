//! Request shapes: what a client asks the GW service for.
//!
//! Requests carry *integer-quantized* physics parameters (cutoffs in
//! centi-Ry, energy offsets in milli-Ry) so that two clients asking for
//! "the same thing" produce bit-identical [`KeySpec`] canonical strings —
//! float formatting can never split the cache. The W artifact key
//! ([`GwRequest::w_key`]) covers exactly the inputs that determine the
//! screening (structure + frequency treatment); the request key adds the
//! Sigma-evaluation parameters. Requests sharing a `w_key` coalesce into
//! one batch.

use crate::key::{ArtifactKey, KeySpec};
use bgw_core::service::FfSpec;
use bgw_core::workflow::GwConfig;
use bgw_pwdft::{lih_defect, si_bulk, si_divacancy, ModelSystem};

/// Which model structure a request targets, with quantized parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StructureSpec {
    /// Bulk silicon supercell.
    SiBulk {
        /// Supercell multiplier per axis.
        m: usize,
        /// Wavefunction cutoff in centi-Ry (220 = 2.2 Ry).
        ecut_centi_ry: u32,
        /// Bands to solve.
        n_bands: usize,
    },
    /// Silicon divacancy supercell.
    SiDivacancy {
        /// Supercell multiplier per axis.
        m: usize,
        /// Wavefunction cutoff in centi-Ry.
        ecut_centi_ry: u32,
        /// Bands to solve.
        n_bands: usize,
    },
    /// LiH vacancy-pair defect.
    LihDefect {
        /// Supercell multiplier per axis.
        m: usize,
        /// Wavefunction cutoff in centi-Ry.
        ecut_centi_ry: u32,
        /// Bands to solve.
        n_bands: usize,
    },
}

impl StructureSpec {
    /// Instantiates the model system.
    pub fn system(&self) -> ModelSystem {
        match *self {
            StructureSpec::SiBulk {
                m,
                ecut_centi_ry,
                n_bands,
            } => {
                let mut sys = si_bulk(m, ecut_centi_ry as f64 / 100.0);
                sys.n_bands = n_bands;
                sys
            }
            StructureSpec::SiDivacancy {
                m,
                ecut_centi_ry,
                n_bands,
            } => {
                let mut sys = si_divacancy(m, ecut_centi_ry as f64 / 100.0);
                sys.n_bands = n_bands;
                sys
            }
            StructureSpec::LihDefect {
                m,
                ecut_centi_ry,
                n_bands,
            } => {
                let mut sys = lih_defect(m, ecut_centi_ry as f64 / 100.0);
                sys.n_bands = n_bands;
                sys
            }
        }
    }

    fn key_fields(&self, spec: &mut KeySpec) {
        let (name, m, ecut, nb) = match *self {
            StructureSpec::SiBulk {
                m,
                ecut_centi_ry,
                n_bands,
            } => ("si_bulk", m, ecut_centi_ry, n_bands),
            StructureSpec::SiDivacancy {
                m,
                ecut_centi_ry,
                n_bands,
            } => ("si_divacancy", m, ecut_centi_ry, n_bands),
            StructureSpec::LihDefect {
                m,
                ecut_centi_ry,
                n_bands,
            } => ("lih_defect", m, ecut_centi_ry, n_bands),
        };
        spec.push_str("structure", name);
        spec.push_int("supercell", m as u64);
        spec.push_int("ecut_centi_ry", ecut as u64);
        spec.push_int("n_bands", nb as u64);
    }
}

/// What to evaluate against the structure's screening.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// GPP Sigma diagonals + QP energies on 3-point grids.
    GppDiag {
        /// Bands on each side of the gap.
        bands_around_gap: usize,
        /// Grid offset in milli-Ry (50 = 0.05 Ry).
        delta_milli_ry: u32,
    },
    /// Full-frequency Sigma diagonals on the quadrature screening.
    FullFreq {
        /// Bands on each side of the gap.
        bands_around_gap: usize,
        /// Quadrature nodes for the screening.
        n_quad: usize,
        /// Broadening in milli-Ry.
        eta_milli_ry: u32,
        /// Grid offset in milli-Ry.
        delta_milli_ry: u32,
    },
}

/// One unit of work for the service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GwRequest {
    /// Target structure.
    pub structure: StructureSpec,
    /// What to evaluate.
    pub kind: RequestKind,
    /// Scheduling priority (higher runs first; may preempt lower).
    pub priority: u8,
}

/// Bumping this invalidates every stored artifact (key schema change).
const KEY_SCHEMA: u64 = 1;

impl GwRequest {
    /// The canonical W/screening spec: structure plus frequency treatment.
    /// Its digest is [`GwRequest::w_key`]; its canonical string is stored
    /// inside the artifact record and re-checked on every load, so a
    /// 64-bit key collision degrades to a recompute, never a wrong hit.
    pub fn w_spec(&self) -> KeySpec {
        let mut spec = KeySpec::new();
        spec.push_int("v", KEY_SCHEMA);
        self.structure.key_fields(&mut spec);
        match self.kind {
            RequestKind::GppDiag { .. } => {
                spec.push_str("mode", "gpp");
            }
            RequestKind::FullFreq { n_quad, .. } => {
                spec.push_str("mode", "ff");
                spec.push_int("n_quad", n_quad as u64);
            }
        }
        spec
    }

    /// The W/screening artifact key: structure plus frequency treatment.
    /// Requests with equal `w_key` share screening state and coalesce.
    pub fn w_key(&self) -> ArtifactKey {
        self.w_spec().key()
    }

    /// The dispatcher shard owning this request under an `n_shards`-way
    /// split: `w_key % n_shards`. Requests sharing a screening always
    /// land on the same shard, so coalescing and the warm-hit
    /// invariants hold per shard by construction.
    pub fn shard_of(&self, n_shards: usize) -> usize {
        (self.w_key().0 % n_shards.max(1) as u64) as usize
    }

    /// The full request key: `w_key` inputs plus the Sigma-evaluation
    /// parameters (band window, grid offset, broadening).
    pub fn request_key(&self) -> ArtifactKey {
        let mut spec = KeySpec::new();
        spec.push_int("v", KEY_SCHEMA);
        self.structure.key_fields(&mut spec);
        match self.kind {
            RequestKind::GppDiag {
                bands_around_gap,
                delta_milli_ry,
            } => {
                spec.push_str("mode", "gpp");
                spec.push_int("bands_around_gap", bands_around_gap as u64);
                spec.push_int("delta_milli_ry", delta_milli_ry as u64);
            }
            RequestKind::FullFreq {
                bands_around_gap,
                n_quad,
                eta_milli_ry,
                delta_milli_ry,
            } => {
                spec.push_str("mode", "ff");
                spec.push_int("n_quad", n_quad as u64);
                spec.push_int("bands_around_gap", bands_around_gap as u64);
                spec.push_int("eta_milli_ry", eta_milli_ry as u64);
                spec.push_int("delta_milli_ry", delta_milli_ry as u64);
            }
        }
        spec.key()
    }

    /// The full-frequency screening spec, when this is an FF request.
    pub fn ff_spec(&self) -> Option<FfSpec> {
        match self.kind {
            RequestKind::GppDiag { .. } => None,
            RequestKind::FullFreq { n_quad, .. } => Some(FfSpec { n_quad }),
        }
    }

    /// Grid offset in Ry.
    pub fn delta_ry(&self) -> f64 {
        let m = match self.kind {
            RequestKind::GppDiag { delta_milli_ry, .. } => delta_milli_ry,
            RequestKind::FullFreq { delta_milli_ry, .. } => delta_milli_ry,
        };
        m as f64 / 1000.0
    }

    /// Grid offset in milli-Ry (the quantized coalescing unit).
    pub fn delta_milli_ry(&self) -> u32 {
        match self.kind {
            RequestKind::GppDiag { delta_milli_ry, .. } => delta_milli_ry,
            RequestKind::FullFreq { delta_milli_ry, .. } => delta_milli_ry,
        }
    }

    /// Broadening in Ry (FF requests).
    pub fn eta_ry(&self) -> f64 {
        match self.kind {
            RequestKind::GppDiag { .. } => 0.0,
            RequestKind::FullFreq { eta_milli_ry, .. } => eta_milli_ry as f64 / 1000.0,
        }
    }

    /// Bands on each side of the gap.
    pub fn bands_around_gap(&self) -> usize {
        match self.kind {
            RequestKind::GppDiag {
                bands_around_gap, ..
            } => bands_around_gap,
            RequestKind::FullFreq {
                bands_around_gap, ..
            } => bands_around_gap,
        }
    }

    /// The Sigma band list for this request against a solved system —
    /// exactly the one-shot drivers' window `nv-k .. nv+k` (clamped).
    pub fn bands(&self, n_valence: usize, n_bands: usize) -> Vec<usize> {
        let k = self.bands_around_gap().max(1);
        (n_valence.saturating_sub(k)..(n_valence + k).min(n_bands)).collect()
    }

    /// The [`GwConfig`] whose one-shot run this request must reproduce.
    pub fn gw_config(&self) -> GwConfig {
        GwConfig {
            bands_around_gap: self.bands_around_gap(),
            sampling_delta_ry: self.delta_ry(),
            ..GwConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn si(nb: usize) -> StructureSpec {
        StructureSpec::SiBulk {
            m: 1,
            ecut_centi_ry: 220,
            n_bands: nb,
        }
    }

    #[test]
    fn w_key_ignores_sigma_params_but_request_key_does_not() {
        let a = GwRequest {
            structure: si(24),
            kind: RequestKind::GppDiag {
                bands_around_gap: 1,
                delta_milli_ry: 50,
            },
            priority: 0,
        };
        let b = GwRequest {
            structure: si(24),
            kind: RequestKind::GppDiag {
                bands_around_gap: 2,
                delta_milli_ry: 40,
            },
            priority: 3,
        };
        assert_eq!(a.w_key(), b.w_key(), "same W, different Sigma windows");
        assert_ne!(a.request_key(), b.request_key());
    }

    #[test]
    fn structure_and_mode_perturbations_change_w_key() {
        let base = GwRequest {
            structure: si(24),
            kind: RequestKind::GppDiag {
                bands_around_gap: 1,
                delta_milli_ry: 50,
            },
            priority: 0,
        };
        let other_bands = GwRequest {
            structure: si(28),
            ..base
        };
        assert_ne!(base.w_key(), other_bands.w_key());
        let ff = GwRequest {
            kind: RequestKind::FullFreq {
                bands_around_gap: 1,
                n_quad: 8,
                eta_milli_ry: 50,
                delta_milli_ry: 50,
            },
            ..base
        };
        assert_ne!(base.w_key(), ff.w_key(), "gpp vs ff screening differ");
        let ff2 = GwRequest {
            kind: RequestKind::FullFreq {
                bands_around_gap: 1,
                n_quad: 10,
                eta_milli_ry: 50,
                delta_milli_ry: 50,
            },
            ..base
        };
        assert_ne!(ff.w_key(), ff2.w_key(), "quadrature size is a W input");
    }

    #[test]
    fn band_window_matches_oneshot_driver() {
        let req = GwRequest {
            structure: si(24),
            kind: RequestKind::GppDiag {
                bands_around_gap: 2,
                delta_milli_ry: 50,
            },
            priority: 0,
        };
        assert_eq!(req.bands(16, 24), vec![14, 15, 16, 17]);
        // Clamped at both ends.
        assert_eq!(req.bands(1, 2), vec![0, 1]);
        let cfg = req.gw_config();
        assert_eq!(cfg.bands_around_gap, 2);
        assert_eq!(cfg.sampling_delta_ry, 0.05);
    }
}
