//! Imaginary-axis full-frequency Sigma with Pade analytic continuation.
//!
//! The alternative full-frequency route (used by WEST, CP2K, and the
//! space-time codes the paper surveys in Sec. 4): all frequency integrals
//! run on the *imaginary* axis where `eps~^{-1}(i w)` is smooth — no
//! poles, no broadening — and the resulting `Sigma(i w)` is analytically
//! continued to real energies with a Pade approximant
//! (`bgw_num::pade`). Complements the real-axis sampled path of
//! [`super::fullfreq`]; agreement between the two (and with GPP) is a
//! strong validation of all three.
//!
//! Working expression (exchange split off exactly):
//!
//! `Sigma^c_ll(E) = -(1/pi) sum_n sum_k w_k q_k(n)
//!                  * (E - E_n) / ((E - E_n)^2 + u_k^2)`
//!
//! evaluated at `E = i w` on the imaginary-frequency grid `{w}` and
//! continued; `q_k(n) = m~_n^dagger [eps~^{-1}(i u_k) - I] m~_n` with
//! `{u_k, w_k}` a Gauss-Legendre quadrature of the semi-infinite axis.

use super::SigmaContext;
use crate::epsilon::EpsilonInverse;
use bgw_num::pade::{PadeApproximant, PadeError};
use bgw_num::{c64, Complex64};
use std::time::Instant;

/// Result of an imaginary-axis Sigma evaluation.
#[derive(Clone, Debug)]
pub struct SigmaImagAxisResult {
    /// `sigma[s][e]`: continued self-energy at the requested real
    /// energies (complex, Ry), exchange included.
    pub sigma: Vec<Vec<Complex64>>,
    /// Real-energy grids per band (Ry).
    pub e_grids: Vec<Vec<f64>>,
    /// The raw `Sigma^c(i w)` samples per band (for diagnostics).
    pub sigma_iw: Vec<Vec<Complex64>>,
    /// Imaginary-frequency sample points (Ry).
    pub iw_grid: Vec<f64>,
    /// Seconds in the quadrature + continuation.
    pub seconds: f64,
}

/// Evaluates Sigma on the imaginary axis and continues to `e_grids`.
///
/// `eps_iw` must hold `eps~^{-1}` at the imaginary quadrature frequencies
/// `u_k` (i.e. built from `chi(i u_k)`), with `weights` the matching
/// quadrature weights. `iw_samples` sets how many `Sigma(i w)` points feed
/// the Pade continuation (8-16 is typical).
///
/// A degenerate `i w` sample grid (e.g. a zero quadrature range collapses
/// every node onto the origin) or non-finite `Sigma(i w)` samples make
/// the Thiele construction garbage; those now surface as a typed
/// [`PadeError`] instead of silently continuing nonsense to the real axis.
pub fn imag_axis_sigma_diag(
    ctx: &SigmaContext,
    eps_iw: &EpsilonInverse,
    weights: &[f64],
    e_grids: &[Vec<f64>],
    iw_samples: usize,
) -> Result<SigmaImagAxisResult, PadeError> {
    assert_eq!(e_grids.len(), ctx.n_sigma());
    assert_eq!(weights.len(), eps_iw.n_freq());
    assert!(iw_samples >= 2, "need several imaginary-axis samples");
    let t0 = Instant::now();
    let nb = ctx.n_b();
    let nk = eps_iw.n_freq();
    let inv_pi = 1.0 / std::f64::consts::PI;

    // Sigma(i w) sample grid: logarithmic-ish spread over the correlation
    // energy scale set by the quadrature range.
    let w_max = eps_iw.omegas.last().copied().unwrap_or(1.0);
    let iw_grid: Vec<f64> = (0..iw_samples)
        .map(|j| 0.05 * w_max * 1.6f64.powi(j as i32))
        .collect();

    let mut sigma = Vec::with_capacity(ctx.n_sigma());
    let mut sigma_iw_all = Vec::with_capacity(ctx.n_sigma());
    for (s, grid) in e_grids.iter().enumerate() {
        let m = &ctx.m_tilde[s];
        // q_k(n) = m_n^dagger [eps^{-1}(i u_k) - I] m_n  (real, Hermitian)
        let mut q = vec![0.0f64; nk * nb];
        for k in 0..nk {
            let corr = eps_iw.correlation_part(k);
            for n in 0..nb {
                let row = m.row(n);
                let mut acc = Complex64::ZERO;
                for (i, &mi) in row.iter().enumerate() {
                    let mut inner = Complex64::ZERO;
                    for (j, &mj) in row.iter().enumerate() {
                        inner = inner.mul_add(corr[(i, j)], mj);
                    }
                    acc = acc.conj_mul_add(mi, inner);
                }
                q[k * nb + n] = acc.re;
            }
        }
        // bare exchange (exact, static)
        let mut sigma_x = 0.0;
        for n in 0..ctx.n_occ {
            sigma_x -= m.row(n).iter().map(|z| z.norm_sqr()).sum::<f64>();
        }
        // Sigma^c(i w_j): the convolution integral along the imaginary
        // axis, analytic for a Green's function pole at E_n:
        //   -(1/pi) sum_n sum_k w_k q_k(n) Re-kernel(i w_j - E_n, u_k)
        // with kernel(z, u) = z / (z^2 + u^2).
        let samples: Vec<Complex64> = iw_grid
            .iter()
            .map(|&w| {
                let z = c64(0.0, w);
                let mut acc = Complex64::ZERO;
                for n in 0..nb {
                    // pole below (occupied) or above (empty) the real axis
                    let en = ctx.energies[n];
                    let dz = z - en;
                    for k in 0..nk {
                        let u = eps_iw.omegas[k];
                        let kern = dz / (dz * dz + u * u);
                        acc += kern.scale(weights[k] * inv_pi * q[k * nb + n]);
                    }
                }
                -acc
            })
            .collect();
        // continue to the real energies
        let nodes: Vec<Complex64> = iw_grid.iter().map(|&w| c64(0.0, w)).collect();
        let pade = PadeApproximant::try_new(&nodes, &samples)?;
        let band: Vec<Complex64> = grid
            .iter()
            .map(|&e| pade.eval(c64(e, 0.02)) + Complex64::real(sigma_x))
            .collect();
        sigma.push(band);
        sigma_iw_all.push(samples);
        let _ = s;
    }
    Ok(SigmaImagAxisResult {
        sigma,
        e_grids: e_grids.to_vec(),
        sigma_iw: sigma_iw_all,
        iw_grid,
        seconds: t0.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chi::{ChiConfig, ChiEngine};
    use crate::mtxel::Mtxel;
    use crate::sigma::diag::{gpp_sigma_diag, KernelVariant};
    use crate::testkit;
    use bgw_num::grid::semi_infinite_quadrature;

    fn build_imag_eps() -> (EpsilonInverse, Vec<f64>) {
        let (_, setup) = testkit::small_context();
        let mtxel = Mtxel::new(&setup.wfn_sph, &setup.eps_sph);
        let cfg = ChiConfig {
            q0: setup.coulomb.q0,
            ..ChiConfig::default()
        };
        let engine = ChiEngine::new(&setup.wf, &mtxel, cfg);
        let (nodes, weights) = semi_infinite_quadrature(12, 1.5);
        let mut t = Default::default();
        let chis = engine.chi_imag_freqs(&nodes, &mut t);
        let eps = EpsilonInverse::build(&chis, &nodes, &setup.coulomb, &setup.eps_sph)
            .expect("dielectric matrix must be invertible");
        (eps, weights)
    }

    #[test]
    fn imaginary_axis_chi_is_real_and_screens_less_with_u() {
        let (eps, _) = build_imag_eps();
        // eps^{-1}(iu) is real-symmetric-ish and approaches I for large u
        let n = eps.n_freq();
        let first = eps.inv[0][(0, 0)].re;
        let last = eps.inv[n - 1][(0, 0)].re;
        assert!(first < last && last <= 1.0 + 1e-9, "{first} vs {last}");
        for k in 0..n {
            assert!(eps.inv[k][(0, 0)].im.abs() < 1e-8, "Im at k={k}");
        }
    }

    #[test]
    fn continued_sigma_matches_gpp_scale() {
        let (ctx, _) = testkit::small_context();
        let (eps, weights) = build_imag_eps();
        let grids: Vec<Vec<f64>> = ctx.sigma_energies.iter().map(|&e| vec![e]).collect();
        let r =
            imag_axis_sigma_diag(&ctx, &eps, &weights, &grids, 10).expect("continuation succeeds");
        let gpp = gpp_sigma_diag(&ctx, &grids, KernelVariant::Reference);
        for s in 0..ctx.n_sigma() {
            let a = r.sigma[s][0].re;
            let b = gpp.sigma[s][0];
            assert!(a.is_finite());
            assert_eq!(a.signum(), b.signum(), "band {s}: {a} vs {b}");
            let ratio = (a / b).abs();
            assert!((0.2..5.0).contains(&ratio), "band {s}: {a} vs GPP {b}");
        }
        // HOMO below LUMO: the gap opens in this formulation too
        let h = r.sigma[ctx.homo_pos()][0].re;
        let l = r.sigma[ctx.lumo_pos()][0].re;
        assert!(h < l, "imag-axis: Sigma_HOMO {h} !< Sigma_LUMO {l}");
        assert_eq!(r.iw_grid.len(), 10);
        assert!(r.seconds > 0.0);
    }

    #[test]
    fn degenerate_iw_grid_is_a_typed_error() {
        // A quadrature whose frequencies are all zero collapses the
        // Sigma(i w) sample grid onto the origin (w_max = 0): every Pade
        // node coincides and the continuation must fail typed, not
        // continue garbage.
        let (ctx, _) = testkit::small_context();
        let (eps, weights) = build_imag_eps();
        let zeroed =
            EpsilonInverse::from_parts(vec![0.0; eps.n_freq()], eps.inv.clone(), eps.vsqrt.clone());
        let grids: Vec<Vec<f64>> = ctx.sigma_energies.iter().map(|&e| vec![e]).collect();
        let err = imag_axis_sigma_diag(&ctx, &zeroed, &weights, &grids, 8)
            .expect_err("all-zero iw grid must fail");
        assert!(
            matches!(err, bgw_num::PadeError::DuplicateNodes { .. }),
            "wrong error: {err:?}"
        );
    }

    #[test]
    fn sigma_on_imaginary_axis_is_smooth() {
        // |Sigma(i w)| decays monotonically at large w — the smoothness
        // that motivates the imaginary-axis formulation.
        let (ctx, _) = testkit::small_context();
        let (eps, weights) = build_imag_eps();
        let grids: Vec<Vec<f64>> = ctx.sigma_energies.iter().map(|&e| vec![e]).collect();
        let r =
            imag_axis_sigma_diag(&ctx, &eps, &weights, &grids, 12).expect("continuation succeeds");
        let s = &r.sigma_iw[ctx.homo_pos()];
        let tail: Vec<f64> = s.iter().map(|z| z.abs()).collect();
        // beyond the correlation scale the magnitude decreases
        let peak_idx = tail
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        for w in tail[peak_idx..].windows(2) {
            assert!(w[1] <= w[0] * 1.2 + 1e-12, "non-smooth tail: {tail:?}");
        }
    }
}
