//! Householder QR factorization and least squares.
//!
//! Used for orthonormalizing band blocks (the iterative Parabands path)
//! and for the small least-squares fits of the convergence and
//! plasmon-pole machinery. `A = Q R` with unitary `Q` (`m x n`, thin) and
//! upper-triangular `R` (`n x n`), for `m >= n`.

use crate::matrix::CMatrix;
use bgw_num::Complex64;

/// A thin QR factorization.
#[derive(Clone, Debug)]
pub struct Qr {
    /// Thin unitary factor (`m x n`, orthonormal columns).
    pub q: CMatrix,
    /// Upper-triangular factor (`n x n`).
    pub r: CMatrix,
}

/// Factorizes `a` (`m x n`, `m >= n`) by Householder reflections.
pub fn qr(a: &CMatrix) -> Qr {
    let m = a.nrows();
    let n = a.ncols();
    assert!(m >= n, "thin QR needs m >= n");
    let mut r_full = a.clone();
    // accumulate Q^dagger implicitly by storing reflectors
    let mut vs: Vec<Vec<Complex64>> = Vec::with_capacity(n);
    let mut taus: Vec<f64> = Vec::with_capacity(n);
    for k in 0..n {
        // Householder on column k below row k (Hermitian-unitary variant,
        // same construction as the eigensolver's).
        let mut xnorm2 = 0.0;
        for i in k..m {
            xnorm2 += r_full[(i, k)].norm_sqr();
        }
        let head = r_full[(k, k)];
        let tail2 = xnorm2 - head.norm_sqr();
        let mut v = vec![Complex64::ZERO; m];
        if tail2 <= f64::EPSILON * f64::EPSILON * xnorm2.max(1e-300) {
            // column already triangular; identity reflector
            vs.push(v);
            taus.push(0.0);
            continue;
        }
        let xnorm = xnorm2.sqrt();
        let phase = if head.abs() > 0.0 {
            head.scale(1.0 / head.abs())
        } else {
            Complex64::ONE
        };
        for i in k..m {
            v[i] = r_full[(i, k)];
        }
        v[k] += phase.scale(xnorm);
        let vnorm2: f64 = v.iter().map(|z| z.norm_sqr()).sum();
        let tau = 2.0 / vnorm2;
        // apply H = I - tau v v^dagger to the remaining columns
        for j in k..n {
            let mut vdc = Complex64::ZERO;
            for i in k..m {
                vdc = vdc.conj_mul_add(v[i], r_full[(i, j)]);
            }
            let f = vdc.scale(tau);
            for i in k..m {
                let vi = v[i];
                r_full[(i, j)] -= vi * f;
            }
        }
        vs.push(v);
        taus.push(tau);
    }
    // R = top n x n of r_full
    let r = r_full.submatrix(0, n, 0, n);
    // Q = H_0 H_1 ... H_{n-1} applied to the thin identity
    let mut q = CMatrix::from_fn(m, n, |i, j| {
        if i == j {
            Complex64::ONE
        } else {
            Complex64::ZERO
        }
    });
    for k in (0..n).rev() {
        let (v, tau) = (&vs[k], taus[k]);
        if tau == 0.0 {
            continue;
        }
        for j in 0..n {
            let mut vdc = Complex64::ZERO;
            for i in k..m {
                vdc = vdc.conj_mul_add(v[i], q[(i, j)]);
            }
            let f = vdc.scale(tau);
            for i in k..m {
                let vi = v[i];
                q[(i, j)] -= vi * f;
            }
        }
    }
    Qr { q, r }
}

impl Qr {
    /// Solves the least-squares problem `min ||A x - b||` via
    /// `R x = Q^dagger b`. Requires `R` nonsingular.
    #[allow(clippy::needless_range_loop)] // triangular solves index partial ranges
    pub fn solve_least_squares(&self, b: &[Complex64]) -> Vec<Complex64> {
        let m = self.q.nrows();
        let n = self.q.ncols();
        assert_eq!(b.len(), m);
        // y = Q^dagger b
        let mut y = vec![Complex64::ZERO; n];
        for j in 0..n {
            let mut acc = Complex64::ZERO;
            for i in 0..m {
                acc = acc.conj_mul_add(self.q[(i, j)], b[i]);
            }
            y[j] = acc;
        }
        // back substitution R x = y
        for i in (0..n).rev() {
            let mut acc = y[i];
            for k in i + 1..n {
                acc -= self.r[(i, k)] * y[k];
            }
            y[i] = acc / self.r[(i, i)];
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, GemmBackend, Op};
    use bgw_num::c64;

    #[test]
    fn qr_reconstructs_and_q_is_orthonormal() {
        for (m, n) in [(5usize, 5usize), (8, 5), (12, 3), (4, 1)] {
            let a = CMatrix::random(m, n, (m * 10 + n) as u64);
            let f = qr(&a);
            let back = matmul(&f.q, Op::None, &f.r, Op::None, GemmBackend::Blocked);
            assert!(back.max_abs_diff(&a) < 1e-10, "({m},{n})");
            let qtq = matmul(&f.q, Op::Adj, &f.q, Op::None, GemmBackend::Blocked);
            assert!(qtq.max_abs_diff(&CMatrix::identity(n)) < 1e-10, "({m},{n})");
            // R upper triangular
            for i in 0..n {
                for j in 0..i {
                    assert!(f.r[(i, j)].abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn least_squares_recovers_exact_solution() {
        // consistent overdetermined system
        let a = CMatrix::random(10, 4, 3);
        let x_true: Vec<Complex64> = (0..4)
            .map(|i| c64(i as f64 - 1.5, 0.5 * i as f64))
            .collect();
        let b = a.matvec(&x_true);
        let x = qr(&a).solve_least_squares(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((*xi - *ti).abs() < 1e-9);
        }
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // inconsistent system: residual must be orthogonal to range(A)
        let a = CMatrix::random(8, 3, 7);
        let b: Vec<Complex64> = (0..8).map(|i| c64((i as f64).sin(), 0.3)).collect();
        let x = qr(&a).solve_least_squares(&b);
        let ax = a.matvec(&x);
        let r: Vec<Complex64> = b.iter().zip(&ax).map(|(u, v)| *u - *v).collect();
        // A^dagger r = 0
        let atr = a.matvec_adj(&r);
        for z in atr {
            assert!(z.abs() < 1e-9, "residual not orthogonal: {z}");
        }
    }

    #[test]
    #[should_panic(expected = "m >= n")]
    fn rejects_wide_matrices() {
        let _ = qr(&CMatrix::zeros(2, 5));
    }
}
