//! `bgw-dist`: distributed dense linear algebra over the simulated MPI
//! runtime.
//!
//! The paper's Epsilon module inverts `N_G x N_G` dielectric matrices too
//! large for one device, dispatching to ScaLAPACK-class distributed
//! solvers. This crate is that substrate at reproduction scale: matrices
//! are distributed by *row blocks* over the ranks of a communicator,
//! products run as local GEMMs against all-gathered panels, and the
//! inversion uses the Newton-Schulz iteration
//! `X_{k+1} = X_k (2 I - A X_k)` — quadratically convergent and built
//! entirely from the distributed GEMM, which is exactly why it suits
//! accelerator fleets.
//!
//! Every rank holds `rows(rank) = ceil-split of n` contiguous rows; all
//! collective calls must be made by every rank of the communicator in the
//! same order (MPI semantics, enforced by `bgw-comm`).

#![warn(missing_docs)]

use bgw_comm::{Comm, CommError};
use bgw_linalg::{matmul, zgemm, CMatrix, GemmBackend, Op};
use bgw_num::Complex64;

/// How a distributed linear-algebra operation fails: a communicator
/// fault, or a numerical condition of the operation itself.
///
/// The Newton-Schulz non-convergence case used to be an `assert!` —
/// one ill-conditioned local panel aborted the whole pool instead of
/// letting the resilient drivers degrade to their typed-error recovery
/// path. It is data now, not a crash.
#[derive(Clone, Debug, PartialEq)]
pub enum DistError {
    /// A runtime fault of the underlying communicator.
    Comm(CommError),
    /// The Newton-Schulz iteration failed to contract within its sweep
    /// budget: the matrix is outside the iteration's convergence domain
    /// (singular or too ill-conditioned). Deterministic — every rank
    /// computes the same residual, so every rank reports the same error
    /// and no collective is left half-entered.
    NotConverged {
        /// Last observed `||I - A X||_max` residual.
        residual: f64,
        /// Sweeps performed before giving up.
        iterations: usize,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Comm(e) => write!(f, "communicator fault: {e:?}"),
            DistError::NotConverged {
                residual,
                iterations,
            } => write!(
                f,
                "Newton-Schulz failed to converge after {iterations} sweeps \
                 (residual {residual:.3e}); use the serial LU fallback"
            ),
        }
    }
}

impl std::error::Error for DistError {}

impl From<CommError> for DistError {
    fn from(e: CommError) -> Self {
        DistError::Comm(e)
    }
}

/// The rows of a global `n x n`-ish matrix owned by one rank.
#[derive(Clone, Debug)]
pub struct DistMatrix {
    /// Global row count.
    pub n_rows: usize,
    /// Global column count.
    pub n_cols: usize,
    /// First global row owned by this rank.
    pub row_offset: usize,
    /// The local row block (`local_rows x n_cols`).
    pub local: CMatrix,
}

/// Rows owned by `rank` in a ceil-split of `n` over `size` ranks.
pub fn row_range(n: usize, size: usize, rank: usize) -> (usize, usize) {
    let per = n.div_ceil(size.max(1));
    let lo = (rank * per).min(n);
    let hi = (lo + per).min(n);
    (lo, hi)
}

impl DistMatrix {
    /// Distributes a replicated matrix: each rank keeps its row block.
    pub fn from_replicated(comm: &Comm, a: &CMatrix) -> Self {
        let (lo, hi) = row_range(a.nrows(), comm.size(), comm.rank());
        Self {
            n_rows: a.nrows(),
            n_cols: a.ncols(),
            row_offset: lo,
            local: a.submatrix(lo, hi, 0, a.ncols()),
        }
    }

    /// A distributed identity matrix.
    pub fn identity(comm: &Comm, n: usize) -> Self {
        let (lo, hi) = row_range(n, comm.size(), comm.rank());
        let local = CMatrix::from_fn(hi - lo, n, |i, j| {
            if lo + i == j {
                Complex64::ONE
            } else {
                Complex64::ZERO
            }
        });
        Self {
            n_rows: n,
            n_cols: n,
            row_offset: lo,
            local,
        }
    }

    /// Number of locally owned rows.
    pub fn local_rows(&self) -> usize {
        self.local.nrows()
    }

    /// Fallible row-block gather; faults in the underlying allgather
    /// surface as typed errors instead of panics, which is what the
    /// crash-recovery drivers in `bgw-core` build on.
    pub fn try_to_replicated(&self, comm: &Comm) -> Result<CMatrix, CommError> {
        let blocks = comm.try_allgather(self.local.as_slice().to_vec())?;
        let mut out = CMatrix::zeros(self.n_rows, self.n_cols);
        let mut row = 0usize;
        for block in blocks {
            let rows = block.len() / self.n_cols.max(1);
            for r in 0..rows {
                out.row_mut(row + r)
                    .copy_from_slice(&block[r * self.n_cols..(r + 1) * self.n_cols]);
            }
            row += rows;
        }
        assert_eq!(row, self.n_rows, "row blocks must tile the matrix");
        Ok(out)
    }

    /// Gathers the full matrix on every rank (an allgather of row blocks).
    pub fn to_replicated(&self, comm: &Comm) -> CMatrix {
        self.try_to_replicated(comm)
            .unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible distributed product; see [`DistMatrix::matmul`].
    pub fn try_matmul(&self, comm: &Comm, b: &DistMatrix) -> Result<DistMatrix, CommError> {
        let _span = bgw_trace::span!("dist.matmul");
        assert_eq!(self.n_cols, b.n_rows, "distributed dims disagree");
        let b_full = b.try_to_replicated(comm)?;
        let local = matmul(
            &self.local,
            Op::None,
            &b_full,
            Op::None,
            GemmBackend::Parallel,
        );
        Ok(DistMatrix {
            n_rows: self.n_rows,
            n_cols: b.n_cols,
            row_offset: self.row_offset,
            local,
        })
    }

    /// Distributed product `self * b` where `b` is distributed the same
    /// way: `b`'s row blocks are all-gathered into a replicated operand,
    /// then each rank multiplies its local row panel — the standard
    /// row-panel SUMMA degenerate case, one allgather per product.
    pub fn matmul(&self, comm: &Comm, b: &DistMatrix) -> DistMatrix {
        self.try_matmul(comm, b)
            .unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Pipelined distributed product `self * b`: instead of one
    /// whole-matrix allgather followed by one local GEMM, `b` is gathered
    /// and consumed in `n_panels` column panels. Each collective posts as
    /// early as possible — a rank finishing its GEMM on panel `p` enters
    /// the rendezvous for panel `p+1` while slower ranks still compute,
    /// so communication of the next panel overlaps compute of the current
    /// one across the world (and the replicated footprint drops from
    /// `n x n` to `n x panel`). Column panels see the full contraction
    /// dimension, so the result is elementwise identical to
    /// [`DistMatrix::try_matmul`].
    pub fn try_matmul_pipelined(
        &self,
        comm: &Comm,
        b: &DistMatrix,
        n_panels: usize,
    ) -> Result<DistMatrix, CommError> {
        let _span = bgw_trace::span!("dist.matmul_pipelined");
        assert_eq!(self.n_cols, b.n_rows, "distributed dims disagree");
        let k = n_panels.clamp(1, b.n_cols.max(1));
        let mut local = CMatrix::zeros(self.local_rows(), b.n_cols);
        for p in 0..k {
            let lo = p * b.n_cols / k;
            let hi = (p + 1) * b.n_cols / k;
            if lo == hi {
                continue;
            }
            // Gather this column panel of `b` (each rank contributes the
            // panel slice of its row block).
            let panel_block = b.local.submatrix(0, b.local_rows(), lo, hi);
            let blocks = comm.try_allgather(panel_block.as_slice().to_vec())?;
            let width = hi - lo;
            let mut panel = CMatrix::zeros(b.n_rows, width);
            let mut row = 0usize;
            for block in blocks {
                let rows = block.len() / width.max(1);
                for r in 0..rows {
                    panel
                        .row_mut(row + r)
                        .copy_from_slice(&block[r * width..(r + 1) * width]);
                }
                row += rows;
            }
            assert_eq!(row, b.n_rows, "row blocks must tile the panel");
            let c_panel = matmul(
                &self.local,
                Op::None,
                &panel,
                Op::None,
                GemmBackend::Parallel,
            );
            for r in 0..self.local_rows() {
                local.row_mut(r)[lo..hi].copy_from_slice(c_panel.row(r));
            }
        }
        Ok(DistMatrix {
            n_rows: self.n_rows,
            n_cols: b.n_cols,
            row_offset: self.row_offset,
            local,
        })
    }

    /// `self = alpha * self + beta * other` elementwise on the local block.
    pub fn axpby(&mut self, alpha: Complex64, beta: Complex64, other: &DistMatrix) {
        assert_eq!(self.local.shape(), other.local.shape());
        for (a, b) in self
            .local
            .as_mut_slice()
            .iter_mut()
            .zip(other.local.as_slice())
        {
            *a = *a * alpha + *b * beta;
        }
    }

    /// Global Frobenius norm (allreduced).
    pub fn frobenius_norm(&self, comm: &Comm) -> f64 {
        let local: f64 = self.local.as_slice().iter().map(|z| z.norm_sqr()).sum();
        comm.allreduce(local, |a, b| a + b).sqrt()
    }

    /// Global max-abs (allreduced).
    pub fn max_abs(&self, comm: &Comm) -> f64 {
        let local = self.local.max_abs();
        comm.allreduce(local, f64::max)
    }
}

/// How many column panels the Newton-Schulz products pipeline through
/// [`DistMatrix::try_matmul_pipelined`]: enough to overlap collectives
/// with compute without shrinking the per-panel GEMM below useful size.
const NS_PIPELINE_PANELS: usize = 4;

/// Fallible distributed Newton-Schulz inversion; see
/// [`newton_schulz_inverse`]. Communication faults surface as
/// [`DistError::Comm`]; non-convergence (a singular or ill-conditioned
/// matrix) surfaces as [`DistError::NotConverged`] instead of the assert
/// that used to abort the pool — resilient callers degrade to their
/// typed-error recovery path.
pub fn try_newton_schulz_inverse(
    comm: &Comm,
    a: &DistMatrix,
    tol: f64,
    max_iter: usize,
) -> Result<(DistMatrix, usize), DistError> {
    assert_eq!(a.n_rows, a.n_cols, "inversion needs a square matrix");
    let n = a.n_rows;
    // Norm estimates need global column sums: compute on the replicated
    // copy once (the seed is cheap relative to the iteration).
    let a_full = a.try_to_replicated(comm)?;
    let norm_1 = (0..n)
        .map(|j| (0..n).map(|i| a_full[(i, j)].abs()).sum::<f64>())
        .fold(0.0, f64::max);
    let norm_inf = (0..n)
        .map(|i| a_full.row(i).iter().map(|z| z.abs()).sum::<f64>())
        .fold(0.0, f64::max);
    let scale = 1.0 / (norm_1 * norm_inf).max(1e-300);
    // X_0 = scale * A^dagger, distributed by rows.
    let (lo, hi) = row_range(n, comm.size(), comm.rank());
    let x0_local = CMatrix::from_fn(hi - lo, n, |i, j| a_full[(j, lo + i)].conj().scale(scale));
    let mut x = DistMatrix {
        n_rows: n,
        n_cols: n,
        row_offset: lo,
        local: x0_local,
    };

    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        // R = A X (distributed, pipelined so the panel collectives post
        // early and overlap the per-panel GEMMs), residual = ||I - R||_max
        let ax = a.try_matmul_pipelined(comm, &x, NS_PIPELINE_PANELS)?;
        let mut residual: f64 = 0.0;
        for i in 0..ax.local_rows() {
            for j in 0..n {
                let target = if ax.row_offset + i == j {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                };
                residual = residual.max((ax.local[(i, j)] - target).abs());
            }
        }
        let residual = comm.try_allreduce(residual, f64::max)?;
        if residual < tol {
            break;
        }
        // X <- X (2I - A X): build M = 2I - AX (replicated), then local GEMM.
        let mut m = ax.try_to_replicated(comm)?;
        m.scale_inplace(Complex64::new(-1.0, 0.0));
        for d in 0..n {
            m[(d, d)] += Complex64::new(2.0, 0.0);
        }
        let mut new_local = CMatrix::zeros(x.local_rows(), n);
        zgemm(
            Complex64::ONE,
            &x.local,
            Op::None,
            &m,
            Op::None,
            Complex64::ZERO,
            &mut new_local,
            GemmBackend::Parallel,
        );
        x.local = new_local;
        if it == max_iter - 1 && residual >= 0.9 {
            // Outside the iteration's contraction domain. Every rank
            // computed the same allreduced residual, so every rank takes
            // this branch together — the world stays collectively
            // consistent while the caller falls back or recovers.
            return Err(DistError::NotConverged {
                residual,
                iterations,
            });
        }
    }
    Ok((x, iterations))
}

/// Distributed Newton-Schulz inversion of a square matrix.
///
/// Converges quadratically when seeded with `X_0 = A^dagger / (||A||_1
/// ||A||_inf)`; iteration stops when `||I - A X||_max < tol` or after
/// `max_iter` sweeps. Returns `(inverse, iterations)`; panics (with a
/// typed [`DistError`] payload) if the residual fails to drop below
/// `0.9` within the budget — fallible callers use
/// [`try_newton_schulz_inverse`] and recover instead.
pub fn newton_schulz_inverse(
    comm: &Comm,
    a: &DistMatrix,
    tol: f64,
    max_iter: usize,
) -> (DistMatrix, usize) {
    try_newton_schulz_inverse(comm, a, tol, max_iter).unwrap_or_else(|e| std::panic::panic_any(e))
}

/// Fallible distributed epsilon build-and-invert; see
/// [`invert_epsilon_distributed`].
pub fn try_invert_epsilon_distributed(
    comm: &Comm,
    chi: &DistMatrix,
    vsqrt: &[f64],
    tol: f64,
) -> Result<(DistMatrix, usize), DistError> {
    assert_eq!(chi.n_rows, chi.n_cols);
    assert_eq!(vsqrt.len(), chi.n_rows);
    let mut eps = chi.clone();
    for i in 0..eps.local_rows() {
        let gi = eps.row_offset + i;
        for j in 0..eps.n_cols {
            let v = vsqrt[gi] * vsqrt[j];
            eps.local[(i, j)] = -chi.local[(i, j)].scale(v);
        }
        eps.local[(i, gi)] += Complex64::ONE;
    }
    try_newton_schulz_inverse(comm, &eps, tol, 60)
}

/// Distributed build-and-invert of the symmetrized dielectric matrix:
/// `eps~ = I - v^{1/2} chi v^{1/2}` from a distributed `chi`, inverted by
/// Newton-Schulz — the distributed Epsilon path.
pub fn invert_epsilon_distributed(
    comm: &Comm,
    chi: &DistMatrix,
    vsqrt: &[f64],
    tol: f64,
) -> (DistMatrix, usize) {
    try_invert_epsilon_distributed(comm, chi, vsqrt, tol)
        .unwrap_or_else(|e| std::panic::panic_any(e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgw_comm::run_world;
    use bgw_linalg::invert;

    #[test]
    fn row_ranges_tile() {
        for (n, size) in [(10usize, 3usize), (7, 7), (5, 8), (100, 6)] {
            let mut total = 0;
            for r in 0..size {
                let (lo, hi) = row_range(n, size, r);
                assert!(lo <= hi && hi <= n);
                total += hi - lo;
            }
            assert_eq!(total, n, "n={n}, size={size}");
        }
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let a = CMatrix::random(13, 9, 1);
        let (out, _) = run_world(4, |comm| {
            let d = DistMatrix::from_replicated(comm, &a);
            d.to_replicated(comm).as_slice().to_vec()
        });
        for flat in out {
            let b = CMatrix::from_vec(13, 9, flat);
            assert_eq!(b.max_abs_diff(&a), 0.0);
        }
    }

    #[test]
    fn distributed_matmul_matches_serial() {
        let a = CMatrix::random(11, 7, 2);
        let b = CMatrix::random(7, 5, 3);
        let serial = matmul(&a, Op::None, &b, Op::None, GemmBackend::Naive);
        let (out, _) = run_world(3, |comm| {
            let da = DistMatrix::from_replicated(comm, &a);
            let db = DistMatrix::from_replicated(comm, &b);
            da.matmul(comm, &db).to_replicated(comm).as_slice().to_vec()
        });
        for flat in out {
            let c = CMatrix::from_vec(11, 5, flat);
            assert!(c.max_abs_diff(&serial) < 1e-12);
        }
    }

    #[test]
    fn newton_schulz_matches_lu_inverse() {
        // well-conditioned test matrix: diagonally dominant
        let n = 16;
        let mut a = CMatrix::random(n, n, 5);
        for d in 0..n {
            a[(d, d)] += Complex64::new(4.0, 0.0);
        }
        let reference = invert(&a).unwrap();
        let (out, _) = run_world(4, |comm| {
            let da = DistMatrix::from_replicated(comm, &a);
            let (inv, iters) = newton_schulz_inverse(comm, &da, 1e-12, 60);
            (inv.to_replicated(comm).as_slice().to_vec(), iters)
        });
        for (flat, iters) in out {
            let inv = CMatrix::from_vec(n, n, flat);
            assert!(
                inv.max_abs_diff(&reference) < 1e-9,
                "{}",
                inv.max_abs_diff(&reference)
            );
            assert!(iters > 1 && iters < 60);
        }
    }

    #[test]
    fn distributed_epsilon_inversion_matches_serial_build() {
        // synthetic negative-definite chi (screening-like)
        let n = 12;
        let h = CMatrix::random_hermitian(n, 9);
        let chi = CMatrix::from_fn(n, n, |i, j| {
            let mut v = h[(i, j)].scale(0.05);
            if i == j {
                v -= Complex64::new(0.4, 0.0);
            }
            v
        });
        let vsqrt: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64 * 0.3)).collect();
        // serial reference
        let mut eps = CMatrix::identity(n);
        for i in 0..n {
            for j in 0..n {
                eps[(i, j)] -= chi[(i, j)].scale(vsqrt[i] * vsqrt[j]);
            }
        }
        let reference = invert(&eps).unwrap();
        let (out, _) = run_world(3, |comm| {
            let dchi = DistMatrix::from_replicated(comm, &chi);
            let (inv, _) = invert_epsilon_distributed(comm, &dchi, &vsqrt, 1e-12);
            inv.to_replicated(comm).as_slice().to_vec()
        });
        for flat in out {
            let inv = CMatrix::from_vec(n, n, flat);
            assert!(inv.max_abs_diff(&reference) < 1e-8);
        }
    }

    #[test]
    fn pipelined_matmul_matches_plain() {
        let a = CMatrix::random(11, 7, 21);
        let b = CMatrix::random(7, 5, 22);
        let serial = matmul(&a, Op::None, &b, Op::None, GemmBackend::Naive);
        for panels in [1usize, 2, 4, 9] {
            let (out, _) = run_world(3, |comm| {
                let da = DistMatrix::from_replicated(comm, &a);
                let db = DistMatrix::from_replicated(comm, &b);
                da.try_matmul_pipelined(comm, &db, panels)
                    .unwrap()
                    .to_replicated(comm)
                    .as_slice()
                    .to_vec()
            });
            for flat in out {
                let c = CMatrix::from_vec(11, 5, flat);
                assert!(
                    c.max_abs_diff(&serial) < 1e-12,
                    "panels={panels}: {}",
                    c.max_abs_diff(&serial)
                );
            }
        }
    }

    #[test]
    fn singular_matrix_yields_typed_nonconvergence_on_every_rank() {
        // The zero matrix is maximally outside the Newton-Schulz domain:
        // the residual stays pinned at 1. Every rank must get the same
        // typed error — no panic, no rank left waiting in a collective.
        let a = CMatrix::zeros(8, 8);
        let (out, _) = run_world(3, |comm| {
            let da = DistMatrix::from_replicated(comm, &a);
            try_newton_schulz_inverse(comm, &da, 1e-12, 5)
        });
        for r in out {
            match r {
                Err(DistError::NotConverged {
                    residual,
                    iterations,
                }) => {
                    assert!(residual >= 0.9, "residual {residual}");
                    assert_eq!(iterations, 5);
                }
                other => panic!("expected NotConverged, got {other:?}"),
            }
        }
    }

    #[test]
    fn norms_are_global() {
        let a = CMatrix::random(10, 10, 11);
        let serial_f = a.frobenius_norm();
        let serial_m = a.max_abs();
        let (out, _) = run_world(4, |comm| {
            let d = DistMatrix::from_replicated(comm, &a);
            (d.frobenius_norm(comm), d.max_abs(comm))
        });
        for (f, m) in out {
            assert!((f - serial_f).abs() < 1e-12);
            assert!((m - serial_m).abs() < 1e-15);
        }
    }

    #[test]
    fn axpby_local_update() {
        let a = CMatrix::random(8, 8, 1);
        let b = CMatrix::random(8, 8, 2);
        let (out, _) = run_world(2, |comm| {
            let mut da = DistMatrix::from_replicated(comm, &a);
            let db = DistMatrix::from_replicated(comm, &b);
            da.axpby(Complex64::new(2.0, 0.0), Complex64::new(0.0, 1.0), &db);
            da.to_replicated(comm).as_slice().to_vec()
        });
        for flat in out {
            let c = CMatrix::from_vec(8, 8, flat);
            for i in 0..8 {
                for j in 0..8 {
                    let expect = a[(i, j)].scale(2.0) + b[(i, j)] * Complex64::new(0.0, 1.0);
                    assert!((c[(i, j)] - expect).abs() < 1e-14);
                }
            }
        }
    }
}
