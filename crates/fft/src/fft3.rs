//! Three-dimensional complex FFT over row-major `[nx][ny][nz]` grids.
//!
//! This is the transform behind the MTXEL kernel: wavefunctions are scattered
//! from the plane-wave sphere onto the FFT box, transformed to real space,
//! multiplied pointwise, and transformed back (paper Sec. 5.2, ref 8).

use crate::plan::{Direction, FftPlan};
use bgw_num::Complex64;

/// A reusable 3-D FFT plan.
#[derive(Clone, Debug)]
pub struct Fft3d {
    nx: usize,
    ny: usize,
    nz: usize,
    plan_x: FftPlan,
    plan_y: FftPlan,
    plan_z: FftPlan,
}

impl Fft3d {
    /// Creates a plan for an `nx x ny x nz` grid.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Self {
            nx,
            ny,
            nz,
            plan_x: FftPlan::new(nx),
            plan_y: FftPlan::new(ny),
            plan_z: FftPlan::new(nz),
        }
    }

    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// `true` if the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of grid point `(ix, iy, iz)`.
    #[inline]
    pub fn index(&self, ix: usize, iy: usize, iz: usize) -> usize {
        (ix * self.ny + iy) * self.nz + iz
    }

    /// Transforms `data` (length `nx*ny*nz`, row-major) in place.
    pub fn process(&self, data: &mut [Complex64], dir: Direction) {
        assert_eq!(data.len(), self.len(), "grid buffer length mismatch");
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        // z lines are contiguous.
        {
            let mut scratch = vec![Complex64::ZERO; self.plan_z.scratch_len()];
            for line in data.chunks_exact_mut(nz) {
                self.plan_z.process_with(line, &mut scratch, dir);
            }
        }
        // y lines: stride nz within each x-plane.
        {
            let mut scratch = vec![Complex64::ZERO; self.plan_y.scratch_len()];
            let mut line = vec![Complex64::ZERO; ny];
            for ix in 0..nx {
                for iz in 0..nz {
                    let base = ix * ny * nz + iz;
                    for iy in 0..ny {
                        line[iy] = data[base + iy * nz];
                    }
                    self.plan_y.process_with(&mut line, &mut scratch, dir);
                    for iy in 0..ny {
                        data[base + iy * nz] = line[iy];
                    }
                }
            }
        }
        // x lines: stride ny*nz.
        {
            let mut scratch = vec![Complex64::ZERO; self.plan_x.scratch_len()];
            let mut line = vec![Complex64::ZERO; nx];
            let stride = ny * nz;
            for rem in 0..stride {
                for ix in 0..nx {
                    line[ix] = data[rem + ix * stride];
                }
                self.plan_x.process_with(&mut line, &mut scratch, dir);
                for ix in 0..nx {
                    data[rem + ix * stride] = line[ix];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::dft_reference;
    use bgw_num::c64;

    fn rand_grid(n: usize, seed: u64) -> Vec<Complex64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n).map(|_| c64(next(), next())).collect()
    }

    /// Brute-force 3-D DFT by applying the 1-D reference along each axis.
    fn dft3_reference(
        x: &[Complex64],
        (nx, ny, nz): (usize, usize, usize),
        dir: Direction,
    ) -> Vec<Complex64> {
        let mut data = x.to_vec();
        // z
        for line in data.chunks_exact_mut(nz) {
            let t = dft_reference(line, dir);
            line.copy_from_slice(&t);
        }
        // y
        for ix in 0..nx {
            for iz in 0..nz {
                let mut line = Vec::with_capacity(ny);
                for iy in 0..ny {
                    line.push(data[(ix * ny + iy) * nz + iz]);
                }
                let t = dft_reference(&line, dir);
                for iy in 0..ny {
                    data[(ix * ny + iy) * nz + iz] = t[iy];
                }
            }
        }
        // x
        for iy in 0..ny {
            for iz in 0..nz {
                let mut line = Vec::with_capacity(nx);
                for ix in 0..nx {
                    line.push(data[(ix * ny + iy) * nz + iz]);
                }
                let t = dft_reference(&line, dir);
                for ix in 0..nx {
                    data[(ix * ny + iy) * nz + iz] = t[ix];
                }
            }
        }
        data
    }

    #[test]
    fn matches_reference_small_grids() {
        for dims in [(2usize, 3usize, 4usize), (4, 4, 4), (3, 5, 7), (6, 5, 4)] {
            let n = dims.0 * dims.1 * dims.2;
            let x = rand_grid(n, n as u64);
            let plan = Fft3d::new(dims.0, dims.1, dims.2);
            let mut y = x.clone();
            plan.process(&mut y, Direction::Forward);
            let r = dft3_reference(&x, dims, Direction::Forward);
            let err = y
                .iter()
                .zip(&r)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-9, "dims {dims:?}: err {err}");
        }
    }

    #[test]
    fn roundtrip_3d() {
        let plan = Fft3d::new(5, 6, 7);
        let x = rand_grid(plan.len(), 99);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        plan.process(&mut y, Direction::Inverse);
        let err = y
            .iter()
            .zip(&x)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-11, "err {err}");
    }

    #[test]
    fn plane_wave_maps_to_single_grid_point() {
        let (nx, ny, nz) = (4usize, 6usize, 5usize);
        let plan = Fft3d::new(nx, ny, nz);
        let (kx, ky, kz) = (1usize, 2usize, 3usize);
        let mut x = vec![Complex64::ZERO; plan.len()];
        for ix in 0..nx {
            for iy in 0..ny {
                for iz in 0..nz {
                    let ph = 2.0 * std::f64::consts::PI * (kx * ix) as f64 / nx as f64
                        + 2.0 * std::f64::consts::PI * (ky * iy) as f64 / ny as f64
                        + 2.0 * std::f64::consts::PI * (kz * iz) as f64 / nz as f64;
                    x[plan.index(ix, iy, iz)] = Complex64::cis(ph);
                }
            }
        }
        plan.process(&mut x, Direction::Forward);
        let hot = plan.index(kx, ky, kz);
        for (i, z) in x.iter().enumerate() {
            if i == hot {
                assert!((z.re - plan.len() as f64).abs() < 1e-8);
            } else {
                assert!(z.abs() < 1e-8, "leakage at {i}: {z}");
            }
        }
    }

    #[test]
    fn index_is_row_major() {
        let plan = Fft3d::new(2, 3, 4);
        assert_eq!(plan.index(0, 0, 0), 0);
        assert_eq!(plan.index(0, 0, 3), 3);
        assert_eq!(plan.index(0, 1, 0), 4);
        assert_eq!(plan.index(1, 0, 0), 12);
        assert_eq!(plan.index(1, 2, 3), 23);
        assert_eq!(plan.dims(), (2, 3, 4));
        assert!(!plan.is_empty());
    }
}
