//! Deterministic fault model for the simulated MPI runtime.
//!
//! Production GW runs occupy most of a machine for hours — a regime where
//! rank loss and transient link faults are routine events, not exceptions.
//! This module models them *reproducibly*: a [`FaultPlan`] is a seeded
//! (xoshiro256**-driven) schedule mapping `(rank, op index)` slots to
//! injected faults. Every fault-checkable communicator operation (each
//! collective rendezvous, each point-to-point send/receive, each barrier)
//! consumes exactly one op index on the issuing rank, so a plan replays
//! identically run after run — the determinism contract that makes the
//! adversarial test battery a regression suite instead of a flake farm.
//!
//! Fault semantics (see DESIGN.md Sec. 10 for the full model):
//! - [`FaultKind::Transient`]: the rank's link drops the message `failures`
//!   times; the runtime retries with bounded exponential backoff and the
//!   operation succeeds, unless `failures` exceeds the retry budget, in
//!   which case the op fails with [`CommError::RetriesExhausted`].
//! - [`FaultKind::Corrupt`]: the rank's contribution to a collective
//!   arrives with a failed link-level checksum; every rank of the
//!   communicator observes the same corrupt slot, agrees to retransmit,
//!   and the collective succeeds unless the corruption outlives the retry
//!   budget ([`CommError::CorruptPayload`]).
//! - [`FaultKind::Crash`]: the rank dies permanently. The dying rank gets
//!   [`CommError::SelfCrashed`]; every surviving rank's in-flight or later
//!   operation fails with [`CommError::PeerCrashed`] instead of
//!   deadlocking, after which survivors can agree on a shrunken
//!   communicator via `Comm::shrink`.
//! - [`FaultKind::Delay`]: the rank stalls before the operation —
//!   artificial skew for load-imbalance and straggler experiments.

use bgw_num::Xoshiro256StarStar;
use std::collections::HashMap;

/// What an injected fault does when its `(rank, op index)` slot is hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The rank dies permanently at this operation.
    Crash,
    /// The rank's link fails this many times before the operation
    /// succeeds; each failure costs one backoff-retried attempt.
    Transient {
        /// Consecutive link failures before success.
        failures: u32,
    },
    /// The rank's contribution to a collective arrives corrupted this many
    /// times (simulated link-level checksum failure followed by a
    /// communicator-wide retransmit).
    Corrupt {
        /// Consecutive corrupted attempts before a clean transmission.
        repeats: u32,
    },
    /// The rank stalls for this many microseconds before the operation
    /// (artificial skew).
    Delay {
        /// Stall duration in microseconds.
        micros: u64,
    },
}

/// A seeded, fully reproducible schedule of injected faults.
///
/// Keys are `(rank, op index)` where the op index is the count of
/// fault-checkable operations the rank has issued so far (monotonic across
/// communicator splits and shrinks on the same rank thread). Plans are
/// immutable once built; the same plan against the same program replays
/// the same fault sequence bit for bit.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    events: HashMap<(usize, u64), FaultKind>,
    max_retries: u32,
    backoff_base_us: u64,
    backoff_cap_us: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// An empty plan: no faults, default retry policy.
    pub fn none() -> Self {
        Self {
            events: HashMap::new(),
            max_retries: 5,
            backoff_base_us: 20,
            backoff_cap_us: 2_000,
        }
    }

    /// Generates `n_events` faults over `n_ranks` ranks and the op-index
    /// window `0..op_window` from a xoshiro256** stream — identical seeds
    /// produce identical plans.
    pub fn seeded(seed: u64, n_ranks: usize, n_events: usize, op_window: u64) -> Self {
        assert!(n_ranks >= 1 && op_window >= 1);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut plan = Self::none();
        for _ in 0..n_events {
            let rank = rng.next_below(n_ranks);
            let op = rng.next_u64() % op_window;
            let kind = match rng.next_below(4) {
                // keep rank 0 alive so every seeded plan leaves a survivor
                0 if rank != 0 => FaultKind::Crash,
                1 => FaultKind::Transient {
                    failures: 1 + rng.next_below(3) as u32,
                },
                2 => FaultKind::Corrupt {
                    repeats: 1 + rng.next_below(2) as u32,
                },
                _ => FaultKind::Delay {
                    micros: 10 + rng.next_below(500) as u64,
                },
            };
            plan.events.insert((rank, op), kind);
        }
        plan
    }

    /// Adds a permanent crash of `rank` at its `op`-th operation.
    pub fn crash_at(mut self, rank: usize, op: u64) -> Self {
        self.events.insert((rank, op), FaultKind::Crash);
        self
    }

    /// Adds `failures` transient link failures on `rank` at its `op`-th
    /// operation.
    pub fn transient_at(mut self, rank: usize, op: u64, failures: u32) -> Self {
        self.events
            .insert((rank, op), FaultKind::Transient { failures });
        self
    }

    /// Adds `repeats` corrupted transmissions of `rank`'s contribution at
    /// its `op`-th operation.
    pub fn corrupt_at(mut self, rank: usize, op: u64, repeats: u32) -> Self {
        self.events
            .insert((rank, op), FaultKind::Corrupt { repeats });
        self
    }

    /// Adds an artificial stall of `micros` on `rank` before its `op`-th
    /// operation.
    pub fn delay_at(mut self, rank: usize, op: u64, micros: u64) -> Self {
        self.events.insert((rank, op), FaultKind::Delay { micros });
        self
    }

    /// Overrides the retry budget (attempts beyond the first) for
    /// transient and corruption faults.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// `true` when the plan schedules no faults (the fast path: unarmed
    /// worlds skip all per-op bookkeeping beyond one branch).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The fault scheduled for `rank`'s `op`-th operation, if any.
    pub fn event(&self, rank: usize, op: u64) -> Option<FaultKind> {
        self.events.get(&(rank, op)).copied()
    }

    /// Retry budget for transient/corruption faults.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Bounded exponential backoff delay for retry `attempt` (0-based):
    /// `base * 2^attempt`, capped.
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        self.backoff_base_us
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.backoff_cap_us)
    }
}

/// Typed failure of a communicator operation. The whole point of the fault
/// subsystem: a fault surfaces as one of these instead of a deadlock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// This rank was scheduled to crash at this operation: the closure
    /// should treat it as process death and return.
    SelfCrashed {
        /// World rank of the crashed rank (the caller).
        rank: usize,
        /// Op index at which the crash fired.
        op: u64,
    },
    /// A member of this communicator crashed; the operation cannot
    /// complete. Survivors may call `Comm::shrink` to recover.
    PeerCrashed {
        /// World rank of the first observed crashed peer.
        rank: usize,
    },
    /// A transient fault outlived the bounded-backoff retry budget.
    RetriesExhausted {
        /// World rank that exhausted its retries.
        rank: usize,
        /// Op index of the failing operation.
        op: u64,
        /// Attempts made.
        attempts: u32,
    },
    /// A corrupted collective payload outlived the retransmit budget.
    CorruptPayload {
        /// World rank whose contribution stayed corrupt.
        rank: usize,
        /// Attempts made.
        attempts: u32,
    },
    /// A rank thread panicked; the world is unrecoverable and every rank
    /// receives this error instead of hanging in a collective.
    WorldPoisoned {
        /// Panic message of the first failing rank.
        reason: String,
    },
    /// A blocking wait exceeded its budget on a fault-armed world — the
    /// typed form of "this would have deadlocked".
    Timeout {
        /// World rank that timed out.
        rank: usize,
        /// What the rank was waiting for.
        waiting_for: &'static str,
    },
    /// The shrink-and-retry loop exceeded its recovery budget.
    RecoveryExhausted {
        /// Recovery attempts made.
        attempts: u32,
    },
}

impl CommError {
    /// `true` for errors a surviving rank can recover from by shrinking
    /// the communicator and redistributing work.
    pub fn is_recoverable(&self) -> bool {
        matches!(self, CommError::PeerCrashed { .. })
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::SelfCrashed { rank, op } => {
                write!(f, "rank {rank} crashed (injected) at op {op}")
            }
            CommError::PeerCrashed { rank } => {
                write!(f, "peer rank {rank} crashed; collective aborted")
            }
            CommError::RetriesExhausted { rank, op, attempts } => write!(
                f,
                "rank {rank} exhausted {attempts} retries at op {op} (transient fault persisted)"
            ),
            CommError::CorruptPayload { rank, attempts } => write!(
                f,
                "payload from rank {rank} still corrupt after {attempts} attempts"
            ),
            CommError::WorldPoisoned { reason } => {
                write!(f, "world poisoned by rank panic: {reason}")
            }
            CommError::Timeout { rank, waiting_for } => {
                write!(f, "rank {rank} timed out waiting for {waiting_for}")
            }
            CommError::RecoveryExhausted { attempts } => {
                write!(
                    f,
                    "recovery budget exhausted after {attempts} shrink attempts"
                )
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Aggregated fault/recovery counters of one world run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultReport {
    /// Fault events injected (all kinds).
    pub injected: u64,
    /// Retried transmissions (transient backoff retries + collective
    /// retransmits after corruption).
    pub retries: u64,
    /// Permanent rank crashes.
    pub crashes: u64,
    /// Communicator shrinks performed by survivors.
    pub shrinks: u64,
    /// Wall-clock seconds spent inside `Comm::shrink` (summed over ranks).
    pub recovery_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(7, 4, 12, 50);
        let b = FaultPlan::seeded(7, 4, 12, 50);
        let c = FaultPlan::seeded(8, 4, 12, 50);
        assert_eq!(a.len(), b.len());
        for (k, v) in &a.events {
            assert_eq!(b.events.get(k), Some(v));
        }
        assert!(
            a.events != c.events,
            "different seeds must give different plans"
        );
        assert!(!a.is_empty());
    }

    #[test]
    fn seeded_never_crashes_rank_zero() {
        for seed in 0..50 {
            let p = FaultPlan::seeded(seed, 6, 20, 40);
            assert!(
                !p.events
                    .iter()
                    .any(|(&(r, _), &k)| r == 0 && k == FaultKind::Crash),
                "seed {seed} crashed rank 0"
            );
        }
    }

    #[test]
    fn builders_register_events() {
        let p = FaultPlan::none()
            .crash_at(1, 3)
            .transient_at(0, 2, 2)
            .corrupt_at(2, 5, 1)
            .delay_at(3, 0, 100);
        assert_eq!(p.event(1, 3), Some(FaultKind::Crash));
        assert_eq!(p.event(0, 2), Some(FaultKind::Transient { failures: 2 }));
        assert_eq!(p.event(2, 5), Some(FaultKind::Corrupt { repeats: 1 }));
        assert_eq!(p.event(3, 0), Some(FaultKind::Delay { micros: 100 }));
        assert_eq!(p.event(0, 0), None);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        let p = FaultPlan::none();
        assert_eq!(p.backoff_us(0), 20);
        assert_eq!(p.backoff_us(1), 40);
        assert_eq!(p.backoff_us(2), 80);
        assert_eq!(p.backoff_us(30), 2_000, "cap must bound the backoff");
    }

    #[test]
    fn errors_display_and_classify() {
        let e = CommError::PeerCrashed { rank: 3 };
        assert!(e.is_recoverable());
        assert!(e.to_string().contains("3"));
        let e = CommError::SelfCrashed { rank: 1, op: 9 };
        assert!(!e.is_recoverable());
        assert!(e.to_string().contains("op 9"));
        let e = CommError::RetriesExhausted {
            rank: 0,
            op: 1,
            attempts: 6,
        };
        assert!(!e.is_recoverable());
        assert!(e.to_string().contains("6"));
    }
}
