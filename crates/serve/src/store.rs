//! The on-disk artifact store: content-hash keys to checksummed BGWR
//! checkpoint records.
//!
//! Artifacts (`art_<hex16>.bgwr`) hold screening state (stage
//! `WScreening`); partials (`partial_<hex16>.bgwr`) hold preempted Sigma
//! state (stage `SigmaPartial`) and are removed on completion, so a
//! partial is never loadable as an artifact — distinct name spaces and
//! distinct stage tags both enforce it. Writes go through
//! `bgw_io::write_checkpoint_file` (tmp + rename, so a torn write leaves
//! either the old artifact or a `.tmp` residue, never a half-written
//! record under the live name). Any load failure — missing file, bad
//! header, checksum mismatch — degrades to `None` (a recompute), counted
//! on `serve_store_invalid`; a wrong hit is structurally impossible
//! because the payload is validated again upstream before adoption.

use crate::key::ArtifactKey;
use bgw_io::{read_checkpoint_file, write_checkpoint_file, Checkpoint, IoError};
use std::path::{Path, PathBuf};

/// A directory of content-hash-keyed BGWR artifact records.
#[derive(Clone, Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// A store rooted at `dir` (created lazily on first write).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the artifact record for `key`.
    pub fn artifact_path(&self, key: ArtifactKey) -> PathBuf {
        self.dir.join(format!("art_{}.bgwr", key.hex()))
    }

    /// Path of the preemption-partial record for `key`.
    pub fn partial_path(&self, key: ArtifactKey) -> PathBuf {
        self.dir.join(format!("partial_{}.bgwr", key.hex()))
    }

    /// Atomically writes the artifact record for `key`; returns bytes.
    pub fn save(&self, key: ArtifactKey, ckpt: &Checkpoint) -> Result<u64, IoError> {
        let _s = bgw_trace::span!("serve.store.save");
        write_checkpoint_file(&self.artifact_path(key), ckpt)
    }

    /// Loads and checksum-verifies the artifact for `key`. A missing file
    /// is an ordinary miss (`None`, uncounted); a *present but unreadable*
    /// record (torn write residue, corruption, wrong format) also returns
    /// `None` but bumps the `serve_store_invalid` counter — the cache
    /// degrades to a recompute, never a wrong hit.
    pub fn load(&self, key: ArtifactKey) -> Option<Checkpoint> {
        let _s = bgw_trace::span!("serve.store.load");
        let path = self.artifact_path(key);
        if !path.exists() {
            return None;
        }
        match read_checkpoint_file(&path) {
            Ok(ck) => Some(ck),
            Err(_) => {
                bgw_perf::counters::record_serve_store_invalid();
                None
            }
        }
    }

    /// True when an artifact record exists for `key` (readable or not).
    pub fn contains(&self, key: ArtifactKey) -> bool {
        self.artifact_path(key).exists()
    }

    /// Removes the artifact for `key`, if present. Deleting store entries
    /// is always safe: the next request recomputes and rewrites.
    pub fn remove(&self, key: ArtifactKey) {
        let _ = std::fs::remove_file(self.artifact_path(key));
    }

    /// Atomically writes the preemption partial for `key`.
    pub fn save_partial(&self, key: ArtifactKey, ckpt: &Checkpoint) -> Result<u64, IoError> {
        write_checkpoint_file(&self.partial_path(key), ckpt)
    }

    /// Loads the preemption partial for `key`; unreadable records count as
    /// store-invalid and degrade to `None` (evaluate from band zero).
    pub fn load_partial(&self, key: ArtifactKey) -> Option<Checkpoint> {
        let path = self.partial_path(key);
        if !path.exists() {
            return None;
        }
        match read_checkpoint_file(&path) {
            Ok(ck) => Some(ck),
            Err(_) => {
                bgw_perf::counters::record_serve_store_invalid();
                None
            }
        }
    }

    /// Removes the preemption partial for `key` (on request completion).
    pub fn clear_partial(&self, key: ArtifactKey) {
        let _ = std::fs::remove_file(self.partial_path(key));
    }

    /// Flips one payload byte of the artifact for `key` — the test
    /// battery's torn-write/corruption injection. Returns `false` if the
    /// record does not exist.
    pub fn corrupt_artifact(&self, key: ArtifactKey) -> bool {
        let path = self.artifact_path(key);
        let Ok(mut bytes) = std::fs::read(&path) else {
            return false;
        };
        if bytes.is_empty() {
            return false;
        }
        let at = bytes.len() / 2;
        bytes[at] ^= 0xff;
        std::fs::write(&path, bytes).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bgw_serve_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            stage: 5,
            step: 0,
            meta: vec![0.0],
            matrices: vec![bgw_linalg::CMatrix::zeros(2, 2)],
        }
    }

    #[test]
    fn save_load_roundtrip_and_remove() {
        let store = ArtifactStore::new(tmpdir("rt"));
        let key = ArtifactKey(0xabcd);
        assert!(store.load(key).is_none(), "empty store misses");
        assert!(!store.contains(key));
        store.save(key, &sample()).expect("save");
        assert!(store.contains(key));
        let back = store.load(key).expect("load");
        assert_eq!(back.stage, 5);
        assert_eq!(back.matrices.len(), 1);
        store.remove(key);
        assert!(!store.contains(key));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_record_degrades_to_miss_and_counts() {
        let store = ArtifactStore::new(tmpdir("corrupt"));
        let key = ArtifactKey(1);
        store.save(key, &sample()).expect("save");
        assert!(store.corrupt_artifact(key));
        let before = bgw_perf::counters::snapshot();
        assert!(store.load(key).is_none(), "corrupt record must not load");
        let d = before.delta(&bgw_perf::counters::snapshot());
        assert!(d.serve_store_invalid >= 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn partials_are_separate_from_artifacts() {
        let store = ArtifactStore::new(tmpdir("partial"));
        let key = ArtifactKey(7);
        store.save_partial(key, &sample()).expect("save partial");
        assert!(
            store.load(key).is_none(),
            "a partial must never be visible as an artifact"
        );
        assert!(store.load_partial(key).is_some());
        store.clear_partial(key);
        assert!(store.load_partial(key).is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
