//! Traffic-replay gate for the `bgw-serve` daemon (wired into
//! `tools/check.sh --serve`).
//!
//! Replays a seeded zipf request stream (hundreds of mixed GPP and
//! full-frequency requests over a few structures) through the threaded
//! [`Server`] in bursts, then gates:
//!
//! * cache hit rate > 0 on the repeated structures (warm requests must
//!   ride the in-memory LRU / artifact store / coalescing instead of
//!   rebuilding W) — and exactly one screening build per distinct W key,
//!   verified against the perf counters;
//! * warm requests skip the epsilon/W recomputation, verified on the
//!   per-request span-tree reports (`serve.screening.build` absent);
//! * every served response matches its one-shot oracle (`run_gpp_gw` /
//!   direct `ff_sigma_diag`) at 1e-12;
//! * p50/p99 service latency finite, written with the hit statistics to
//!   `BENCH_serve.json`;
//! * store GC: replaying the stream with a byte budget (half the
//!   uncapped footprint) leaves the store under budget with zero
//!   leftover `partial_*` files, results still at parity;
//! * shard sweep: a distinct-W request mix served with 1/2/4 dispatcher
//!   shards must produce bit-identical results at every shard count
//!   with per-shard warm hits preserved; on a host with >= 4 cores the
//!   4-shard run must beat 1 shard by >= 1.5x throughput.
//!
//! `--smoke` shrinks the stream for the CI gate; any violated gate exits
//! nonzero.

use bgw_core::workflow::run_gpp_gw;
use bgw_core::{
    ff_sigma_diag, ChiConfig, ChiEngine, Coulomb, EpsilonInverse, GppModel, Mtxel, SigmaContext,
};
use bgw_num::grid::semi_infinite_quadrature;
use bgw_num::Complex64;
use bgw_perf::counters;
use bgw_pwdft::{charge_density_g, solve_bands};
use bgw_serve::{
    zipf_stream, CacheStatus, GwRequest, Payload, RequestKind, ServeConfig, Server, StructureSpec,
    TrafficConfig,
};
use std::collections::HashMap;
use std::path::Path;
use std::time::Instant;

const PARITY_TOL: f64 = 1e-12;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One-shot FF oracle: the direct primitive pipeline, no service layer.
fn ff_oracle(req: &GwRequest) -> Vec<Vec<Complex64>> {
    let RequestKind::FullFreq { n_quad, .. } = req.kind else {
        panic!("ff oracle on a GPP request");
    };
    let sys = req.structure.system();
    let cfg = req.gw_config();
    let wfn_sph = sys.wfn_sphere();
    let eps_sph = sys.eps_sphere();
    let wf = solve_bands(&sys.crystal, &wfn_sph, sys.n_bands.min(wfn_sph.len()));
    let volume = sys.crystal.lattice.volume();
    let coulomb = Coulomb::bulk_for_cell(volume);
    let mtxel = Mtxel::new(&wfn_sph, &eps_sph);
    let vsqrt = coulomb.sqrt_on_sphere(&eps_sph);
    let engine = ChiEngine::new(
        &wf,
        &mtxel,
        ChiConfig {
            q0: coulomb.q0,
            ..cfg.chi
        },
    );
    let chi0 = engine.chi_static();
    let eps_inv = EpsilonInverse::build(&[chi0], &[0.0], &coulomb, &eps_sph).expect("static eps");
    let (nodes, weights) = semi_infinite_quadrature(n_quad, 2.0);
    let (chis, _) = engine.chi_freqs(&nodes);
    let eps_ff = EpsilonInverse::build(&chis, &nodes, &coulomb, &eps_sph).expect("ff eps");
    let rho = charge_density_g(&wf, &wfn_sph);
    let gpp = GppModel::new(&eps_inv, &eps_sph, &wfn_sph, &rho, volume);
    let bands = req.bands(wf.n_valence, wf.n_bands());
    let ctx = SigmaContext::build(&wf, &mtxel, gpp, &vsqrt, &bands, coulomb.q0);
    let d = req.delta_ry();
    let grids: Vec<Vec<f64>> = ctx
        .sigma_energies
        .iter()
        .map(|&e| vec![e - d, e, e + d])
        .collect();
    ff_sigma_diag(&ctx, &eps_ff, &weights, &grids, req.eta_ry()).sigma
}

enum Oracle {
    Gpp(Vec<f64>),
    Ff(Vec<Vec<Complex64>>),
}

fn oracle_for(req: &GwRequest) -> Oracle {
    match req.kind {
        RequestKind::GppDiag { .. } => {
            let r = run_gpp_gw(&req.structure.system(), &req.gw_config());
            Oracle::Gpp(r.states.iter().map(|s| s.e_qp).collect())
        }
        RequestKind::FullFreq { .. } => Oracle::Ff(ff_oracle(req)),
    }
}

fn parity_err(payload: &Payload, oracle: &Oracle) -> f64 {
    match (payload, oracle) {
        (Payload::Gpp(p), Oracle::Gpp(e_qp)) => p
            .e_qp
            .iter()
            .zip(e_qp)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max),
        (Payload::FullFreq(p), Oracle::Ff(sigma)) => p
            .sigma
            .iter()
            .flatten()
            .zip(sigma.iter().flatten())
            .map(|(a, b)| (a.re - b.re).abs().max((a.im - b.im).abs()))
            .fold(0.0, f64::max),
        _ => f64::INFINITY,
    }
}

/// (total bytes, largest file, `partial_*` count) under a store dir.
fn store_footprint(dir: &Path) -> (u64, u64, usize) {
    let mut total = 0u64;
    let mut largest = 0u64;
    let mut partials = 0usize;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let Ok(meta) = e.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            total += meta.len();
            largest = largest.max(meta.len());
            if e.file_name().to_string_lossy().starts_with("partial_") {
                partials += 1;
            }
        }
    }
    (total, largest, partials)
}

/// Replays `stream` against a store capped at `budget` bytes and gates
/// that GC keeps the directory under budget with no leftover partials.
fn gc_gate(stream: &[GwRequest], budget: u64, burst: usize, failed: &mut bool) -> String {
    let dir = std::env::temp_dir().join(format!("bgw_serve_gc_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut sc = ServeConfig::new(&dir);
    sc.queue_capacity = stream.len() + burst;
    sc.store_budget_bytes = budget;
    let server = Server::start(sc);
    let mut completed = 0usize;
    for wave in stream.chunks(burst) {
        let tickets: Vec<_> = wave.iter().map(|r| server.submit(*r)).collect();
        for t in tickets {
            match t.wait() {
                Ok(_) => completed += 1,
                Err(e) => {
                    eprintln!("FAIL: gc-capped replay rejected a request: {e}");
                    *failed = true;
                }
            }
        }
    }
    let cores = server.shutdown();
    let under_queue = cores.iter().all(|c| c.is_idle());
    let (bytes_after, _, partials_after) = store_footprint(&dir);
    if !under_queue {
        eprintln!("FAIL: gc-capped replay left a non-idle queue");
        *failed = true;
    }
    if completed != stream.len() {
        eprintln!(
            "FAIL: gc-capped replay completed {completed} of {} requests",
            stream.len()
        );
        *failed = true;
    }
    if bytes_after > budget {
        eprintln!("FAIL: store holds {bytes_after} bytes over the {budget}-byte GC budget");
        *failed = true;
    }
    if partials_after != 0 {
        eprintln!("FAIL: {partials_after} orphaned partial_* files survived the replay");
        *failed = true;
    }
    let _ = std::fs::remove_dir_all(&dir);
    format!(
        "{{\"budget_bytes\": {budget}, \"bytes_after\": {bytes_after}, \
         \"partials_after\": {partials_after}, \"requests\": {}, \
         \"under_budget\": {}}}",
        stream.len(),
        bytes_after <= budget,
    )
}

/// Picks `per_bucket` Si-bulk cutoffs per `w_key % 4` residue so a
/// distinct-W stream spreads evenly over 1/2/4 shards (4 divides by 2,
/// so mod-4 balance implies mod-2 balance).
fn balanced_sweep_requests(per_bucket: usize, repeats: usize) -> Vec<GwRequest> {
    let mut buckets: Vec<Vec<GwRequest>> = vec![Vec::new(); 4];
    for ecut in (200..600).step_by(5) {
        let req = GwRequest {
            structure: StructureSpec::SiBulk {
                m: 1,
                ecut_centi_ry: ecut,
                n_bands: 24,
            },
            kind: RequestKind::GppDiag {
                bands_around_gap: 1,
                delta_milli_ry: 50,
            },
            priority: 0,
        };
        let b = req.shard_of(4);
        if buckets[b].len() < per_bucket {
            buckets[b].push(req);
        }
        if buckets.iter().all(|v| v.len() >= per_bucket) {
            break;
        }
    }
    let distinct: Vec<GwRequest> = (0..per_bucket)
        .flat_map(|i| buckets.iter().filter_map(move |v| v.get(i).copied()))
        .collect();
    (0..repeats)
        .flat_map(|_| distinct.iter().copied())
        .collect()
}

struct SweepRun {
    shards: usize,
    wall: f64,
    warm: u64,
    misses: u64,
    worst_parity: f64,
    /// Per-request QP energies as raw bit patterns, submission order.
    bits: Vec<Vec<u64>>,
}

/// Serves a distinct-W stream with 1/2/4 dispatcher shards; gates
/// bit-identical results, preserved warm hits and parity per shard
/// count, and (on >= 4 cores) >= 1.5x 4-shard throughput.
fn shard_sweep(smoke: bool, failed: &mut bool) -> String {
    let per_bucket = if smoke { 1 } else { 2 };
    let repeats = if smoke { 2 } else { 3 };
    let stream = balanced_sweep_requests(per_bucket, repeats);
    let n_distinct = stream.len() / repeats;
    // Oracles up front, outside the timed sections: lazy computation
    // would bill the whole oracle cost to the first (1-shard) run and
    // fake the speedup.
    let mut oracles: HashMap<u64, Oracle> = HashMap::new();
    for req in &stream {
        oracles
            .entry(req.request_key().0)
            .or_insert_with(|| oracle_for(req));
    }
    let mut runs: Vec<SweepRun> = Vec::new();
    for &shards in &[1usize, 2, 4] {
        let dir =
            std::env::temp_dir().join(format!("bgw_serve_sweep_{}_{}", std::process::id(), shards));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sc = ServeConfig::new(&dir);
        sc.queue_capacity = stream.len() + 8;
        sc.n_shards = shards;
        let before = counters::snapshot();
        let t0 = Instant::now();
        let server = Server::start(sc);
        let tickets: Vec<_> = stream.iter().map(|r| server.submit(*r)).collect();
        let mut bits = Vec::with_capacity(stream.len());
        let mut worst = 0.0f64;
        for (req, t) in stream.iter().zip(tickets) {
            match t.wait() {
                Ok(ok) => {
                    if let Payload::Gpp(p) = &ok.payload {
                        bits.push(p.e_qp.iter().map(|x| x.to_bits()).collect::<Vec<u64>>());
                    }
                    let oracle = oracles
                        .entry(req.request_key().0)
                        .or_insert_with(|| oracle_for(req));
                    worst = worst.max(parity_err(&ok.payload, oracle));
                }
                Err(e) => {
                    eprintln!("FAIL: {shards}-shard sweep rejected a request: {e}");
                    *failed = true;
                }
            }
        }
        let wall = t0.elapsed().as_secs_f64();
        let cores = server.shutdown();
        let d = before.delta(&counters::snapshot());
        let warm = d.serve_hits_mem + d.serve_hits_disk + d.serve_coalesced;
        if !cores.iter().all(|c| c.is_idle()) {
            eprintln!("FAIL: {shards}-shard sweep left a non-idle shard");
            *failed = true;
        }
        if d.serve_misses as usize != n_distinct {
            eprintln!(
                "FAIL: {} screening builds for {n_distinct} distinct W keys at {shards} shards",
                d.serve_misses
            );
            *failed = true;
        }
        if (warm as usize) < n_distinct * (repeats - 1) {
            eprintln!(
                "FAIL: warm hits collapsed at {shards} shards ({warm} < {})",
                n_distinct * (repeats - 1)
            );
            *failed = true;
        }
        if worst > PARITY_TOL {
            eprintln!("FAIL: {shards}-shard sweep drifted {worst:e} from the oracles");
            *failed = true;
        }
        runs.push(SweepRun {
            shards,
            wall,
            warm,
            misses: d.serve_misses,
            worst_parity: worst,
            bits,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    for r in &runs[1..] {
        if r.bits != runs[0].bits {
            eprintln!(
                "FAIL: {}-shard results not bit-identical to the 1-shard run",
                r.shards
            );
            *failed = true;
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup_4v1 = runs[0].wall / runs[2].wall.max(1e-12);
    let gate_armed = cores >= 4;
    if gate_armed && speedup_4v1 < 1.5 {
        eprintln!(
            "FAIL: 4 shards gained only {speedup_4v1:.2}x over 1 shard on a {cores}-core host"
        );
        *failed = true;
    }
    let sweep_json: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"shards\": {}, \"wall_s\": {:.4}, \"throughput_rps\": {:.3}, \
                 \"warm\": {}, \"misses\": {}, \"worst_parity\": {:e}}}",
                r.shards,
                r.wall,
                r.bits.len() as f64 / r.wall.max(1e-12),
                r.warm,
                r.misses,
                r.worst_parity,
            )
        })
        .collect();
    format!(
        "{{\"requests\": {}, \"distinct_w_keys\": {n_distinct}, \"cores\": {cores}, \
         \"gate_armed\": {gate_armed}, \"speedup_4v1\": {speedup_4v1:.3}, \
         \"bit_identical\": {}, \"sweep\": [{}]}}",
        stream.len(),
        runs[1..].iter().all(|r| r.bits == runs[0].bits),
        sweep_json.join(", "),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_requests = if smoke { 48 } else { 240 };
    let burst = 8;
    let traffic = TrafficConfig::small(2024, n_requests);
    let stream = zipf_stream(&traffic);

    let store_dir = std::env::temp_dir().join(format!("bgw_serve_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut sc = ServeConfig::new(&store_dir);
    sc.queue_capacity = n_requests + burst;
    sc.collect_reports = true;

    let n_wkeys = {
        let mut keys: Vec<u64> = stream.iter().map(|r| r.w_key().0).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    };

    let before = counters::snapshot();
    let t0 = Instant::now();
    let server = Server::start(sc);
    let mut failed = false;
    let mut latencies: Vec<f64> = Vec::with_capacity(stream.len());
    let mut oracles: HashMap<u64, Oracle> = HashMap::new();
    let mut worst_parity = 0.0f64;
    let mut warm_with_build = 0usize;
    let mut n_warm_reports = 0usize;

    for wave in stream.chunks(burst) {
        let tickets: Vec<_> = wave.iter().map(|r| (*r, server.submit(*r))).collect();
        for (req, ticket) in tickets {
            let ok = match ticket.wait() {
                Ok(ok) => ok,
                Err(e) => {
                    eprintln!("FAIL: request rejected or faulted with no plan armed: {e}");
                    std::process::exit(1);
                }
            };
            latencies.push(ok.telemetry.queue_seconds + ok.telemetry.compute_seconds);
            let oracle = oracles
                .entry(req.request_key().0)
                .or_insert_with(|| oracle_for(&req));
            let err = parity_err(&ok.payload, oracle);
            worst_parity = worst_parity.max(err);
            if err > PARITY_TOL {
                eprintln!("FAIL: served result drifted {err:e} from the one-shot oracle");
                failed = true;
            }
            // Warm requests must not rebuild the screening: their span
            // report has no serve.screening.build subtree.
            if ok.telemetry.cache != CacheStatus::Miss {
                if let Some(rep) = &ok.telemetry.report {
                    n_warm_reports += 1;
                    if rep.find("serve.batch/serve.screening.build").is_some() {
                        warm_with_build += 1;
                    }
                }
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let cores = server.shutdown();
    if !cores.iter().all(|c| c.is_idle()) {
        eprintln!("FAIL: queue not drained after shutdown");
        failed = true;
    }
    // The uncapped footprint calibrates the GC budget: half the total,
    // floored at twice the largest record so the budget is always
    // satisfiable (the newest write plus a pinned in-flight entry fit).
    let (uncapped_bytes, largest_file, _) = store_footprint(&store_dir);
    let d = before.delta(&counters::snapshot());

    let warm = d.serve_hits_mem + d.serve_hits_disk + d.serve_coalesced;
    let hit_rate = warm as f64 / stream.len() as f64;
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);

    if warm == 0 {
        eprintln!("FAIL: zipf repeats produced zero cache hits");
        failed = true;
    }
    if d.serve_misses as usize != n_wkeys {
        eprintln!(
            "FAIL: {} screening builds for {} distinct W keys — warm requests recomputed W",
            d.serve_misses, n_wkeys
        );
        failed = true;
    }
    if bgw_trace::compiled_in() && n_warm_reports == 0 {
        eprintln!("FAIL: no warm request carried a span report");
        failed = true;
    }
    if warm_with_build > 0 {
        eprintln!("FAIL: {warm_with_build} warm requests rebuilt the screening (span tree)");
        failed = true;
    }
    if !p99.is_finite() || !p50.is_finite() {
        eprintln!("FAIL: latency percentiles not finite (p50 {p50}, p99 {p99})");
        failed = true;
    }
    if d.serve_completed as usize != stream.len() {
        eprintln!(
            "FAIL: {} completions for {} requests",
            d.serve_completed,
            stream.len()
        );
        failed = true;
    }

    let _ = std::fs::remove_dir_all(&store_dir);

    // GC gate: replay the same stream against a store capped at half the
    // uncapped footprint; the pass must hold it under budget throughout.
    let gc_budget = (uncapped_bytes / 2).max(2 * largest_file).max(1);
    let gc_json = gc_gate(&stream, gc_budget, burst, &mut failed);

    // Shard sweep: distinct-W scaling + bit-identical results per count.
    let shards_json = shard_sweep(smoke, &mut failed);

    let json = format!(
        "{{\n  \"config\": {{\"smoke\": {smoke}, \"n_requests\": {}, \"burst\": {burst}, \
         \"structures\": {}, \"zipf_exponent\": {}, \"seed\": {}, \"threads\": {}, \
         \"parity_tol\": {PARITY_TOL:e}}},\n  \
         \"cache\": {{\"hit_rate\": {hit_rate:.4}, \"hits_mem\": {}, \"hits_disk\": {}, \
         \"coalesced\": {}, \"misses\": {}, \"distinct_w_keys\": {n_wkeys}, \
         \"store_invalid\": {}}},\n  \
         \"latency\": {{\"p50_s\": {p50:.6}, \"p99_s\": {p99:.6}, \"wall_s\": {wall:.3}, \
         \"completed\": {}}},\n  \
         \"parity\": {{\"worst\": {worst_parity:e}, \"oracles\": {}}},\n  \
         \"warm_skip\": {{\"warm_reports\": {n_warm_reports}, \"warm_with_build\": {warm_with_build}}},\n  \
         \"gc\": {gc_json},\n  \
         \"shards\": {shards_json},\n  \
         \"pass\": {}\n}}\n",
        stream.len(),
        traffic.structures.len(),
        traffic.zipf_exponent,
        traffic.seed,
        bgw_par::num_threads(),
        d.serve_hits_mem,
        d.serve_hits_disk,
        d.serve_coalesced,
        d.serve_misses,
        d.serve_store_invalid,
        d.serve_completed,
        oracles.len(),
        !failed,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");

    if failed {
        std::process::exit(1);
    }
    println!(
        "serve smoke: {} requests, hit rate {:.1}%, {} screening builds for {} W keys, \
         p50 {:.2}ms, p99 {:.2}ms, worst parity {worst_parity:.2e}",
        stream.len(),
        hit_rate * 100.0,
        d.serve_misses,
        n_wkeys,
        p50 * 1e3,
        p99 * 1e3
    );
}
