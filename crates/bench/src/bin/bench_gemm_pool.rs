//! Before/after benchmark of the two node-level substrates this repo's
//! GW kernels sit on: the persistent-pool threading runtime (`bgw-par`)
//! and the five-loop packed ZGEMM (`bgw-linalg`).
//!
//! "Before" is a faithful inline copy of the previous cache-blocked ZGEMM
//! (full-width B pack, i-k-j sweep that re-reads the C row on every k
//! step), so the comparison holds even though the old kernel no longer
//! exists in the library. The pool side measures the dispatch overhead of
//! an empty `parallel_for(1024)` — the wake/park cost a GW kernel pays per
//! parallel region.
//!
//! Writes `BENCH_gemm_pool.json` into the current directory.

use bgw_linalg::{matmul, microkernel, zgemm_flops, CMatrix, GemmBackend, Op, TileParams};
use bgw_num::{simd, Complex64};
use std::time::Instant;

/// The pre-overhaul blocked kernel: mc x kc row panels, B packed across the
/// full output width, C rows re-loaded and re-stored for every k step.
fn seed_blocked(a: &CMatrix, b: &CMatrix) -> CMatrix {
    let (m, k) = a.shape();
    let n = b.ncols();
    let mut c = CMatrix::zeros(m, n);
    let (mc, kc) = (64usize, 128usize);
    for i0 in (0..m).step_by(mc) {
        let i1 = (i0 + mc).min(m);
        for p0 in (0..k).step_by(kc) {
            let p1 = (p0 + kc).min(k);
            let kk = p1 - p0;
            let mut a_pack = Vec::with_capacity((i1 - i0) * kk);
            for i in i0..i1 {
                a_pack.extend_from_slice(&a.row(i)[p0..p1]);
            }
            let mut b_pack = Vec::with_capacity(kk * n);
            for p in p0..p1 {
                b_pack.extend_from_slice(b.row(p));
            }
            for ii in 0..(i1 - i0) {
                let a_row = &a_pack[ii * kk..(ii + 1) * kk];
                let c_row = c.row_mut(i0 + ii);
                for (pp, &aip) in a_row.iter().enumerate() {
                    let b_row = &b_pack[pp * n..(pp + 1) * n];
                    for (cj, &bpj) in c_row.iter_mut().zip(b_row) {
                        *cj = cj.mul_add(aip, bpj);
                    }
                }
            }
        }
    }
    c
}

fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let threads = bgw_par::num_threads();
    let n = 512usize;
    let flops = zgemm_flops(n, n, n) as f64;
    println!("bench_gemm_pool: {n}^3 complex GEMM, {threads} thread(s)");

    let a = CMatrix::random(n, n, 1);
    let b = CMatrix::random(n, n, 2);

    // Correctness gate before timing: every backend against Naive. The
    // oracle is O(n^3) with scalar fetches, so check at a reduced size too
    // if this ever gets slow; 512 is fine in release.
    let reference = matmul(&a, Op::None, &b, Op::None, GemmBackend::Naive);
    let mut agreement = f64::NEG_INFINITY;
    for be in [
        GemmBackend::Blocked,
        GemmBackend::Parallel,
        GemmBackend::Tuned(TileParams::default()),
    ] {
        let c = matmul(&a, Op::None, &b, Op::None, be);
        let d = c.max_abs_diff(&reference);
        agreement = agreement.max(d);
        assert!(d < 1e-10, "{be:?} disagrees with Naive by {d}");
    }
    println!("backend agreement vs Naive: max |diff| = {agreement:.3e}");

    // Before: the seed kernel, inline copy.
    let t_seed = best_secs(3, || {
        std::hint::black_box(seed_blocked(&a, &b));
    });
    // After: the microkernel-dispatched kernels, with the pack/compute
    // split read per backend variant from the per-ISA counter lanes (both
    // run on the effective ISA's lane, so bracket each one separately).
    let isa = simd::effective();
    let mk = microkernel::select(n, n, n, None, false).kernel.label();
    let c0 = bgw_perf::counters::snapshot();
    let t_blocked = best_secs(3, || {
        std::hint::black_box(matmul(&a, Op::None, &b, Op::None, GemmBackend::Blocked));
    });
    let c1 = bgw_perf::counters::snapshot();
    let t_parallel = best_secs(3, || {
        std::hint::black_box(matmul(&a, Op::None, &b, Op::None, GemmBackend::Parallel));
    });
    let c2 = bgw_perf::counters::snapshot();
    let d = c0.delta(&c2);
    let pack_frac = d.gemm_pack_seconds() / (d.gemm_pack_seconds() + d.gemm_compute_seconds());
    let pack_frac_blocked = c0
        .delta(&c1)
        .gemm_mk_pack_fraction(isa.index())
        .unwrap_or(0.0);
    let pack_frac_parallel = c1
        .delta(&c2)
        .gemm_mk_pack_fraction(isa.index())
        .unwrap_or(0.0);

    println!("microkernel    : {mk} ({} dispatch)", isa.name());
    println!(
        "seed Blocked   : {t_seed:.4} s  {:8.2} GFLOP/s",
        flops / t_seed / 1e9
    );
    println!(
        "new  Blocked   : {t_blocked:.4} s  {:8.2} GFLOP/s",
        flops / t_blocked / 1e9
    );
    println!(
        "new  Parallel  : {t_parallel:.4} s  {:8.2} GFLOP/s",
        flops / t_parallel / 1e9
    );
    println!(
        "speedup vs seed: Blocked {:.2}x, Parallel {:.2}x; pack share {:.1}% \
         (Blocked {:.1}%, Parallel {:.1}%)",
        t_seed / t_blocked,
        t_seed / t_parallel,
        100.0 * pack_frac,
        100.0 * pack_frac_blocked,
        100.0 * pack_frac_parallel
    );

    // Pool dispatch overhead: an empty parallel_for(1024) measures the
    // wake/park round-trip, amortized over many calls.
    let dispatches = 2000usize;
    let p0 = bgw_perf::counters::snapshot();
    let t_pool = best_secs(3, || {
        for _ in 0..dispatches {
            bgw_par::parallel_for(1024, |i| {
                std::hint::black_box(i);
            });
        }
    });
    let pd = p0.delta(&bgw_perf::counters::snapshot());
    let per_call_us = t_pool / dispatches as f64 * 1e6;
    println!(
        "empty parallel_for(1024): {per_call_us:.2} us/call \
         ({} pooled, {} inline over the measured reps)",
        pd.pool_dispatches, pd.pool_inline_runs
    );

    let json = format!(
        "{{\n  \"config\": {{\"n\": {n}, \"threads\": {threads}, \
         \"isa\": \"{}\", \"microkernel\": \"{mk}\"}},\n  \
         \"gemm_512\": {{\n    \"seed_blocked_s\": {t_seed:.6},\n    \
         \"blocked_s\": {t_blocked:.6},\n    \"parallel_s\": {t_parallel:.6},\n    \
         \"seed_blocked_gflops\": {:.3},\n    \"blocked_gflops\": {:.3},\n    \
         \"parallel_gflops\": {:.3},\n    \"speedup_blocked_vs_seed\": {:.3},\n    \
         \"speedup_parallel_vs_seed\": {:.3},\n    \
         \"pack_time_fraction\": {pack_frac:.4},\n    \
         \"pack_time_fraction_blocked\": {pack_frac_blocked:.4},\n    \
         \"pack_time_fraction_parallel\": {pack_frac_parallel:.4},\n    \
         \"max_abs_diff_vs_naive\": {agreement:.3e}\n  }},\n  \
         \"pool\": {{\n    \"empty_parallel_for_1024_us_per_call\": {per_call_us:.3},\n    \
         \"pooled_dispatches\": {},\n    \"inline_runs\": {}\n  }}\n}}\n",
        isa.name(),
        flops / t_seed / 1e9,
        flops / t_blocked / 1e9,
        flops / t_parallel / 1e9,
        t_seed / t_blocked,
        t_seed / t_parallel,
        pd.pool_dispatches,
        pd.pool_inline_runs,
    );
    std::fs::write("BENCH_gemm_pool.json", &json).expect("write BENCH_gemm_pool.json");
    println!("wrote BENCH_gemm_pool.json");
    let _ = Complex64::ZERO;
}
