//! One-dimensional complex FFT plans.
//!
//! Mixed-radix Cooley-Tukey for sizes factoring into {2, 3, 5, 7, 11, 13},
//! with a Bluestein (chirp-z) fallback for any other size, so arbitrary FFT
//! grids are supported. Forward transforms use the physics sign convention
//! `X_k = sum_j x_j e^{-2 pi i j k / n}`; the inverse applies the `1/n`
//! normalization, so `inverse(forward(x)) == x`.
//!
//! The batched kernel ([`FftPlan::process_batch_split`]) operates on
//! **split re/im `f64` planes** with the batch as the fastest-varying
//! dimension: every radix-2/3/4/5 butterfly body is a straight-line
//! real-arithmetic loop over `batch` contiguous lanes — no complex
//! shuffles, no index arithmetic — which the compiler vectorizes across
//! the batch. The bodies are compiled once per instruction set
//! (`#[target_feature]` multiversioning for AVX2+FMA and AVX-512F on
//! x86-64; the portable body *is* the NEON version on aarch64, where
//! Advanced SIMD is baseline) and dispatched at runtime through
//! [`bgw_num::simd`], the same ISA decision the ZGEMM microkernels use.

use bgw_num::simd::Isa;
use bgw_num::{c64, Complex64};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Direction of a transform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// `e^{-2 pi i j k / n}` with no normalization.
    Forward,
    /// `e^{+2 pi i j k / n}` with `1/n` normalization.
    Inverse,
}

/// Largest radix handled directly by the mixed-radix butterflies.
const MAX_RADIX: usize = 13;

/// Width of a line batch in the batched transforms: the 3-D driver feeds
/// [`FftPlan::process_batch_split`] groups of up to this many lines, laid
/// out plane-wise so each butterfly's twiddle lookup is amortized over the
/// whole group and the inner loops vectorize over contiguous memory.
pub const LINE_BATCH: usize = 16;

/// Returns the process-wide cached plan for length `n`, creating it on
/// first use. Every `Fft3d` of a GW run shares the same handful of 1-D
/// plans this way (MTXEL boxes, Hamiltonian boxes and density grids all
/// draw from the same few smooth sizes), so twiddle and stage tables are
/// built once per length instead of once per engine.
pub fn cached_plan(n: usize) -> Arc<FftPlan> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    Arc::clone(map.entry(n).or_insert_with(|| Arc::new(FftPlan::new(n))))
}

/// A reusable FFT plan for a fixed transform length.
#[derive(Clone, Debug)]
pub struct FftPlan {
    n: usize,
    /// Radix factors of `n`, or empty when Bluestein is used.
    factors: Vec<usize>,
    /// Forward twiddle table: `tw[k] = e^{-2 pi i k / n}` for `k in 0..n`.
    twiddles: Vec<Complex64>,
    /// Per-stage twiddle tables for the batched kernel:
    /// `stage_tw[d][k * r + q] = e^{-2 pi i k q step_d / n}` with
    /// `k in 0..m_d`, precomputed so the hot loops are pure table reads
    /// (the recursive path recomputes the index with a modulo per
    /// butterfly, which dominates its runtime).
    stage_tw: Vec<Vec<Complex64>>,
    /// Per-stage radix-DFT matrices `dft_tw[d][p * r + q] = e^{-2 pi i p q / r_d}`.
    dft_tw: Vec<Vec<Complex64>>,
    /// Chirp-z machinery for lengths with large prime factors.
    bluestein: Option<Box<Bluestein>>,
}

#[derive(Clone, Debug)]
struct Bluestein {
    /// Power-of-two convolution length `m >= 2n - 1`.
    m: usize,
    /// Plan for the internal power-of-two transforms.
    inner: FftPlan,
    /// Chirp `w^{k^2/2}` for `k in 0..n` (forward sign).
    chirp: Vec<Complex64>,
    /// Forward FFT of the zero-padded conjugate chirp.
    chirp_hat: Vec<Complex64>,
}

/// Factorizes `n` into radices `<= MAX_RADIX`, largest first.
/// Returns `None` if a larger prime remains.
fn factorize(mut n: usize) -> Option<Vec<usize>> {
    let mut factors = Vec::new();
    for r in [13usize, 11, 7, 5, 4, 3, 2] {
        while n.is_multiple_of(r) {
            factors.push(r);
            n /= r;
        }
    }
    if n == 1 {
        Some(factors)
    } else {
        None
    }
}

/// Rounds `n` up to the next 5-smooth size (factors 2, 3, 5 only), the
/// conventional "good" FFT grid dimensions used by plane-wave codes.
pub fn good_size(n: usize) -> usize {
    let mut m = n.max(1);
    loop {
        let mut k = m;
        for r in [2usize, 3, 5] {
            while k.is_multiple_of(r) {
                k /= r;
            }
        }
        if k == 1 {
            return m;
        }
        m += 1;
    }
}

impl FftPlan {
    /// Creates a plan for transforms of length `n >= 1`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "FFT length must be positive");
        let twiddles = forward_twiddles(n);
        match factorize(n) {
            Some(factors) => {
                let (stage_tw, dft_tw) = stage_tables(n, &factors, &twiddles);
                Self {
                    n,
                    factors,
                    twiddles,
                    stage_tw,
                    dft_tw,
                    bluestein: None,
                }
            }
            None => {
                let m = (2 * n - 1).next_power_of_two();
                let inner = FftPlan::new(m);
                // chirp[k] = e^{-i pi k^2 / n}; computing k^2 mod 2n keeps
                // the argument small and the phase exact.
                let chirp: Vec<Complex64> = (0..n)
                    .map(|k| {
                        let q = (k * k) % (2 * n);
                        Complex64::cis(-std::f64::consts::PI * q as f64 / n as f64)
                    })
                    .collect();
                let mut b = vec![Complex64::ZERO; m];
                b[0] = chirp[0].conj();
                for k in 1..n {
                    b[k] = chirp[k].conj();
                    b[m - k] = chirp[k].conj();
                }
                inner.process(&mut b, Direction::Forward);
                Self {
                    n,
                    factors: Vec::new(),
                    twiddles,
                    stage_tw: Vec::new(),
                    dft_tw: Vec::new(),
                    bluestein: Some(Box::new(Bluestein {
                        m,
                        inner,
                        chirp,
                        chirp_hat: b,
                    })),
                }
            }
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` only for the degenerate length-0 case (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Transforms `data` (length `n`) in place.
    pub fn process(&self, data: &mut [Complex64], dir: Direction) {
        assert_eq!(data.len(), self.n, "buffer length mismatch");
        let mut scratch = vec![Complex64::ZERO; self.scratch_len()];
        self.process_with(data, &mut scratch, dir);
    }

    /// Scratch length required by [`FftPlan::process_with`].
    pub fn scratch_len(&self) -> usize {
        match &self.bluestein {
            Some(b) => 2 * b.m + b.inner.scratch_len(),
            None => self.n,
        }
    }

    /// Transforms `data` in place using caller-provided scratch (hot path
    /// for the batched transforms of MTXEL).
    pub fn process_with(&self, data: &mut [Complex64], scratch: &mut [Complex64], dir: Direction) {
        assert_eq!(data.len(), self.n, "buffer length mismatch");
        assert!(scratch.len() >= self.scratch_len(), "scratch too small");
        if self.n == 1 {
            return;
        }
        // Inverse via conjugation: IFFT(x) = conj(FFT(conj(x))) / n.
        if dir == Direction::Inverse {
            for z in data.iter_mut() {
                *z = z.conj();
            }
            self.process_with(data, scratch, Direction::Forward);
            let s = 1.0 / self.n as f64;
            for z in data.iter_mut() {
                *z = z.conj().scale(s);
            }
            return;
        }
        match &self.bluestein {
            Some(b) => self.bluestein_forward(b, data, scratch),
            None => {
                let (buf, _) = scratch.split_at_mut(self.n);
                self.mixed_radix(data, buf);
            }
        }
    }

    /// Out-of-place recursive mixed-radix driver; result ends in `data`.
    fn mixed_radix(&self, data: &mut [Complex64], buf: &mut [Complex64]) {
        buf.copy_from_slice(data);
        self.rec(buf, data, self.n, 1, 0);
    }

    /// Recursive decimation-in-time step.
    ///
    /// Reads `src` with stride `stride`, writes the length-`n` transform
    /// contiguously into `dst`. `depth` indexes into the factor list.
    fn rec(&self, src: &[Complex64], dst: &mut [Complex64], n: usize, stride: usize, depth: usize) {
        if n == 1 {
            dst[0] = src[0];
            return;
        }
        let r = self.factors[depth];
        let m = n / r;
        // Transform the r interleaved sub-sequences.
        for q in 0..r {
            let sub = &src[q * stride..];
            let (head, _) = dst.split_at_mut((q + 1) * m);
            self.rec(sub, &mut head[q * m..], m, stride * r, depth + 1);
        }
        // Combine with radix-r butterflies. The twiddle e^{-2pi i k q / n}
        // is twiddles[(k*q*step) % N] with step = N/n.
        let step = self.n / n;
        let mut tmp = [Complex64::ZERO; MAX_RADIX];
        for k in 0..m {
            for (q, t) in tmp.iter_mut().enumerate().take(r) {
                let tw = self.twiddles[(k * q * step) % self.n];
                *t = dst[q * m + k] * tw;
            }
            // out[k + p*m] = sum_q tmp[q] * e^{-2 pi i p q / r}
            for p in 0..r {
                let mut acc = tmp[0];
                for (q, &t) in tmp.iter().enumerate().take(r).skip(1) {
                    let tw = self.twiddles[(p * q * m * step) % self.n];
                    acc = acc.mul_add(t, tw);
                }
                dst[p * m + k] = acc;
            }
        }
        // In-place safety: for a fixed k, all reads (positions q*m + k) are
        // gathered into `tmp` before any write (positions p*m + k), and
        // distinct k values touch disjoint positions.
    }

    /// `true` when this length falls back to the chirp-z (Bluestein) path.
    pub fn uses_bluestein(&self) -> bool {
        self.bluestein.is_some()
    }

    /// Scratch length (in `f64` elements) required by
    /// [`FftPlan::process_batch_split`]: ping-pong re/im planes for a full
    /// line batch.
    pub fn batch_scratch_split_len(&self) -> usize {
        2 * self.n * LINE_BATCH
    }

    /// Scratch length required by [`FftPlan::process_batch`] (legacy
    /// interleaved wrapper).
    pub fn batch_scratch_len(&self) -> usize {
        (self.n * LINE_BATCH).max(self.n + self.scratch_len())
    }

    /// Transforms a batch of `batch <= LINE_BATCH` lines held as split
    /// re/im `f64` planes, in place.
    ///
    /// Element `k` of line `b` lives at `re[k * batch + b]` /
    /// `im[k * batch + b]`: the batch is the fastest-varying dimension, so
    /// every butterfly reads and writes `batch` contiguous lanes per plane
    /// with a single twiddle — the SIMD dimension is the batch and the
    /// butterfly bodies contain no shuffles. Radices 2/3/4/5 (everything a
    /// 5-smooth grid produces) use hard-wired butterflies whose DFT
    /// constants (±1, ±i, the exact radix-3/5 cosines) are applied as real
    /// scalings, compiled per ISA and dispatched at runtime (see module
    /// docs); results agree with the scalar kernel to rounding (~1e-13
    /// relative), not bit-for-bit, because the scalar path multiplies by
    /// table entries like `cis(-pi)` that carry ~1e-16 phase error.
    pub fn process_batch_split(
        &self,
        re: &mut [f64],
        im: &mut [f64],
        batch: usize,
        scratch: &mut [f64],
        dir: Direction,
    ) {
        assert!((1..=LINE_BATCH).contains(&batch), "batch out of range");
        assert_eq!(re.len(), self.n * batch, "batch buffer length mismatch");
        assert_eq!(im.len(), self.n * batch, "batch buffer length mismatch");
        assert!(
            scratch.len() >= self.batch_scratch_split_len(),
            "batch scratch too small"
        );
        if self.n == 1 {
            return;
        }
        if dir == Direction::Inverse {
            // Inverse via conjugation on split planes: negate im, forward,
            // then scale and negate im again.
            for v in im.iter_mut() {
                *v = -*v;
            }
            self.process_batch_split(re, im, batch, scratch, Direction::Forward);
            let s = 1.0 / self.n as f64;
            for v in re.iter_mut() {
                *v *= s;
            }
            for v in im.iter_mut() {
                *v *= -s;
            }
            return;
        }
        if self.bluestein.is_some() {
            // Chirp-z lengths go through the scalar kernel line by line;
            // they only appear for pathological grid dimensions.
            bgw_perf::counters::record_fft_mk_call(Isa::Scalar.index());
            let mut line = vec![Complex64::ZERO; self.n];
            let mut inner = vec![Complex64::ZERO; self.scratch_len()];
            for b in 0..batch {
                for k in 0..self.n {
                    line[k] = c64(re[k * batch + b], im[k * batch + b]);
                }
                self.process_with(&mut line, &mut inner, Direction::Forward);
                for (k, z) in line.iter().enumerate() {
                    re[k * batch + b] = z.re;
                    im[k * batch + b] = z.im;
                }
            }
            return;
        }
        let cs = combine_set();
        bgw_perf::counters::record_fft_mk_call(cs.isa.index());
        let (buf_re, rest) = scratch.split_at_mut(self.n * batch);
        let (buf_im, _) = rest.split_at_mut(self.n * batch);
        buf_re[..re.len()].copy_from_slice(re);
        buf_im[..im.len()].copy_from_slice(im);
        self.rec_batch_split(
            &buf_re[..re.len()],
            &buf_im[..im.len()],
            re,
            im,
            self.n,
            1,
            0,
            batch,
            cs,
        );
    }

    /// Transforms a batch of `batch <= LINE_BATCH` *interleaved*
    /// `Complex64` lines in place (element `k` of line `b` at
    /// `data[k * batch + b]`).
    ///
    /// Compatibility wrapper: deinterleaves into split planes, runs
    /// [`FftPlan::process_batch_split`], and reassembles. The 3-D driver
    /// gathers straight into split planes instead, so only ad-hoc callers
    /// pay the conversion.
    pub fn process_batch(
        &self,
        data: &mut [Complex64],
        batch: usize,
        scratch: &mut [Complex64],
        dir: Direction,
    ) {
        assert!((1..=LINE_BATCH).contains(&batch), "batch out of range");
        assert_eq!(data.len(), self.n * batch, "batch buffer length mismatch");
        assert!(
            scratch.len() >= self.batch_scratch_len(),
            "batch scratch too small"
        );
        if self.n == 1 {
            return;
        }
        let mut re = vec![0.0f64; self.n * batch];
        let mut im = vec![0.0f64; self.n * batch];
        for (i, z) in data.iter().enumerate() {
            re[i] = z.re;
            im[i] = z.im;
        }
        let mut split_scratch = vec![0.0f64; self.batch_scratch_split_len()];
        self.process_batch_split(&mut re, &mut im, batch, &mut split_scratch, dir);
        for (i, z) in data.iter_mut().enumerate() {
            *z = c64(re[i], im[i]);
        }
    }

    /// Batched split-plane analogue of [`FftPlan::rec`]: logical element
    /// `i` of `src` is the `b`-wide block at `src_*[i * stride * b ..]`,
    /// and the transform lands contiguously (blocked by `b`) in `dst_*`.
    /// Twiddles come from the per-stage tables; the combines are the
    /// ISA-dispatched butterfly set.
    #[allow(clippy::too_many_arguments)]
    fn rec_batch_split(
        &self,
        src_re: &[f64],
        src_im: &[f64],
        dst_re: &mut [f64],
        dst_im: &mut [f64],
        n: usize,
        stride: usize,
        depth: usize,
        b: usize,
        cs: &CombineSet,
    ) {
        if n == 1 {
            dst_re[..b].copy_from_slice(&src_re[..b]);
            dst_im[..b].copy_from_slice(&src_im[..b]);
            return;
        }
        let r = self.factors[depth];
        let m = n / r;
        for q in 0..r {
            let sub_re = &src_re[q * stride * b..];
            let sub_im = &src_im[q * stride * b..];
            let (head_re, _) = dst_re.split_at_mut((q + 1) * m * b);
            let (head_im, _) = dst_im.split_at_mut((q + 1) * m * b);
            self.rec_batch_split(
                sub_re,
                sub_im,
                &mut head_re[q * m * b..],
                &mut head_im[q * m * b..],
                m,
                stride * r,
                depth + 1,
                b,
                cs,
            );
        }
        let st = &self.stage_tw[depth];
        // SAFETY: `cs` only holds butterfly versions this host can execute
        // (combine_set derives it from `bgw_num::simd::effective`).
        match r {
            2 => unsafe { (cs.c2)(dst_re, dst_im, st, m, b) },
            3 => unsafe { (cs.c3)(dst_re, dst_im, st, m, b) },
            4 => unsafe { (cs.c4)(dst_re, dst_im, st, m, b) },
            5 => unsafe { (cs.c5)(dst_re, dst_im, st, m, b) },
            _ => combine_generic_split(dst_re, dst_im, st, &self.dft_tw[depth], r, m, b),
        }
    }

    /// Bluestein forward transform.
    fn bluestein_forward(&self, b: &Bluestein, data: &mut [Complex64], scratch: &mut [Complex64]) {
        let n = self.n;
        let m = b.m;
        let (a, rest) = scratch.split_at_mut(m);
        let (inner_scratch, _) = rest.split_at_mut(b.inner.scratch_len());
        // a = x * chirp, zero-padded to m.
        for k in 0..n {
            a[k] = data[k] * b.chirp[k];
        }
        for z in a.iter_mut().skip(n) {
            *z = Complex64::ZERO;
        }
        b.inner.process_with(a, inner_scratch, Direction::Forward);
        for (ak, ck) in a.iter_mut().zip(&b.chirp_hat) {
            *ak *= *ck;
        }
        b.inner.process_with(a, inner_scratch, Direction::Inverse);
        for k in 0..n {
            data[k] = a[k] * b.chirp[k];
        }
    }
}

// ---------------------------------------------------------------------------
// Split-plane butterfly bodies.
//
// Each body is `#[inline(always)]` straight-line real arithmetic over the
// batch dimension; the `#[target_feature]` wrappers below re-compile the
// same body per ISA so the autovectorizer emits 256-/512-bit lanes. On
// aarch64 the plain body is already the NEON version (Advanced SIMD is the
// baseline target). The per-radix DFT constants (±1, ±i, the exact
// radix-3/5 cosines) appear as real scalings, so the loop bodies contain
// no complex shuffles — the batch is the SIMD dimension.
// ---------------------------------------------------------------------------

/// Radix-2 combine: `X0 = a0 + tw a1`, `X1 = a0 - tw a1`.
#[inline(always)]
fn combine2_body(re: &mut [f64], im: &mut [f64], st: &[Complex64], m: usize, b: usize) {
    assert!(re.len() >= 2 * m * b && im.len() >= 2 * m * b && st.len() >= 2 * m);
    for k in 0..m {
        let tw = st[k * 2 + 1];
        let (i0, i1) = (k * b, (m + k) * b);
        for j in 0..b {
            let xr = re[i1 + j];
            let xi = im[i1 + j];
            let tr = xr * tw.re - xi * tw.im;
            let ti = xr * tw.im + xi * tw.re;
            let ar = re[i0 + j];
            let ai = im[i0 + j];
            re[i0 + j] = ar + tr;
            im[i0 + j] = ai + ti;
            re[i1 + j] = ar - tr;
            im[i1 + j] = ai - ti;
        }
    }
}

/// Radix-3 combine with the exact `w = e^{-2 pi i / 3}` constants:
/// `X1 = a0 - s/2 + i Im(w) d`, `X2 = a0 - s/2 - i Im(w) d` with
/// `s = a1 + a2`, `d = a1 - a2` (inputs already twiddled).
#[inline(always)]
fn combine3_body(re: &mut [f64], im: &mut [f64], st: &[Complex64], m: usize, b: usize) {
    const B3: f64 = -0.866_025_403_784_438_6; // Im(e^{-2 pi i / 3}) = -sqrt(3)/2
    assert!(re.len() >= 3 * m * b && im.len() >= 3 * m * b && st.len() >= 3 * m);
    for k in 0..m {
        let tw1 = st[k * 3 + 1];
        let tw2 = st[k * 3 + 2];
        let (i0, i1, i2) = (k * b, (m + k) * b, (2 * m + k) * b);
        for j in 0..b {
            let a0r = re[i0 + j];
            let a0i = im[i0 + j];
            let (x1r, x1i) = (re[i1 + j], im[i1 + j]);
            let a1r = x1r * tw1.re - x1i * tw1.im;
            let a1i = x1r * tw1.im + x1i * tw1.re;
            let (x2r, x2i) = (re[i2 + j], im[i2 + j]);
            let a2r = x2r * tw2.re - x2i * tw2.im;
            let a2i = x2r * tw2.im + x2i * tw2.re;
            let sr = a1r + a2r;
            let si = a1i + a2i;
            let dr = a1r - a2r;
            let di = a1i - a2i;
            let er = a0r - 0.5 * sr;
            let ei = a0i - 0.5 * si;
            let fr = -B3 * di; // f = i B3 d
            let fi = B3 * dr;
            re[i0 + j] = a0r + sr;
            im[i0 + j] = a0i + si;
            re[i1 + j] = er + fr;
            im[i1 + j] = ei + fi;
            re[i2 + j] = er - fr;
            im[i2 + j] = ei - fi;
        }
    }
}

/// Radix-4 combine: the DFT matrix entries are `{1, -i, -1, i}`, so the
/// whole butterfly is additions plus one quarter-turn (`-i z` is a re/im
/// swap with one negation — a pure plane exchange in split layout).
#[inline(always)]
fn combine4_body(re: &mut [f64], im: &mut [f64], st: &[Complex64], m: usize, b: usize) {
    assert!(re.len() >= 4 * m * b && im.len() >= 4 * m * b && st.len() >= 4 * m);
    for k in 0..m {
        let tw1 = st[k * 4 + 1];
        let tw2 = st[k * 4 + 2];
        let tw3 = st[k * 4 + 3];
        let (i0, i1, i2, i3) = (k * b, (m + k) * b, (2 * m + k) * b, (3 * m + k) * b);
        for j in 0..b {
            let a0r = re[i0 + j];
            let a0i = im[i0 + j];
            let (x1r, x1i) = (re[i1 + j], im[i1 + j]);
            let a1r = x1r * tw1.re - x1i * tw1.im;
            let a1i = x1r * tw1.im + x1i * tw1.re;
            let (x2r, x2i) = (re[i2 + j], im[i2 + j]);
            let a2r = x2r * tw2.re - x2i * tw2.im;
            let a2i = x2r * tw2.im + x2i * tw2.re;
            let (x3r, x3i) = (re[i3 + j], im[i3 + j]);
            let a3r = x3r * tw3.re - x3i * tw3.im;
            let a3i = x3r * tw3.im + x3i * tw3.re;
            let s02r = a0r + a2r;
            let s02i = a0i + a2i;
            let d02r = a0r - a2r;
            let d02i = a0i - a2i;
            let s13r = a1r + a3r;
            let s13i = a1i + a3i;
            // -i (a1 - a3): quarter turn in split planes.
            let jdr = a1i - a3i;
            let jdi = -(a1r - a3r);
            re[i0 + j] = s02r + s13r;
            im[i0 + j] = s02i + s13i;
            re[i1 + j] = d02r + jdr;
            im[i1 + j] = d02i + jdi;
            re[i2 + j] = s02r - s13r;
            im[i2 + j] = s02i - s13i;
            re[i3 + j] = d02r - jdr;
            im[i3 + j] = d02i - jdi;
        }
    }
}

/// Radix-5 combine via the standard two-fold symmetry split: with
/// `t1 = a1 + a4`, `t2 = a2 + a3`, `t3 = a1 - a4`, `t4 = a2 - a3`,
/// `X{1,4} = a0 + c1 t1 + c2 t2 -/+ i (s1 t3 + s2 t4)` and
/// `X{2,3} = a0 + c2 t1 + c1 t2 -/+ i (s2 t3 - s1 t4)`.
#[inline(always)]
fn combine5_body(re: &mut [f64], im: &mut [f64], st: &[Complex64], m: usize, b: usize) {
    const C1: f64 = 0.309_016_994_374_947_45; // cos(2 pi / 5)
    const S1: f64 = 0.951_056_516_295_153_5; // sin(2 pi / 5)
    const C2: f64 = -0.809_016_994_374_947_4; // cos(4 pi / 5)
    const S2: f64 = 0.587_785_252_292_473_1; // sin(4 pi / 5)
    assert!(re.len() >= 5 * m * b && im.len() >= 5 * m * b && st.len() >= 5 * m);
    for k in 0..m {
        let tw1 = st[k * 5 + 1];
        let tw2 = st[k * 5 + 2];
        let tw3 = st[k * 5 + 3];
        let tw4 = st[k * 5 + 4];
        let (i0, i1, i2, i3, i4) = (
            k * b,
            (m + k) * b,
            (2 * m + k) * b,
            (3 * m + k) * b,
            (4 * m + k) * b,
        );
        for j in 0..b {
            let a0r = re[i0 + j];
            let a0i = im[i0 + j];
            let (x1r, x1i) = (re[i1 + j], im[i1 + j]);
            let a1r = x1r * tw1.re - x1i * tw1.im;
            let a1i = x1r * tw1.im + x1i * tw1.re;
            let (x2r, x2i) = (re[i2 + j], im[i2 + j]);
            let a2r = x2r * tw2.re - x2i * tw2.im;
            let a2i = x2r * tw2.im + x2i * tw2.re;
            let (x3r, x3i) = (re[i3 + j], im[i3 + j]);
            let a3r = x3r * tw3.re - x3i * tw3.im;
            let a3i = x3r * tw3.im + x3i * tw3.re;
            let (x4r, x4i) = (re[i4 + j], im[i4 + j]);
            let a4r = x4r * tw4.re - x4i * tw4.im;
            let a4i = x4r * tw4.im + x4i * tw4.re;
            let t1r = a1r + a4r;
            let t1i = a1i + a4i;
            let t2r = a2r + a3r;
            let t2i = a2i + a3i;
            let t3r = a1r - a4r;
            let t3i = a1i - a4i;
            let t4r = a2r - a3r;
            let t4i = a2i - a3i;
            let e1r = a0r + C1 * t1r + C2 * t2r;
            let e1i = a0i + C1 * t1i + C2 * t2i;
            let e2r = a0r + C2 * t1r + C1 * t2r;
            let e2i = a0i + C2 * t1i + C1 * t2i;
            // f1 = -i (S1 t3 + S2 t4), f2 = -i (S2 t3 - S1 t4).
            let f1r = S1 * t3i + S2 * t4i;
            let f1i = -(S1 * t3r + S2 * t4r);
            let f2r = S2 * t3i - S1 * t4i;
            let f2i = -(S2 * t3r - S1 * t4r);
            re[i0 + j] = a0r + t1r + t2r;
            im[i0 + j] = a0i + t1i + t2i;
            re[i1 + j] = e1r + f1r;
            im[i1 + j] = e1i + f1i;
            re[i4 + j] = e1r - f1r;
            im[i4 + j] = e1i - f1i;
            re[i2 + j] = e2r + f2r;
            im[i2 + j] = e2i + f2i;
            re[i3 + j] = e2r - f2r;
            im[i3 + j] = e2i - f2i;
        }
    }
}

/// Generic radix-`r` combine via the precomputed DFT matrix; only the
/// large prime radices (7, 11, 13) land here, so it stays scalar-bodied
/// on every ISA.
fn combine_generic_split(
    re: &mut [f64],
    im: &mut [f64],
    st: &[Complex64],
    dt: &[Complex64],
    r: usize,
    m: usize,
    b: usize,
) {
    let mut tmp_re = [0.0f64; MAX_RADIX * LINE_BATCH];
    let mut tmp_im = [0.0f64; MAX_RADIX * LINE_BATCH];
    let mut acc_re = [0.0f64; LINE_BATCH];
    let mut acc_im = [0.0f64; LINE_BATCH];
    for k in 0..m {
        tmp_re[..b].copy_from_slice(&re[k * b..k * b + b]); // q = 0: tw = 1
        tmp_im[..b].copy_from_slice(&im[k * b..k * b + b]);
        for q in 1..r {
            let tw = st[k * r + q];
            let at = (q * m + k) * b;
            for j in 0..b {
                let xr = re[at + j];
                let xi = im[at + j];
                tmp_re[q * b + j] = xr * tw.re - xi * tw.im;
                tmp_im[q * b + j] = xr * tw.im + xi * tw.re;
            }
        }
        for p in 0..r {
            acc_re[..b].copy_from_slice(&tmp_re[..b]);
            acc_im[..b].copy_from_slice(&tmp_im[..b]);
            for q in 1..r {
                let tw = dt[p * r + q];
                for j in 0..b {
                    let tr = tmp_re[q * b + j];
                    let ti = tmp_im[q * b + j];
                    acc_re[j] += tr * tw.re - ti * tw.im;
                    acc_im[j] += tr * tw.im + ti * tw.re;
                }
            }
            let at = (p * m + k) * b;
            re[at..at + b].copy_from_slice(&acc_re[..b]);
            im[at..at + b].copy_from_slice(&acc_im[..b]);
        }
    }
}

/// Signature shared by every butterfly version. The `unsafe` is the
/// `#[target_feature]` contract: a pointer must only be called on a host
/// that executes its ISA (the scalar versions are safe functions coerced
/// to this type).
type CombineFn = unsafe fn(&mut [f64], &mut [f64], &[Complex64], usize, usize);

/// One runtime-selected butterfly set: the radix-2/3/4/5 combine versions
/// compiled for a single ISA.
struct CombineSet {
    isa: Isa,
    c2: CombineFn,
    c3: CombineFn,
    c4: CombineFn,
    c5: CombineFn,
}

// Safe scalar versions (also the NEON versions on aarch64, where the
// baseline target already emits Advanced SIMD for the plain bodies).
fn combine2_scalar(re: &mut [f64], im: &mut [f64], st: &[Complex64], m: usize, b: usize) {
    combine2_body(re, im, st, m, b)
}
fn combine3_scalar(re: &mut [f64], im: &mut [f64], st: &[Complex64], m: usize, b: usize) {
    combine3_body(re, im, st, m, b)
}
fn combine4_scalar(re: &mut [f64], im: &mut [f64], st: &[Complex64], m: usize, b: usize) {
    combine4_body(re, im, st, m, b)
}
fn combine5_scalar(re: &mut [f64], im: &mut [f64], st: &[Complex64], m: usize, b: usize) {
    combine5_body(re, im, st, m, b)
}

#[cfg(target_arch = "x86_64")]
mod mv {
    //! `#[target_feature]` multiversions of the butterfly bodies. Each
    //! wrapper inlines the shared body under a wider feature set, so the
    //! autovectorizer emits 256-bit (AVX2+FMA) or 512-bit (AVX-512F)
    //! lanes across the batch dimension.
    //!
    //! # Safety
    //! Callers must guarantee the host supports the named feature set;
    //! the dispatch table is built from `bgw_num::simd::effective`, which
    //! never names an ISA the machine cannot execute.
    #![allow(missing_docs)]

    use super::*;

    macro_rules! multiversion {
        ($name:ident, $body:ident, $feat:literal) => {
            #[target_feature(enable = $feat)]
            pub unsafe fn $name(
                re: &mut [f64],
                im: &mut [f64],
                st: &[Complex64],
                m: usize,
                b: usize,
            ) {
                $body(re, im, st, m, b)
            }
        };
    }

    multiversion!(c2_avx2, combine2_body, "avx2,fma");
    multiversion!(c3_avx2, combine3_body, "avx2,fma");
    multiversion!(c4_avx2, combine4_body, "avx2,fma");
    multiversion!(c5_avx2, combine5_body, "avx2,fma");
    multiversion!(c2_avx512, combine2_body, "avx512f");
    multiversion!(c3_avx512, combine3_body, "avx512f");
    multiversion!(c4_avx512, combine4_body, "avx512f");
    multiversion!(c5_avx512, combine5_body, "avx512f");
}

static SCALAR_SET: CombineSet = CombineSet {
    isa: Isa::Scalar,
    c2: combine2_scalar as CombineFn,
    c3: combine3_scalar as CombineFn,
    c4: combine4_scalar as CombineFn,
    c5: combine5_scalar as CombineFn,
};

#[cfg(target_arch = "aarch64")]
static NEON_SET: CombineSet = CombineSet {
    isa: Isa::Neon,
    c2: combine2_scalar as CombineFn,
    c3: combine3_scalar as CombineFn,
    c4: combine4_scalar as CombineFn,
    c5: combine5_scalar as CombineFn,
};

#[cfg(target_arch = "x86_64")]
static AVX2_SET: CombineSet = CombineSet {
    isa: Isa::Avx2,
    c2: mv::c2_avx2,
    c3: mv::c3_avx2,
    c4: mv::c4_avx2,
    c5: mv::c5_avx2,
};

#[cfg(target_arch = "x86_64")]
static AVX512_SET: CombineSet = CombineSet {
    isa: Isa::Avx512,
    c2: mv::c2_avx512,
    c3: mv::c3_avx512,
    c4: mv::c4_avx512,
    c5: mv::c5_avx512,
};

/// The butterfly set for the current effective ISA (forced override or
/// runtime detection; see `bgw_num::simd`). Every set returned here is
/// executable on this host — that is the safety contract the `unsafe`
/// combine calls rely on.
fn combine_set() -> &'static CombineSet {
    match bgw_num::simd::effective() {
        Isa::Scalar => &SCALAR_SET,
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => &NEON_SET,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => &AVX2_SET,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => &AVX512_SET,
        #[allow(unreachable_patterns)]
        _ => &SCALAR_SET,
    }
}

/// Builds the forward twiddle table `e^{-2 pi i k / n}`.
fn forward_twiddles(n: usize) -> Vec<Complex64> {
    let w = -2.0 * std::f64::consts::PI / n as f64;
    (0..n).map(|k| Complex64::cis(w * k as f64)).collect()
}

/// Precomputes, for every recursion depth of the mixed-radix kernel, the
/// butterfly twiddles `stage_tw[d][k*r+q] = twiddles[(k*q*step_d) % n]`
/// and the radix-DFT matrix `dft_tw[d][p*r+q] = twiddles[(p*q*m_d*step_d) % n]`
/// (the latter only consumed by the generic large-prime combine; radices
/// 2/3/4/5 hard-wire their DFT constants). Entries are copied out of the
/// shared `twiddles` table, so the batched kernel reads the same twiddle
/// values as the recursive one without the per-butterfly
/// multiply-and-modulo index computation.
fn stage_tables(
    n: usize,
    factors: &[usize],
    twiddles: &[Complex64],
) -> (Vec<Vec<Complex64>>, Vec<Vec<Complex64>>) {
    let mut stage_tw = Vec::with_capacity(factors.len());
    let mut dft_tw = Vec::with_capacity(factors.len());
    let mut nd = n;
    for &r in factors {
        let m = nd / r;
        let step = n / nd;
        let mut st = Vec::with_capacity(m * r);
        for k in 0..m {
            for q in 0..r {
                st.push(twiddles[(k * q * step) % n]);
            }
        }
        let mut dt = Vec::with_capacity(r * r);
        for p in 0..r {
            for q in 0..r {
                dt.push(twiddles[(p * q * m * step) % n]);
            }
        }
        stage_tw.push(st);
        dft_tw.push(dt);
        nd = m;
    }
    (stage_tw, dft_tw)
}

/// Reference O(n^2) DFT used by tests and as a correctness oracle.
pub fn dft_reference(x: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = x.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let norm = match dir {
        Direction::Forward => 1.0,
        Direction::Inverse => 1.0 / n as f64,
    };
    (0..n)
        .map(|k| {
            let mut acc = c64(0.0, 0.0);
            for (j, &xj) in x.iter().enumerate() {
                let ph = sign * 2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64;
                acc += xj * Complex64::cis(ph);
            }
            acc.scale(norm)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgw_num::c64;

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex64> {
        // Small deterministic LCG; avoids pulling rand into the hot crate.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n).map(|_| c64(next(), next())).collect()
    }

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn factorize_smooth_and_prime() {
        assert_eq!(factorize(1), Some(vec![]));
        assert_eq!(factorize(8), Some(vec![4, 2]));
        assert!(factorize(360).is_some());
        assert!(factorize(97).is_none()); // prime > 13
        assert_eq!(factorize(13), Some(vec![13]));
    }

    #[test]
    fn good_size_is_5_smooth_and_geq() {
        for n in [1usize, 7, 17, 97, 101, 640, 1009] {
            let g = good_size(n);
            assert!(g >= n);
            let mut k = g;
            for r in [2, 3, 5] {
                while k.is_multiple_of(r) {
                    k /= r;
                }
            }
            assert_eq!(k, 1, "good_size({n}) = {g} not 5-smooth");
        }
    }

    #[test]
    fn matches_reference_dft_smooth_sizes() {
        for n in [1usize, 2, 3, 4, 5, 6, 8, 12, 15, 16, 20, 36, 60, 64, 100] {
            let x = rand_signal(n, n as u64);
            let plan = FftPlan::new(n);
            let mut y = x.clone();
            plan.process(&mut y, Direction::Forward);
            let r = dft_reference(&x, Direction::Forward);
            assert!(max_err(&y, &r) < 1e-10 * (n as f64), "n = {n}");
        }
    }

    #[test]
    fn matches_reference_dft_bluestein_sizes() {
        for n in [17usize, 19, 23, 29, 31, 97, 101, 127] {
            let x = rand_signal(n, n as u64 + 7);
            let plan = FftPlan::new(n);
            assert!(plan.bluestein.is_some(), "n = {n} should use Bluestein");
            let mut y = x.clone();
            plan.process(&mut y, Direction::Forward);
            let r = dft_reference(&x, Direction::Forward);
            assert!(
                max_err(&y, &r) < 1e-9 * (n as f64),
                "n = {n}: {}",
                max_err(&y, &r)
            );
        }
    }

    #[test]
    fn roundtrip_identity() {
        for n in [4usize, 30, 97, 125, 128, 210] {
            let x = rand_signal(n, 3 * n as u64 + 1);
            let plan = FftPlan::new(n);
            let mut y = x.clone();
            plan.process(&mut y, Direction::Forward);
            plan.process(&mut y, Direction::Inverse);
            assert!(max_err(&y, &x) < 1e-10, "n = {n}");
        }
    }

    #[test]
    fn parseval_theorem() {
        let n = 180;
        let x = rand_signal(n, 42);
        let plan = FftPlan::new(n);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((ex - ey).abs() < 1e-10 * ex);
    }

    #[test]
    fn linearity() {
        let n = 48;
        let a = rand_signal(n, 1);
        let b = rand_signal(n, 2);
        let alpha = c64(0.3, -1.2);
        let plan = FftPlan::new(n);
        let mut lhs: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x * alpha + *y).collect();
        plan.process(&mut lhs, Direction::Forward);
        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.process(&mut fa, Direction::Forward);
        plan.process(&mut fb, Direction::Forward);
        let rhs: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x * alpha + *y).collect();
        assert!(max_err(&lhs, &rhs) < 1e-10);
    }

    #[test]
    fn delta_transforms_to_constant() {
        let n = 64;
        let mut x = vec![Complex64::ZERO; n];
        x[0] = Complex64::ONE;
        FftPlan::new(n).process(&mut x, Direction::Forward);
        for z in &x {
            assert!((*z - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn plane_wave_transforms_to_delta() {
        let n = 60;
        let k0 = 7usize;
        let mut x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(2.0 * std::f64::consts::PI * (k0 * j) as f64 / n as f64))
            .collect();
        FftPlan::new(n).process(&mut x, Direction::Forward);
        for (k, z) in x.iter().enumerate() {
            let expect = if k == k0 { n as f64 } else { 0.0 };
            assert!((z.re - expect).abs() < 1e-9 && z.im.abs() < 1e-9, "k = {k}");
        }
    }

    #[test]
    fn process_with_reusable_scratch() {
        let n = 90;
        let plan = FftPlan::new(n);
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
        let x = rand_signal(n, 5);
        let mut y1 = x.clone();
        let mut y2 = x.clone();
        plan.process(&mut y1, Direction::Forward);
        plan.process_with(&mut y2, &mut scratch, Direction::Forward);
        assert!(max_err(&y1, &y2) < 1e-14);
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn length_mismatch_panics() {
        let plan = FftPlan::new(8);
        let mut x = vec![Complex64::ZERO; 7];
        plan.process(&mut x, Direction::Forward);
    }

    #[test]
    fn batch_matches_scalar_to_rounding() {
        // Smooth, Bluestein, and degenerate lengths; full and ragged
        // batches. The batched kernel's hard-wired radix-2/3/4/5
        // butterflies use exact DFT constants where the scalar kernel
        // multiplies by table entries with ~1e-16 phase error, so the two
        // agree to rounding, not bit-for-bit.
        for n in [1usize, 2, 12, 60, 64, 90, 100, 17, 31] {
            for batch in [1usize, 3, LINE_BATCH] {
                for dir in [Direction::Forward, Direction::Inverse] {
                    let plan = FftPlan::new(n);
                    let lines: Vec<Vec<Complex64>> = (0..batch)
                        .map(|b| rand_signal(n, (17 * n + b) as u64))
                        .collect();
                    // Interleave: data[k*batch + b] = lines[b][k].
                    let mut data = vec![Complex64::ZERO; n * batch];
                    for (b, line) in lines.iter().enumerate() {
                        for (k, &z) in line.iter().enumerate() {
                            data[k * batch + b] = z;
                        }
                    }
                    let mut scratch = vec![Complex64::ZERO; plan.batch_scratch_len()];
                    plan.process_batch(&mut data, batch, &mut scratch, dir);
                    for (b, line) in lines.iter().enumerate() {
                        let mut want = line.clone();
                        plan.process(&mut want, dir);
                        for (k, w) in want.iter().enumerate() {
                            let got = data[k * batch + b];
                            assert!(
                                (got - *w).abs() <= 1e-12 * (n as f64).max(1.0),
                                "n={n} batch={batch} dir={dir:?} b={b} k={k}: {got:?} vs {w:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn split_batch_matches_scalar_and_advances_isa_counter() {
        // Direct split-plane path: radix-2/3/4/5 mixes, a large-prime
        // radix (13), and a Bluestein length, checked per line against the
        // scalar kernel. Also pins the per-ISA FFT telemetry: the
        // butterfly set that ran must be the effective ISA's.
        let effective = bgw_num::simd::effective();
        let before = bgw_perf::counters::snapshot().fft_mk_calls_by_isa();
        for n in [8usize, 15, 45, 60, 26, 17] {
            for batch in [1usize, 5, LINE_BATCH] {
                for dir in [Direction::Forward, Direction::Inverse] {
                    let plan = FftPlan::new(n);
                    let lines: Vec<Vec<Complex64>> = (0..batch)
                        .map(|b| rand_signal(n, (29 * n + b) as u64))
                        .collect();
                    let mut re = vec![0.0f64; n * batch];
                    let mut im = vec![0.0f64; n * batch];
                    for (b, line) in lines.iter().enumerate() {
                        for (k, &z) in line.iter().enumerate() {
                            re[k * batch + b] = z.re;
                            im[k * batch + b] = z.im;
                        }
                    }
                    let mut scratch = vec![0.0f64; plan.batch_scratch_split_len()];
                    plan.process_batch_split(&mut re, &mut im, batch, &mut scratch, dir);
                    for (b, line) in lines.iter().enumerate() {
                        let mut want = line.clone();
                        plan.process(&mut want, dir);
                        for (k, w) in want.iter().enumerate() {
                            let got = c64(re[k * batch + b], im[k * batch + b]);
                            assert!(
                                (got - *w).abs() <= 1e-12 * (n as f64).max(1.0),
                                "n={n} batch={batch} dir={dir:?} b={b} k={k}: {got:?} vs {w:?}"
                            );
                        }
                    }
                }
            }
        }
        let after = bgw_perf::counters::snapshot().fft_mk_calls_by_isa();
        assert!(
            after[effective.index()] > before[effective.index()],
            "effective-ISA butterfly lane must advance"
        );
    }

    #[test]
    fn cached_plan_is_shared() {
        let a = cached_plan(48);
        let b = cached_plan(48);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 48);
    }
}
