//! Ablation: mixed stochastic-deterministic pseudobands (paper Sec. 5.3)
//! — compression versus accuracy of the band-sum observables.
//!
//! Sweeps the per-slice pseudoband count `N_xi` and the slice growth
//! factor, measuring the band-count compression, the resulting error of
//! the static polarizability head (a band-sum observable of Eq. 4), and
//! the GPP diag-kernel time, which scales linearly in `N_b` — the
//! mechanism behind the paper's claim that pseudobands cut the effective
//! scaling of GW (to ~O(N^2.4) in ref 14).

use bgw_bench::{build_setup, timed};
use bgw_core::chi::{ChiConfig, ChiEngine};
use bgw_core::mtxel::Mtxel;
use bgw_core::pseudobands::{compress, PseudobandsConfig};
use bgw_core::sigma::diag::{gpp_sigma_diag, KernelVariant};
use bgw_core::sigma::SigmaContext;
use bgw_num::RunningStats;
use bgw_perf::Table;

fn main() {
    let mut sys = bgw_pwdft::si_bulk(1, 4.5);
    sys.ecut_eps_ry = 1.4;
    sys.n_bands = 140;
    let setup = build_setup(sys, 4);
    let ctx = &setup.ctx;
    let wf = &setup.wf;
    let mtxel = Mtxel::new(&setup.wfn_sph, &setup.eps_sph);
    let cfg = ChiConfig {
        q0: setup.coulomb.q0,
        ..ChiConfig::default()
    };

    // exact references
    let chi_head_exact = {
        let engine = ChiEngine::new(wf, &mtxel, cfg);
        engine.chi_static()[(1, 1)].re
    };
    let grids: Vec<Vec<f64>> = ctx.sigma_energies.iter().map(|&e| vec![e]).collect();
    let (sigma_exact, t_exact) = timed(|| gpp_sigma_diag(ctx, &grids, KernelVariant::Optimized));
    println!(
        "exact reference: N_b = {}, chi_11 = {chi_head_exact:.5}, Sigma kernel {t_exact:.3} s\n",
        wf.n_bands()
    );

    let mut t = Table::new(
        "Pseudobands sweep: compression vs band-sum accuracy (10-seed averages)",
        &[
            "N_xi",
            "growth",
            "N_b eff",
            "compression",
            "chi_11 err %",
            "Sigma_HOMO err (mRy)",
            "kernel s",
        ],
    );
    for (n_xi, growth) in [(1usize, 1.5f64), (2, 1.5), (4, 1.5), (2, 1.0), (2, 2.5)] {
        let mut chi_err = RunningStats::new();
        let mut sig_err = RunningStats::new();
        let mut n_eff = 0usize;
        let mut t_kernel = 0.0;
        let n_seeds = 10;
        for seed in 0..n_seeds {
            let pcfg = PseudobandsConfig {
                protection_ry: 0.15,
                n_xi,
                first_slice_ry: 0.35,
                growth,
                seed,
            };
            let pb = compress(wf, &pcfg);
            n_eff = pb.wf.n_bands();
            // chi head from the compressed set
            let engine = ChiEngine::new(&pb.wf, &mtxel, cfg);
            let chi = engine.chi_static();
            chi_err.push((chi[(1, 1)].re - chi_head_exact).abs() / chi_head_exact.abs());
            // Sigma on the compressed bands (same screening/GPP)
            let pctx = SigmaContext::build(
                &pb.wf,
                &mtxel,
                ctx.gpp.clone(),
                &setup.vsqrt,
                &ctx.sigma_bands,
                setup.coulomb.q0,
            );
            let (r, secs) = timed(|| gpp_sigma_diag(&pctx, &grids, KernelVariant::Optimized));
            t_kernel = secs;
            let h = ctx.homo_pos();
            sig_err.push((r.sigma[h][0] - sigma_exact.sigma[h][0]).abs());
        }
        t.row(&[
            n_xi.to_string(),
            format!("{growth:.1}"),
            n_eff.to_string(),
            format!("{:.2}x", wf.n_bands() as f64 / n_eff as f64),
            format!("{:.2}", 100.0 * chi_err.mean()),
            format!("{:.2}", 1000.0 * sig_err.mean()),
            format!("{t_kernel:.3}"),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nShape targets (paper / ref [14]): stochastic errors shrink with\n\
         N_xi, growing slices give exponential compression with controlled\n\
         error, and the kernel time drops with the compressed N_b — the\n\
         effective-scaling reduction of the mixed stochastic-deterministic\n\
         method. Protected states keep the gap edges exact."
    );
}
