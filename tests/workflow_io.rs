//! Integration test: the file-based module boundary. A GW run whose
//! wavefunctions and dielectric matrix pass through BGWR files (the
//! WFN/epsmat handoff between BerkeleyGW's executables) must reproduce the
//! in-memory run exactly.

use berkeleygw_rs::core::chi::{ChiConfig, ChiEngine};
use berkeleygw_rs::core::coulomb::Coulomb;
use berkeleygw_rs::core::epsilon::EpsilonInverse;
use berkeleygw_rs::core::gpp::GppModel;
use berkeleygw_rs::core::mtxel::Mtxel;
use berkeleygw_rs::core::sigma::diag::{gpp_sigma_diag, KernelVariant};
use berkeleygw_rs::core::sigma::SigmaContext;
use berkeleygw_rs::io::{read_epsilon, read_wavefunctions, write_epsilon, write_wavefunctions};
use berkeleygw_rs::pwdft::{charge_density_g, si_bulk, solve_bands};

#[test]
fn gw_through_files_matches_in_memory() {
    let dir = std::env::temp_dir().join(format!("bgw_wfio_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // --- producer side: mean field + epsilon, written to disk ---------
    let mut sys = si_bulk(1, 2.2);
    sys.n_bands = 24;
    let wfn_sph = sys.wfn_sphere();
    let eps_sph = sys.eps_sphere();
    let wf = solve_bands(&sys.crystal, &wfn_sph, sys.n_bands);
    let coulomb = Coulomb::bulk_for_cell(sys.crystal.lattice.volume());
    let mtxel = Mtxel::new(&wfn_sph, &eps_sph);
    let cfg = ChiConfig {
        q0: coulomb.q0,
        ..ChiConfig::default()
    };
    let chi0 = ChiEngine::new(&wf, &mtxel, cfg).chi_static();
    let eps_inv = EpsilonInverse::build(&[chi0], &[0.0], &coulomb, &eps_sph)
        .expect("dielectric matrix must be invertible");

    write_wavefunctions(&dir.join("wfn.bgwr"), &wf).unwrap();
    write_epsilon(
        &dir.join("eps"),
        &eps_inv.omegas,
        &eps_inv.vsqrt,
        &eps_inv.inv,
    )
    .unwrap();

    // --- consumer side: read back and run Sigma ------------------------
    let wf2 = read_wavefunctions(&dir.join("wfn.bgwr")).unwrap();
    let (omegas, vsqrt, mats) = read_epsilon(&dir.join("eps")).unwrap();
    let eps2 = EpsilonInverse {
        omegas,
        inv: mats,
        vsqrt,
    };

    let rho = charge_density_g(&wf2, &wfn_sph);
    let vol = sys.crystal.lattice.volume();
    let gpp = GppModel::new(&eps2, &eps_sph, &wfn_sph, &rho, vol);
    let vsq = coulomb.sqrt_on_sphere(&eps_sph);
    let nv = wf2.n_valence;
    let bands = vec![nv - 1, nv];
    let ctx_file = SigmaContext::build(&wf2, &mtxel, gpp.clone(), &vsq, &bands, coulomb.q0);
    // in-memory reference
    let ctx_mem = SigmaContext::build(&wf, &mtxel, gpp, &vsq, &bands, coulomb.q0);

    let grids: Vec<Vec<f64>> = ctx_mem.sigma_energies.iter().map(|&e| vec![e]).collect();
    let from_file = gpp_sigma_diag(&ctx_file, &grids, KernelVariant::Optimized);
    let in_memory = gpp_sigma_diag(&ctx_mem, &grids, KernelVariant::Optimized);
    for s in 0..2 {
        assert_eq!(
            from_file.sigma[s][0], in_memory.sigma[s][0],
            "file round-trip must be bit-exact"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
