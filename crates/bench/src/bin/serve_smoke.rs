//! Traffic-replay gate for the `bgw-serve` daemon (wired into
//! `tools/check.sh --serve`).
//!
//! Replays a seeded zipf request stream (hundreds of mixed GPP and
//! full-frequency requests over a few structures) through the threaded
//! [`Server`] in bursts, then gates:
//!
//! * cache hit rate > 0 on the repeated structures (warm requests must
//!   ride the in-memory LRU / artifact store / coalescing instead of
//!   rebuilding W) — and exactly one screening build per distinct W key,
//!   verified against the perf counters;
//! * warm requests skip the epsilon/W recomputation, verified on the
//!   per-request span-tree reports (`serve.screening.build` absent);
//! * every served response matches its one-shot oracle (`run_gpp_gw` /
//!   direct `ff_sigma_diag`) at 1e-12;
//! * p50/p99 service latency finite, written with the hit statistics to
//!   `BENCH_serve.json`.
//!
//! `--smoke` shrinks the stream for the CI gate; any violated gate exits
//! nonzero.

use bgw_core::workflow::run_gpp_gw;
use bgw_core::{
    ff_sigma_diag, ChiConfig, ChiEngine, Coulomb, EpsilonInverse, GppModel, Mtxel, SigmaContext,
};
use bgw_num::grid::semi_infinite_quadrature;
use bgw_num::Complex64;
use bgw_perf::counters;
use bgw_pwdft::{charge_density_g, solve_bands};
use bgw_serve::{
    zipf_stream, CacheStatus, GwRequest, Payload, RequestKind, ServeConfig, Server, TrafficConfig,
};
use std::collections::HashMap;
use std::time::Instant;

const PARITY_TOL: f64 = 1e-12;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One-shot FF oracle: the direct primitive pipeline, no service layer.
fn ff_oracle(req: &GwRequest) -> Vec<Vec<Complex64>> {
    let RequestKind::FullFreq { n_quad, .. } = req.kind else {
        panic!("ff oracle on a GPP request");
    };
    let sys = req.structure.system();
    let cfg = req.gw_config();
    let wfn_sph = sys.wfn_sphere();
    let eps_sph = sys.eps_sphere();
    let wf = solve_bands(&sys.crystal, &wfn_sph, sys.n_bands.min(wfn_sph.len()));
    let volume = sys.crystal.lattice.volume();
    let coulomb = Coulomb::bulk_for_cell(volume);
    let mtxel = Mtxel::new(&wfn_sph, &eps_sph);
    let vsqrt = coulomb.sqrt_on_sphere(&eps_sph);
    let engine = ChiEngine::new(
        &wf,
        &mtxel,
        ChiConfig {
            q0: coulomb.q0,
            ..cfg.chi
        },
    );
    let chi0 = engine.chi_static();
    let eps_inv = EpsilonInverse::build(&[chi0], &[0.0], &coulomb, &eps_sph).expect("static eps");
    let (nodes, weights) = semi_infinite_quadrature(n_quad, 2.0);
    let (chis, _) = engine.chi_freqs(&nodes);
    let eps_ff = EpsilonInverse::build(&chis, &nodes, &coulomb, &eps_sph).expect("ff eps");
    let rho = charge_density_g(&wf, &wfn_sph);
    let gpp = GppModel::new(&eps_inv, &eps_sph, &wfn_sph, &rho, volume);
    let bands = req.bands(wf.n_valence, wf.n_bands());
    let ctx = SigmaContext::build(&wf, &mtxel, gpp, &vsqrt, &bands, coulomb.q0);
    let d = req.delta_ry();
    let grids: Vec<Vec<f64>> = ctx
        .sigma_energies
        .iter()
        .map(|&e| vec![e - d, e, e + d])
        .collect();
    ff_sigma_diag(&ctx, &eps_ff, &weights, &grids, req.eta_ry()).sigma
}

enum Oracle {
    Gpp(Vec<f64>),
    Ff(Vec<Vec<Complex64>>),
}

fn oracle_for(req: &GwRequest) -> Oracle {
    match req.kind {
        RequestKind::GppDiag { .. } => {
            let r = run_gpp_gw(&req.structure.system(), &req.gw_config());
            Oracle::Gpp(r.states.iter().map(|s| s.e_qp).collect())
        }
        RequestKind::FullFreq { .. } => Oracle::Ff(ff_oracle(req)),
    }
}

fn parity_err(payload: &Payload, oracle: &Oracle) -> f64 {
    match (payload, oracle) {
        (Payload::Gpp(p), Oracle::Gpp(e_qp)) => p
            .e_qp
            .iter()
            .zip(e_qp)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max),
        (Payload::FullFreq(p), Oracle::Ff(sigma)) => p
            .sigma
            .iter()
            .flatten()
            .zip(sigma.iter().flatten())
            .map(|(a, b)| (a.re - b.re).abs().max((a.im - b.im).abs()))
            .fold(0.0, f64::max),
        _ => f64::INFINITY,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_requests = if smoke { 48 } else { 240 };
    let burst = 8;
    let traffic = TrafficConfig::small(2024, n_requests);
    let stream = zipf_stream(&traffic);

    let store_dir = std::env::temp_dir().join(format!("bgw_serve_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut sc = ServeConfig::new(&store_dir);
    sc.queue_capacity = n_requests + burst;
    sc.collect_reports = true;

    let n_wkeys = {
        let mut keys: Vec<u64> = stream.iter().map(|r| r.w_key().0).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    };

    let before = counters::snapshot();
    let t0 = Instant::now();
    let server = Server::start(sc);
    let mut failed = false;
    let mut latencies: Vec<f64> = Vec::with_capacity(stream.len());
    let mut oracles: HashMap<u64, Oracle> = HashMap::new();
    let mut worst_parity = 0.0f64;
    let mut warm_with_build = 0usize;
    let mut n_warm_reports = 0usize;

    for wave in stream.chunks(burst) {
        let tickets: Vec<_> = wave.iter().map(|r| (*r, server.submit(*r))).collect();
        for (req, ticket) in tickets {
            let ok = match ticket.wait() {
                Ok(ok) => ok,
                Err(e) => {
                    eprintln!("FAIL: request rejected or faulted with no plan armed: {e}");
                    std::process::exit(1);
                }
            };
            latencies.push(ok.telemetry.queue_seconds + ok.telemetry.compute_seconds);
            let oracle = oracles
                .entry(req.request_key().0)
                .or_insert_with(|| oracle_for(&req));
            let err = parity_err(&ok.payload, oracle);
            worst_parity = worst_parity.max(err);
            if err > PARITY_TOL {
                eprintln!("FAIL: served result drifted {err:e} from the one-shot oracle");
                failed = true;
            }
            // Warm requests must not rebuild the screening: their span
            // report has no serve.screening.build subtree.
            if ok.telemetry.cache != CacheStatus::Miss {
                if let Some(rep) = &ok.telemetry.report {
                    n_warm_reports += 1;
                    if rep.find("serve.batch/serve.screening.build").is_some() {
                        warm_with_build += 1;
                    }
                }
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let core = server.shutdown();
    if !core.is_idle() {
        eprintln!("FAIL: queue not drained after shutdown");
        failed = true;
    }
    let d = before.delta(&counters::snapshot());

    let warm = d.serve_hits_mem + d.serve_hits_disk + d.serve_coalesced;
    let hit_rate = warm as f64 / stream.len() as f64;
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);

    if warm == 0 {
        eprintln!("FAIL: zipf repeats produced zero cache hits");
        failed = true;
    }
    if d.serve_misses as usize != n_wkeys {
        eprintln!(
            "FAIL: {} screening builds for {} distinct W keys — warm requests recomputed W",
            d.serve_misses, n_wkeys
        );
        failed = true;
    }
    if bgw_trace::compiled_in() && n_warm_reports == 0 {
        eprintln!("FAIL: no warm request carried a span report");
        failed = true;
    }
    if warm_with_build > 0 {
        eprintln!("FAIL: {warm_with_build} warm requests rebuilt the screening (span tree)");
        failed = true;
    }
    if !p99.is_finite() || !p50.is_finite() {
        eprintln!("FAIL: latency percentiles not finite (p50 {p50}, p99 {p99})");
        failed = true;
    }
    if d.serve_completed as usize != stream.len() {
        eprintln!(
            "FAIL: {} completions for {} requests",
            d.serve_completed,
            stream.len()
        );
        failed = true;
    }

    let json = format!(
        "{{\n  \"config\": {{\"smoke\": {smoke}, \"n_requests\": {}, \"burst\": {burst}, \
         \"structures\": {}, \"zipf_exponent\": {}, \"seed\": {}, \"threads\": {}, \
         \"parity_tol\": {PARITY_TOL:e}}},\n  \
         \"cache\": {{\"hit_rate\": {hit_rate:.4}, \"hits_mem\": {}, \"hits_disk\": {}, \
         \"coalesced\": {}, \"misses\": {}, \"distinct_w_keys\": {n_wkeys}, \
         \"store_invalid\": {}}},\n  \
         \"latency\": {{\"p50_s\": {p50:.6}, \"p99_s\": {p99:.6}, \"wall_s\": {wall:.3}, \
         \"completed\": {}}},\n  \
         \"parity\": {{\"worst\": {worst_parity:e}, \"oracles\": {}}},\n  \
         \"warm_skip\": {{\"warm_reports\": {n_warm_reports}, \"warm_with_build\": {warm_with_build}}},\n  \
         \"pass\": {}\n}}\n",
        stream.len(),
        traffic.structures.len(),
        traffic.zipf_exponent,
        traffic.seed,
        bgw_par::num_threads(),
        d.serve_hits_mem,
        d.serve_hits_disk,
        d.serve_coalesced,
        d.serve_misses,
        d.serve_store_invalid,
        d.serve_completed,
        oracles.len(),
        !failed,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
    let _ = std::fs::remove_dir_all(&store_dir);

    if failed {
        std::process::exit(1);
    }
    println!(
        "serve smoke: {} requests, hit rate {:.1}%, {} screening builds for {} W keys, \
         p50 {:.2}ms, p99 {:.2}ms, worst parity {worst_parity:.2e}",
        stream.len(),
        hit_rate * 100.0,
        d.serve_misses,
        n_wkeys,
        p50 * 1e3,
        p99 * 1e3
    );
}
