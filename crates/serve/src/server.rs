//! The threaded daemon: dispatcher shards wrapping [`ServeCore`].
//!
//! [`Server::start`] spawns `cfg.n_shards` dispatcher threads, each
//! owning one engine; a submitted request routes to shard
//! `w_key % n_shards`, so requests for the *same* screening always land
//! on the same shard (coalescing and the PR 8 hit/coalesce invariants
//! hold per shard by construction) while distinct screenings build
//! concurrently. All shards clone one [`ArtifactStore`] handle, sharing
//! the pin/interest bookkeeping that keeps store GC safe across shards.
//!
//! Clients get a [`Ticket`] per submitted request and block on
//! [`Ticket::wait`]. Preemption falls out of the split: the engine's
//! `peek` hook reads its own shard's highest waiting priority, so a
//! high-priority submission arriving mid-batch preempts that shard's
//! running batch at the next band-row boundary.
//!
//! A panicking engine must never strand a waiter: each step runs under
//! `catch_unwind`, and on a panic the shard marks itself dead, fails
//! every outstanding ticket with [`ServeError::DispatcherDown`], and
//! fails subsequent submissions fast. Every lock here recovers from
//! poisoning, so a waiter blocked in [`Ticket::wait`] always wakes.

use crate::core::{RequestId, ServeConfig, ServeCore, ServeError, ServeOk};
use crate::request::GwRequest;
use crate::store::ArtifactStore;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Locks recovering from poisoning: a dispatcher that panicked while
/// holding a lock must not strand other threads — the guarded state
/// stays consistent because every critical section here is a plain
/// field read/write or a `Vec` take.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Default)]
struct Injector {
    waiting: Vec<(GwRequest, Arc<AtomicBool>, Arc<Cell>)>,
    shutdown: bool,
    /// Set when the shard's dispatcher died; submissions fail fast.
    dead: bool,
}

#[derive(Default)]
struct Cell {
    slot: Mutex<Option<Result<ServeOk, ServeError>>>,
    ready: Condvar,
}

struct Shared {
    injector: Mutex<Injector>,
    wake: Condvar,
}

/// A handle to one submitted request.
pub struct Ticket {
    cell: Arc<Cell>,
    cancel: Arc<AtomicBool>,
}

impl Ticket {
    /// Blocks until the request retires; returns its result. Poison-safe:
    /// a dispatcher panic fulfills the ticket with
    /// [`ServeError::DispatcherDown`] rather than leaving the waiter
    /// blocked on the condvar.
    pub fn wait(self) -> Result<ServeOk, ServeError> {
        let mut slot = self
            .cell
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self
                .cell
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Requests cancellation; the owning shard retires the request with
    /// [`ServeError::Cancelled`] at the next row boundary (or instantly
    /// if still queued). `wait` afterwards returns that error.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Release);
    }
}

struct Shard {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<ServeCore>>,
}

/// The resident GW daemon. See the module docs for the thread layout.
pub struct Server {
    shards: Vec<Shard>,
}

impl Server {
    /// Starts `cfg.n_shards` dispatchers (min 1) over one shared store.
    pub fn start(cfg: ServeConfig) -> Self {
        let n = cfg.n_shards.max(1);
        let store = ArtifactStore::new(cfg.store_dir.clone());
        let shards = (0..n)
            .map(|_| {
                let shared = Arc::new(Shared {
                    injector: Mutex::new(Injector::default()),
                    wake: Condvar::new(),
                });
                let dispatcher = {
                    let shared = shared.clone();
                    let cfg = cfg.clone();
                    let store = store.clone();
                    std::thread::spawn(move || dispatch_loop(cfg, store, shared))
                };
                Shard {
                    shared,
                    dispatcher: Some(dispatcher),
                }
            })
            .collect();
        Server { shards }
    }

    /// Dispatcher shards running.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Submits a request to its owning shard (`w_key % n_shards`); the
    /// ticket resolves when it retires. Rejected submissions (bounded
    /// queue full, dead shard) fail fast on the ticket.
    pub fn submit(&self, req: GwRequest) -> Ticket {
        let shard = &self.shards[req.shard_of(self.shards.len())];
        let cancel = Arc::new(AtomicBool::new(false));
        let cell = Arc::new(Cell::default());
        let accepted = {
            let mut inj = relock(&shard.shared.injector);
            if inj.dead {
                false
            } else {
                inj.waiting.push((req, cancel.clone(), cell.clone()));
                true
            }
        };
        if accepted {
            shard.shared.wake.notify_all();
        } else {
            fulfill(&cell, Err(ServeError::DispatcherDown));
        }
        Ticket { cell, cancel }
    }

    /// Stops every dispatcher after it drains in-flight work and returns
    /// the engines in shard order (so callers can inspect event logs and
    /// the shared store).
    pub fn shutdown(mut self) -> Vec<ServeCore> {
        for shard in &self.shards {
            relock(&shard.shared.injector).shutdown = true;
            shard.shared.wake.notify_all();
        }
        let mut cores = Vec::with_capacity(self.shards.len());
        for shard in &mut self.shards {
            if let Some(h) = shard.dispatcher.take() {
                if let Ok(core) = h.join() {
                    cores.push(core);
                }
            }
        }
        cores
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        for shard in &self.shards {
            relock(&shard.shared.injector).shutdown = true;
            shard.shared.wake.notify_all();
        }
        for shard in &mut self.shards {
            if let Some(h) = shard.dispatcher.take() {
                let _ = h.join();
            }
        }
    }
}

fn dispatch_loop(cfg: ServeConfig, store: ArtifactStore, shared: Arc<Shared>) -> ServeCore {
    let mut core = ServeCore::with_store(cfg, store);
    let mut tickets: HashMap<RequestId, Arc<Cell>> = HashMap::new();
    loop {
        // Admit waiting submissions into the bounded engine queue.
        let (drained, shutdown) = {
            let mut inj = relock(&shared.injector);
            (std::mem::take(&mut inj.waiting), inj.shutdown)
        };
        for (req, cancel, cell) in drained {
            match core.enqueue_with_cancel(req, cancel) {
                Ok(id) => {
                    tickets.insert(id, cell);
                }
                Err(e) => fulfill(&cell, Err(e)),
            }
        }

        // One batch, preemptible by higher-priority arrivals on this
        // shard, caught so an engine panic degrades to failed tickets
        // instead of a poisoned injector with waiters blocked forever.
        let shared_peek = shared.clone();
        let step = catch_unwind(AssertUnwindSafe(|| {
            core.step_with(&mut || {
                let inj = relock(&shared_peek.injector);
                inj.waiting.iter().map(|(r, _, _)| r.priority).max()
            })
        }));
        let progressed = match step {
            Ok(p) => p,
            Err(_) => {
                // Mark the shard dead first so racing submits fail fast,
                // then fail everything outstanding: tickets already in
                // the engine AND submissions still waiting in the
                // injector. No waiter is left behind.
                let late = {
                    let mut inj = relock(&shared.injector);
                    inj.dead = true;
                    std::mem::take(&mut inj.waiting)
                };
                for (_, _, cell) in late {
                    fulfill(&cell, Err(ServeError::DispatcherDown));
                }
                for (_, cell) in tickets.drain() {
                    fulfill(&cell, Err(ServeError::DispatcherDown));
                }
                return core;
            }
        };
        for (id, result) in core.take_responses() {
            if let Some(cell) = tickets.remove(&id) {
                fulfill(&cell, result);
            }
        }

        if !progressed {
            let inj = relock(&shared.injector);
            if !inj.waiting.is_empty() {
                continue;
            }
            if shutdown {
                drop(inj);
                return core;
            }
            // Idle: sleep until a submission or shutdown arrives.
            let _unused = shared
                .wake
                .wait_timeout(inj, std::time::Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

fn fulfill(cell: &Cell, result: Result<ServeOk, ServeError>) {
    *cell.slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
    cell.ready.notify_all();
}
