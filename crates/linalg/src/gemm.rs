//! ZGEMM: complex double-precision general matrix multiply.
//!
//! The paper's off-diagonal GPP kernel (Sec. 5.6) recasts the self-energy
//! contraction into two dense ZGEMM calls per `(n, E)` pair and leans on
//! vendor libraries (rocBLAS + Tensile on Frontier, oneMKL on Aurora,
//! cuBLAS on Perlmutter). This module is that substrate: a correct
//! reference implementation and a BLIS-style five-loop blocked kernel
//! (`jc -> pc -> ic` cache loops around a `jr/ir` register microkernel)
//! whose inner kernel and tile parameters stand in for the Tensile
//! size-specific autotuning the paper evaluates (Sec. 7.3).
//!
//! Layout choices, in the order they matter:
//! * operands are packed once per cache block into **split re/im planes**
//!   so the microkernel runs pure `f64` FMA chains with no shuffles;
//! * the register microkernel is **runtime-dispatched** per ISA
//!   (scalar / NEON / AVX2+FMA / AVX-512F, see [`crate::microkernel`]);
//!   packing is parameterized on the selected kernel's `(mr, nr)` so the
//!   panel geometry always matches the register tile;
//! * the `B` strip for a `(jc, pc)` block is packed **once** and shared by
//!   every row panel (and every pool worker) that consumes it;
//! * the microkernel holds an `mr x nr` complex tile of `C` in registers
//!   across the whole `kc` depth, so `C` traffic is one read-modify-write
//!   per cache block instead of one per `k` step;
//! * row panels of `C` are independent and are scheduled on the `bgw-par`
//!   worker pool.
//!
//! Packing time versus microkernel time is recorded in the global
//! [`bgw_perf::counters`] — both the legacy process totals and the
//! per-ISA lanes — so benchmarks can attribute wins and see when a wider
//! microkernel shifts time into packing.

use crate::matrix::CMatrix;
use crate::microkernel::{self, MicroKernel, Selection, TileSource, MAX_MR, MAX_NR};
use bgw_num::simd::Isa;
use bgw_num::Complex64;
use bgw_par::SendPtr;
use std::time::Instant;

/// How an operand enters the product.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Use the matrix as stored.
    None,
    /// Use the plain transpose.
    Trans,
    /// Use the conjugate transpose.
    Adj,
}

impl Op {
    /// Shape of `op(A)` given the stored shape of `A`.
    pub fn shape(self, (r, c): (usize, usize)) -> (usize, usize) {
        match self {
            Op::None => (r, c),
            Op::Trans | Op::Adj => (c, r),
        }
    }
}

/// Backend selection for [`zgemm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmBackend {
    /// Triple loop with on-the-fly operand indexing; the correctness oracle.
    Naive,
    /// Cache-blocked single-thread kernel with packed operands and the
    /// runtime-dispatched microkernel at default tiles (stable baseline —
    /// never consults the autotune table).
    Blocked,
    /// Cache-blocked kernel with row-panel parallelism on the worker pool
    /// (stable baseline — never consults the autotune table).
    Parallel,
    /// Blocked kernel with caller-supplied tile sizes (the "Tensile"
    /// knob). Pass [`TileParams::AUTO`] to resolve tiles from the
    /// persisted per-host autotune table instead (explicit tiles >
    /// persisted table > defaults).
    Tuned(TileParams),
}

/// Cache-tile sizes for the blocked kernels: `C` is processed in `mc x nc`
/// panels accumulating over `kc`-deep strips. All three loops are honored
/// (`nc` bounds the shared packed `B` strip); `mc`/`nc` are rounded up to
/// multiples of the selected microkernel's `mr`/`nr`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileParams {
    /// Rows of the `C` panel held hot.
    pub mc: usize,
    /// Depth of the accumulation strip.
    pub kc: usize,
    /// Columns of the `C` panel.
    pub nc: usize,
}

impl TileParams {
    /// Sentinel for [`GemmBackend::Tuned`]: resolve tiles (and kernel
    /// shape) from the persisted per-host autotune table, falling back to
    /// defaults when no table entry matches.
    pub const AUTO: TileParams = TileParams {
        mc: 0,
        kc: 0,
        nc: 0,
    };

    /// `true` when this is the [`TileParams::AUTO`] sentinel.
    pub fn is_auto(self) -> bool {
        self == TileParams::AUTO
    }
}

impl Default for TileParams {
    fn default() -> Self {
        // A-panel (mc x kc split planes) ~128 KiB for L2 residency; the
        // shared B strip (kc x nc) ~512 KiB lives in last-level cache.
        Self {
            mc: 64,
            kc: 128,
            nc: 256,
        }
    }
}

/// Computes `C = alpha * op(A) * op(B) + beta * C`.
///
/// Shapes must satisfy `op(A): m x k`, `op(B): k x n`, `C: m x n`.
#[allow(clippy::too_many_arguments)] // BLAS zgemm signature
pub fn zgemm(
    alpha: Complex64,
    a: &CMatrix,
    opa: Op,
    b: &CMatrix,
    opb: Op,
    beta: Complex64,
    c: &mut CMatrix,
    backend: GemmBackend,
) {
    let (m, k) = opa.shape(a.shape());
    let (kb, n) = opb.shape(b.shape());
    assert_eq!(k, kb, "inner dimensions disagree: {k} vs {kb}");
    assert_eq!(c.shape(), (m, n), "output shape mismatch");
    match backend {
        GemmBackend::Naive => zgemm_naive(alpha, a, opa, b, opb, beta, c),
        GemmBackend::Blocked => {
            let sel = microkernel::select(m, k, n, None, false);
            zgemm_blocked(alpha, a, opa, b, opb, beta, c, &sel, false)
        }
        GemmBackend::Parallel => {
            let sel = microkernel::select(m, k, n, None, false);
            zgemm_blocked(alpha, a, opa, b, opb, beta, c, &sel, true)
        }
        GemmBackend::Tuned(tiles) => {
            let explicit = (!tiles.is_auto()).then_some(tiles);
            let sel = microkernel::select(m, k, n, explicit, true);
            zgemm_blocked(alpha, a, opa, b, opb, beta, c, &sel, true)
        }
    }
}

/// Blocked ZGEMM with an explicit microkernel and tiles, bypassing both
/// runtime ISA dispatch and the autotune table. This is the hook the
/// autotune sweep and the per-variant parity tests drive: it touches no
/// global dispatch state, so concurrent callers can exercise different
/// kernels.
///
/// The kernel must come from the registry ([`microkernel::kernels_for`]
/// or [`microkernel::host_kernels`]), which only hands out
/// host-executable variants.
#[allow(clippy::too_many_arguments)]
pub fn zgemm_with_microkernel(
    alpha: Complex64,
    a: &CMatrix,
    opa: Op,
    b: &CMatrix,
    opb: Op,
    beta: Complex64,
    c: &mut CMatrix,
    kernel: &'static MicroKernel,
    tiles: TileParams,
    parallel: bool,
) {
    let (m, k) = opa.shape(a.shape());
    let (kb, n) = opb.shape(b.shape());
    assert_eq!(k, kb, "inner dimensions disagree: {k} vs {kb}");
    assert_eq!(c.shape(), (m, n), "output shape mismatch");
    let sel = Selection {
        kernel,
        tiles,
        tiles_from: TileSource::Explicit,
    };
    zgemm_blocked(alpha, a, opa, b, opb, beta, c, &sel, parallel)
}

/// Convenience product `op(A) * op(B)` with a fresh output matrix.
pub fn matmul(a: &CMatrix, opa: Op, b: &CMatrix, opb: Op, backend: GemmBackend) -> CMatrix {
    let (m, _) = opa.shape(a.shape());
    let (_, n) = opb.shape(b.shape());
    let mut c = CMatrix::zeros(m, n);
    zgemm(
        Complex64::ONE,
        a,
        opa,
        b,
        opb,
        Complex64::ZERO,
        &mut c,
        backend,
    );
    c
}

/// FLOP count of one `m x k x n` complex GEMM using the standard `8 m k n`
/// convention the paper applies in Eq. 8.
pub fn zgemm_flops(m: usize, k: usize, n: usize) -> u64 {
    8 * m as u64 * k as u64 * n as u64
}

/// Conjugated dot product `sum_i conj(a_i) b_i`.
///
/// The row-wise contraction that closes ZGEMM-recast bilinear forms
/// (`x^dagger B x = conj_dot(x, B x)`): after a batched `Y = X op(B)`,
/// each form is one contiguous-row dot. Accumulates with
/// [`Complex64::conj_mul_add`]; cost is 8 FLOPs per element.
pub fn conj_dot(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    assert_eq!(a.len(), b.len(), "conj_dot length mismatch");
    let mut acc = Complex64::ZERO;
    for (&x, &y) in a.iter().zip(b) {
        acc = acc.conj_mul_add(x, y);
    }
    acc
}

#[inline(always)]
fn fetch(a: &CMatrix, op: Op, i: usize, j: usize) -> Complex64 {
    match op {
        Op::None => a[(i, j)],
        Op::Trans => a[(j, i)],
        Op::Adj => a[(j, i)].conj(),
    }
}

fn zgemm_naive(
    alpha: Complex64,
    a: &CMatrix,
    opa: Op,
    b: &CMatrix,
    opb: Op,
    beta: Complex64,
    c: &mut CMatrix,
) {
    let (m, k) = opa.shape(a.shape());
    let n = c.ncols();
    for i in 0..m {
        for j in 0..n {
            let mut acc = Complex64::ZERO;
            for p in 0..k {
                acc += fetch(a, opa, i, p) * fetch(b, opb, p, j);
            }
            let old = c[(i, j)];
            c[(i, j)] = alpha * acc + beta * old;
        }
    }
}

/// Packs `alpha * op(A)` rows `i0..i1`, depth `p0..p1` into split re/im
/// planes of `mr`-row micro-panels: element `(i0 + s*mr + r, p0 + p)` lands
/// at index `s*kk*mr + p*mr + r`. Rows past `i1` are zero-padded so the
/// microkernel never branches on the row edge. `mr` is the register-tile
/// height of the dispatched microkernel.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    a: &CMatrix,
    opa: Op,
    alpha: Complex64,
    i0: usize,
    i1: usize,
    p0: usize,
    p1: usize,
    mr: usize,
) -> (Vec<f64>, Vec<f64>) {
    let mm = i1 - i0;
    let kk = p1 - p0;
    let strips = mm.div_ceil(mr);
    let mut re = vec![0.0; strips * kk * mr];
    let mut im = vec![0.0; strips * kk * mr];
    for s in 0..strips {
        let base = s * kk * mr;
        let rows = (mm - s * mr).min(mr);
        for p in 0..kk {
            let at = base + p * mr;
            for r in 0..rows {
                let v = alpha * fetch(a, opa, i0 + s * mr + r, p0 + p);
                re[at + r] = v.re;
                im[at + r] = v.im;
            }
        }
    }
    (re, im)
}

/// Packs `op(B)` depth `p0..p1`, cols `j0..j1` into split re/im planes of
/// `nr`-column micro-panels: element `(p0 + p, j0 + s*nr + q)` lands at
/// index `s*kk*nr + p*nr + q`, zero-padded past the column edge. `nr` is
/// the register-tile width of the dispatched microkernel.
fn pack_b(
    b: &CMatrix,
    opb: Op,
    p0: usize,
    p1: usize,
    j0: usize,
    j1: usize,
    nr: usize,
) -> (Vec<f64>, Vec<f64>) {
    let nn = j1 - j0;
    let kk = p1 - p0;
    let strips = nn.div_ceil(nr);
    let mut re = vec![0.0; strips * kk * nr];
    let mut im = vec![0.0; strips * kk * nr];
    for s in 0..strips {
        let base = s * kk * nr;
        let cols = (nn - s * nr).min(nr);
        for p in 0..kk {
            let at = base + p * nr;
            for q in 0..cols {
                let v = fetch(b, opb, p0 + p, j0 + s * nr + q);
                re[at + q] = v.re;
                im[at + q] = v.im;
            }
        }
    }
    (re, im)
}

/// Tags the enclosing `gemm` span with the dispatched microkernel's ISA
/// (one static site per variant so the run report separates them).
fn kernel_span(isa: Isa) -> bgw_trace::Span {
    static SCALAR: bgw_trace::SpanSite = bgw_trace::SpanSite::new("gemm.kernel.scalar");
    static NEON: bgw_trace::SpanSite = bgw_trace::SpanSite::new("gemm.kernel.neon");
    static AVX2: bgw_trace::SpanSite = bgw_trace::SpanSite::new("gemm.kernel.avx2");
    static AVX512: bgw_trace::SpanSite = bgw_trace::SpanSite::new("gemm.kernel.avx512");
    bgw_trace::enter(match isa {
        Isa::Scalar => &SCALAR,
        Isa::Neon => &NEON,
        Isa::Avx2 => &AVX2,
        Isa::Avx512 => &AVX512,
    })
}

#[allow(clippy::too_many_arguments)]
fn zgemm_blocked(
    alpha: Complex64,
    a: &CMatrix,
    opa: Op,
    b: &CMatrix,
    opb: Op,
    beta: Complex64,
    c: &mut CMatrix,
    sel: &Selection,
    parallel: bool,
) {
    bgw_perf::counters::record_gemm_call();
    let kernel = sel.kernel;
    let (mr, nr) = (kernel.mr, kernel.nr);
    let lane = kernel.isa.index();
    bgw_perf::counters::record_gemm_mk_call(lane);
    let _span = bgw_trace::span!("gemm");
    let _kernel_span = kernel_span(kernel.isa);
    let (m, k) = opa.shape(a.shape());
    let n = c.ncols();
    // 4 real multiplies + 4 adds per complex multiply-accumulate.
    bgw_trace::add_flops(8 * (m as u64) * (n as u64) * (k as u64));
    // beta-scale once up front.
    if beta != Complex64::ONE {
        if beta == Complex64::ZERO {
            c.as_mut_slice().fill(Complex64::ZERO);
        } else {
            c.scale_inplace(beta);
        }
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    debug_assert!(
        mr <= MAX_MR && nr <= MAX_NR,
        "kernel tile exceeds stack buffers"
    );
    let mc = sel.tiles.mc.max(1).div_ceil(mr) * mr;
    let kc = sel.tiles.kc.max(1);
    let nc = sel.tiles.nc.max(1).div_ceil(nr) * nr;
    let ldc = n;
    let cptr = SendPtr::new(c.as_mut_slice().as_mut_ptr());

    // 5-loop blocking: jc over C columns (bounds the shared B strip),
    // pc over depth, ic over C row panels (parallel), then jr/ir register
    // tiles inside `row_panel`.
    for jc0 in (0..n).step_by(nc) {
        let jc1 = (jc0 + nc).min(n);
        for pc0 in (0..k).step_by(kc) {
            let pc1 = (pc0 + kc).min(k);
            let kk = pc1 - pc0;
            let (bre, bim) = {
                let _pack_span = bgw_trace::span!("gemm.pack");
                let t_pack = Instant::now();
                let packed = pack_b(b, opb, pc0, pc1, jc0, jc1, nr);
                let ns = t_pack.elapsed().as_nanos() as u64;
                bgw_perf::counters::record_gemm_pack_ns(ns);
                bgw_perf::counters::record_gemm_mk_pack_ns(lane, ns);
                packed
            };

            let row_panel = |i0: usize, i1: usize| {
                let (are, aim) = {
                    let _pack_span = bgw_trace::span!("gemm.pack");
                    let t_a = Instant::now();
                    let packed = pack_a(a, opa, alpha, i0, i1, pc0, pc1, mr);
                    let ns = t_a.elapsed().as_nanos() as u64;
                    bgw_perf::counters::record_gemm_pack_ns(ns);
                    bgw_perf::counters::record_gemm_mk_pack_ns(lane, ns);
                    packed
                };
                let _compute_span = bgw_trace::span!("gemm.compute");
                let t_c = Instant::now();
                let mm = i1 - i0;
                for (sj, (bre_s, bim_s)) in bre
                    .chunks_exact(kk * nr)
                    .zip(bim.chunks_exact(kk * nr))
                    .enumerate()
                {
                    let j = jc0 + sj * nr;
                    let cols = (jc1 - j).min(nr);
                    for (si, (are_s, aim_s)) in are
                        .chunks_exact(kk * mr)
                        .zip(aim.chunks_exact(kk * mr))
                        .enumerate()
                    {
                        let i = i0 + si * mr;
                        let rows = (mm - si * mr).min(mr);
                        let mut cre = [0.0f64; MAX_MR * MAX_NR];
                        let mut cim = [0.0f64; MAX_MR * MAX_NR];
                        // SAFETY: packed panels hold exactly kk*mr / kk*nr
                        // elements per strip (zero-padded at edges) and the
                        // stack tiles hold MAX_MR*MAX_NR >= mr*nr, meeting
                        // the kernel's layout contract; the registry only
                        // hands out host-executable kernels.
                        unsafe {
                            kernel.run_raw(
                                kk,
                                are_s.as_ptr(),
                                aim_s.as_ptr(),
                                bre_s.as_ptr(),
                                bim_s.as_ptr(),
                                cre.as_mut_ptr(),
                                cim.as_mut_ptr(),
                            );
                        }
                        for ii in 0..rows {
                            // SAFETY: row panels [i0, i1) are disjoint
                            // across pool workers and jr strips are visited
                            // serially within a panel, so every C element
                            // has exactly one writer at a time.
                            let row = unsafe { cptr.get().add((i + ii) * ldc + j) };
                            for jj in 0..cols {
                                unsafe {
                                    let e = &mut *row.add(jj);
                                    e.re += cre[ii * nr + jj];
                                    e.im += cim[ii * nr + jj];
                                }
                            }
                        }
                    }
                }
                let ns = t_c.elapsed().as_nanos() as u64;
                bgw_perf::counters::record_gemm_compute_ns(ns);
                bgw_perf::counters::record_gemm_mk_compute_ns(lane, ns);
            };

            let panels = m.div_ceil(mc);
            if parallel && panels > 1 && bgw_par::num_threads() > 1 {
                bgw_par::parallel_for_chunked(panels, 1, |lo, hi| {
                    for pi in lo..hi {
                        let i0 = pi * mc;
                        row_panel(i0, (i0 + mc).min(m));
                    }
                });
            } else {
                for pi in 0..panels {
                    let i0 = pi * mc;
                    row_panel(i0, (i0 + mc).min(m));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgw_num::{c64, Xoshiro256StarStar};

    fn backends() -> Vec<GemmBackend> {
        vec![
            GemmBackend::Naive,
            GemmBackend::Blocked,
            GemmBackend::Parallel,
            GemmBackend::Tuned(TileParams {
                mc: 3,
                kc: 5,
                nc: 7,
            }),
        ]
    }

    #[test]
    fn op_shapes() {
        assert_eq!(Op::None.shape((2, 3)), (2, 3));
        assert_eq!(Op::Trans.shape((2, 3)), (3, 2));
        assert_eq!(Op::Adj.shape((2, 3)), (3, 2));
    }

    #[test]
    fn conj_dot_matches_scalar_bilinear_form() {
        let x: Vec<Complex64> = (0..9)
            .map(|i| c64(0.3 * i as f64, 1.0 - 0.2 * i as f64))
            .collect();
        let y: Vec<Complex64> = (0..9)
            .map(|i| c64(-0.1 * i as f64, 0.05 * i as f64))
            .collect();
        let direct: Complex64 = x
            .iter()
            .zip(&y)
            .fold(Complex64::ZERO, |acc, (&a, &b)| acc + a.conj() * b);
        assert!((conj_dot(&x, &y) - direct).abs() < 1e-13);
        // x^dagger B x through a GEMM row equals conj_dot(x, (B x^T-row)).
        let b = CMatrix::random_hermitian(9, 7);
        let xm = CMatrix::from_fn(1, 9, |_, j| x[j]);
        let z = matmul(&xm, Op::None, &b, Op::Trans, GemmBackend::Blocked);
        let form = conj_dot(&x, z.row(0));
        let mut scalar = Complex64::ZERO;
        for i in 0..9 {
            for j in 0..9 {
                scalar += x[i].conj() * b[(i, j)] * x[j];
            }
        }
        assert!((form - scalar).abs() < 1e-12);
        assert!(form.im.abs() < 1e-12, "Hermitian form must be real");
    }

    #[test]
    fn all_backends_agree_with_naive() {
        let a = CMatrix::random(7, 5, 1);
        let b = CMatrix::random(5, 9, 2);
        let reference = matmul(&a, Op::None, &b, Op::None, GemmBackend::Naive);
        for be in backends() {
            let c = matmul(&a, Op::None, &b, Op::None, be);
            assert!(
                c.max_abs_diff(&reference) < 1e-12,
                "backend {be:?} disagrees"
            );
        }
    }

    #[test]
    fn transpose_and_adjoint_ops() {
        let a = CMatrix::random(6, 4, 3);
        let b = CMatrix::random(6, 5, 4);
        // A^T B : (4x6)(6x5)
        let expect_t = matmul(&a.transpose(), Op::None, &b, Op::None, GemmBackend::Naive);
        let expect_h = matmul(&a.adjoint(), Op::None, &b, Op::None, GemmBackend::Naive);
        for be in backends() {
            let ct = matmul(&a, Op::Trans, &b, Op::None, be);
            let ch = matmul(&a, Op::Adj, &b, Op::None, be);
            assert!(ct.max_abs_diff(&expect_t) < 1e-12, "{be:?} trans");
            assert!(ch.max_abs_diff(&expect_h) < 1e-12, "{be:?} adj");
        }
        // B with ops on the right side too: A * B^H : (6x4)->need B: 5x4
        let b2 = CMatrix::random(5, 4, 5);
        let expect = matmul(&a, Op::None, &b2.adjoint(), Op::None, GemmBackend::Naive);
        for be in backends() {
            let c = matmul(&a, Op::None, &b2, Op::Adj, be);
            assert!(c.max_abs_diff(&expect) < 1e-12, "{be:?} right adj");
        }
    }

    #[test]
    fn alpha_beta_accumulation() {
        let a = CMatrix::random(4, 4, 6);
        let b = CMatrix::random(4, 4, 7);
        let c0 = CMatrix::random(4, 4, 8);
        let alpha = c64(0.5, -1.0);
        let beta = c64(2.0, 0.25);
        let mut expect = c0.clone();
        zgemm(
            alpha,
            &a,
            Op::None,
            &b,
            Op::None,
            beta,
            &mut expect,
            GemmBackend::Naive,
        );
        for be in backends().into_iter().skip(1) {
            let mut c = c0.clone();
            zgemm(alpha, &a, Op::None, &b, Op::None, beta, &mut c, be);
            assert!(c.max_abs_diff(&expect) < 1e-12, "{be:?}");
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = CMatrix::random(5, 5, 9);
        let i5 = CMatrix::identity(5);
        for be in backends() {
            let c = matmul(&a, Op::None, &i5, Op::None, be);
            assert!(c.max_abs_diff(&a) < 1e-13, "{be:?}");
            let c = matmul(&i5, Op::None, &a, Op::None, be);
            assert!(c.max_abs_diff(&a) < 1e-13, "{be:?}");
        }
    }

    #[test]
    fn associativity_within_tolerance() {
        let a = CMatrix::random(4, 6, 10);
        let b = CMatrix::random(6, 3, 11);
        let c = CMatrix::random(3, 5, 12);
        let ab_c = matmul(
            &matmul(&a, Op::None, &b, Op::None, GemmBackend::Parallel),
            Op::None,
            &c,
            Op::None,
            GemmBackend::Parallel,
        );
        let a_bc = matmul(
            &a,
            Op::None,
            &matmul(&b, Op::None, &c, Op::None, GemmBackend::Parallel),
            Op::None,
            GemmBackend::Parallel,
        );
        assert!(ab_c.max_abs_diff(&a_bc) < 1e-12);
    }

    #[test]
    fn degenerate_dimensions() {
        let a = CMatrix::zeros(0, 3);
        let b = CMatrix::zeros(3, 4);
        let c = matmul(&a, Op::None, &b, Op::None, GemmBackend::Blocked);
        assert_eq!(c.shape(), (0, 4));
        // k = 0: C = beta*C only
        let a = CMatrix::zeros(2, 0);
        let b = CMatrix::zeros(0, 2);
        let mut c = CMatrix::identity(2);
        zgemm(
            Complex64::ONE,
            &a,
            Op::None,
            &b,
            Op::None,
            c64(3.0, 0.0),
            &mut c,
            GemmBackend::Blocked,
        );
        assert_eq!(c[(0, 0)], c64(3.0, 0.0));
    }

    #[test]
    fn flop_count_convention() {
        assert_eq!(zgemm_flops(2, 3, 4), 8 * 24);
        assert_eq!(zgemm_flops(0, 3, 4), 0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn dimension_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(4, 2);
        let _ = matmul(&a, Op::None, &b, Op::None, GemmBackend::Naive);
    }

    #[test]
    fn large_blocked_matches_naive() {
        let a = CMatrix::random(150, 70, 21);
        let b = CMatrix::random(70, 90, 22);
        let r = matmul(&a, Op::None, &b, Op::None, GemmBackend::Naive);
        let c = matmul(&a, Op::None, &b, Op::None, GemmBackend::Parallel);
        // errors scale with k; keep a sane bound
        assert!(c.max_abs_diff(&r) < 1e-10);
    }

    /// Randomized shape sweep: tall/skinny, degenerate vectors, and shapes
    /// straddling every tile boundary, crossed with all Op combinations and
    /// all backends against the Naive oracle.
    #[test]
    fn randomized_shape_sweep_all_ops_all_backends() {
        bgw_par::set_num_threads(3);
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xC0FFEE);
        // Dimensions chosen to straddle common mr/nr (4..16), the Tuned
        // test tile (3/5/7), and default mc/kc boundaries.
        let dims = [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 63, 64, 65, 130];
        let ops = [Op::None, Op::Trans, Op::Adj];
        let mut seed = 1000u64;
        for case in 0..40 {
            let m = dims[rng.next_below(dims.len())];
            let k = dims[rng.next_below(dims.len())];
            let n = dims[rng.next_below(dims.len())];
            let opa = ops[rng.next_below(3)];
            let opb = ops[rng.next_below(3)];
            let a_shape = match opa {
                Op::None => (m, k),
                _ => (k, m),
            };
            let b_shape = match opb {
                Op::None => (k, n),
                _ => (n, k),
            };
            seed += 3;
            let a = CMatrix::random(a_shape.0, a_shape.1, seed);
            let b = CMatrix::random(b_shape.0, b_shape.1, seed + 1);
            let c0 = CMatrix::random(m, n, seed + 2);
            let alpha = c64(rng.next_f64() - 0.5, rng.next_f64() - 0.5);
            let beta = match case % 3 {
                0 => Complex64::ZERO,
                1 => Complex64::ONE,
                _ => c64(rng.next_f64() - 0.5, rng.next_f64()),
            };
            let mut expect = c0.clone();
            zgemm(
                alpha,
                &a,
                opa,
                &b,
                opb,
                beta,
                &mut expect,
                GemmBackend::Naive,
            );
            for be in [
                GemmBackend::Blocked,
                GemmBackend::Parallel,
                GemmBackend::Tuned(TileParams {
                    mc: 3,
                    kc: 5,
                    nc: 7,
                }),
                GemmBackend::Tuned(TileParams {
                    mc: 8,
                    kc: 16,
                    nc: 8,
                }),
            ] {
                let mut c = c0.clone();
                zgemm(alpha, &a, opa, &b, opb, beta, &mut c, be);
                assert!(
                    c.max_abs_diff(&expect) < 1e-10,
                    "case {case}: {m}x{k}x{n} {opa:?}/{opb:?} {be:?}"
                );
            }
        }
        bgw_par::set_num_threads(0);
    }

    /// Satellite 3 (ISSUE 6): every microkernel variant this host can
    /// execute must match the Naive oracle at 1e-12 across edge shapes
    /// built from its own register tile (1, mr-1, mr, mr+1, 129,
    /// non-dividing) and conjugated/transposed Op combinations. Drives
    /// `zgemm_with_microkernel` directly, so no global dispatch state is
    /// touched and all variants are covered even though runtime dispatch
    /// would only ever pick the best one.
    #[test]
    fn every_host_microkernel_matches_naive_on_edge_shapes() {
        let ops = [Op::None, Op::Trans, Op::Adj];
        let alpha = c64(0.7, -0.3);
        let beta = c64(0.2, 0.1);
        for kernel in microkernel::host_kernels() {
            let m_dims = [1, kernel.mr - 1, kernel.mr, kernel.mr + 1, 129];
            let n_dims = [1, kernel.nr - 1, kernel.nr, kernel.nr + 1, 37];
            let k_dims = [1, 37, 129];
            let mut seed = 0x51D_0000 + (kernel.mr * 64 + kernel.nr) as u64;
            let mut case = 0usize;
            for &m in &m_dims {
                for &n in &n_dims {
                    for &k in &k_dims {
                        // Rotate through Op combos instead of the full
                        // cross to bound runtime; every pair appears.
                        let opa = ops[case % 3];
                        let opb = ops[(case / 3) % 3];
                        case += 1;
                        seed += 7;
                        let a = match opa {
                            Op::None => CMatrix::random(m, k, seed),
                            _ => CMatrix::random(k, m, seed),
                        };
                        let b = match opb {
                            Op::None => CMatrix::random(k, n, seed + 1),
                            _ => CMatrix::random(n, k, seed + 1),
                        };
                        let c0 = CMatrix::random(m, n, seed + 2);
                        let mut expect = c0.clone();
                        zgemm(
                            alpha,
                            &a,
                            opa,
                            &b,
                            opb,
                            beta,
                            &mut expect,
                            GemmBackend::Naive,
                        );
                        let mut got = c0.clone();
                        zgemm_with_microkernel(
                            alpha,
                            &a,
                            opa,
                            &b,
                            opb,
                            beta,
                            &mut got,
                            kernel,
                            TileParams::default(),
                            false,
                        );
                        assert!(
                            got.max_abs_diff(&expect) <= 1e-12,
                            "{} {m}x{k}x{n} {opa:?}/{opb:?}: max diff {}",
                            kernel.label(),
                            got.max_abs_diff(&expect)
                        );
                    }
                }
            }
        }
    }

    /// Satellite 3 (ISSUE 6): forcing each host-supported ISA routes the
    /// dispatched backends through that ISA's kernel, observed via the
    /// per-ISA telemetry lanes (this is what makes `fmadd`'s silent
    /// compile-time degradation impossible to miss now).
    #[test]
    fn forced_dispatch_exercises_each_supported_isa() {
        use bgw_num::simd;
        let a = CMatrix::random(40, 24, 311);
        let b = CMatrix::random(24, 48, 312);
        let reference = matmul(&a, Op::None, &b, Op::None, GemmBackend::Naive);
        for isa in simd::supported() {
            assert!(simd::force(Some(isa)), "supported ISA must be forceable");
            let before = bgw_perf::counters::snapshot().gemm_mk_calls_by_isa()[isa.index()];
            let c = matmul(&a, Op::None, &b, Op::None, GemmBackend::Parallel);
            assert!(c.max_abs_diff(&reference) <= 1e-12, "{isa:?} parity");
            let after = bgw_perf::counters::snapshot().gemm_mk_calls_by_isa()[isa.index()];
            assert!(
                after > before,
                "{isa:?} lane must record the dispatched kernel"
            );
        }
        assert!(simd::force(None));
    }

    #[test]
    fn tuned_auto_resolves_without_panicking() {
        // With or without a persisted table, AUTO must produce a working
        // configuration (table > defaults).
        let a = CMatrix::random(33, 17, 411);
        let b = CMatrix::random(17, 29, 412);
        let expect = matmul(&a, Op::None, &b, Op::None, GemmBackend::Naive);
        let c = matmul(
            &a,
            Op::None,
            &b,
            Op::None,
            GemmBackend::Tuned(TileParams::AUTO),
        );
        assert!(c.max_abs_diff(&expect) <= 1e-12);
        assert!(TileParams::AUTO.is_auto());
        assert!(!TileParams::default().is_auto());
    }

    #[test]
    fn gemm_counters_advance() {
        let before = bgw_perf::counters::snapshot();
        let a = CMatrix::random(40, 40, 77);
        let b = CMatrix::random(40, 40, 78);
        let _ = matmul(&a, Op::None, &b, Op::None, GemmBackend::Blocked);
        let d = before.delta(&bgw_perf::counters::snapshot());
        assert!(d.gemm_calls >= 1);
        assert!(d.gemm_pack_ns > 0, "packing must be accounted");
        assert!(d.gemm_compute_ns > 0, "microkernel must be accounted");
        // The per-ISA lanes must account the same work to some lane.
        let mk_calls: u64 = d.gemm_mk_calls_by_isa().iter().sum();
        assert!(mk_calls >= 1, "dispatched kernel lane must advance");
    }
}
