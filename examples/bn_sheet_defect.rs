//! 2-D BN sheet with a carbon substitution next to a nitrogen vacancy —
//! the paper's BN867 single-photon-emitter motif (Sec. 6), at model scale,
//! with the slab-truncated Coulomb interaction a 2-D system needs.
//!
//! Run with: `cargo run --release --example bn_sheet_defect`

use berkeleygw_rs::core::{run_gpp_gw, GwConfig};
use berkeleygw_rs::num::RYDBERG_EV;
use berkeleygw_rs::pwdft::{bn_defect_sheet, solve_bands, Crystal, GSphere, Species};

fn main() {
    // pristine sheet reference
    let pristine = Crystal::hex_sheet(
        Species::B,
        Species::N,
        berkeleygw_rs::pwdft::pseudo::BN_A0,
        12.0,
    )
    .supercell([2, 2, 1]);
    let sph = GSphere::new(&pristine.lattice, 5.0);
    let wf_p = solve_bands(&pristine, &sph, pristine.n_valence_bands() + 8);
    println!(
        "pristine BN sheet ({} atoms): gap {:.3} eV",
        pristine.n_atoms(),
        wf_p.gap_ry() * RYDBERG_EV
    );

    // the defect motif: C at a B site adjacent to an N vacancy
    let mut sys = bn_defect_sheet(2, 12.0, 5.0);
    sys.n_bands = sys.n_valence() + 10;
    let d_sph = sys.wfn_sphere();
    let wf_d = solve_bands(&sys.crystal, &d_sph, sys.n_bands);
    println!(
        "defect sheet {} ({} atoms): gap {:.3} eV",
        sys.name,
        sys.crystal.n_atoms(),
        wf_d.gap_ry() * RYDBERG_EV
    );
    assert!(
        wf_d.gap_ry() < wf_p.gap_ry(),
        "the C_B + V_N defect must create in-gap emitter states"
    );

    // GW with the slab-truncated Coulomb (no spurious interlayer
    // screening through the vacuum).
    let cfg = GwConfig {
        slab: true,
        bands_around_gap: 2,
        ..Default::default()
    };
    let r = run_gpp_gw(&sys, &cfg);
    println!("\nGW on the defect sheet (slab-truncated Coulomb):");
    println!("band   E_MF (eV)    E_QP (eV)");
    for (band, st) in r.sigma_bands.iter().zip(&r.states) {
        println!(
            "{band:>4}   {:>9.3}   {:>10.3}",
            st.e_mf * RYDBERG_EV,
            st.e_qp * RYDBERG_EV
        );
    }
    println!(
        "\ndefect QP gap {:.3} eV (mean-field {:.3} eV) — the emitter-level\n\
         positions a single-photon-source designer needs (paper Sec. 6:\n\
         'defects in layered BN are useful as single-photon emitters').",
        r.gap_qp_ry * RYDBERG_EV,
        r.gap_mf_ry * RYDBERG_EV
    );
    assert!(r.gap_qp_ry > r.gap_mf_ry);
}
