//! Space-time chi0: the cubic-scaling polarizability in imaginary time.
//!
//! The dense CHI_SUM path (`crate::chi`) pays `O(N_v N_c N_G^2)` per
//! frequency — the quartic band double-sum. Following Liu et al. ("Cubic
//! scaling GW", arXiv:1607.02859) and Wilhelm et al. (arXiv:2104.09857),
//! this module instead builds the polarizability in *imaginary time* as a
//! real-space product of Green's functions,
//!
//! `chi0(r, r'; i tau) = -2 G_occ(r, r'; i tau) G_emp(r', r; i tau)`,
//!
//! where (with `mu` mid-gap and `e~ = e - mu`)
//!
//! `G_occ(r, r') = sum_v psi_v(r) psi_v^*(r') e^{ e~_v tau }`,
//! `G_emp(r', r) = sum_c psi_c^*(r) psi_c(r') e^{ -e~_c tau }`,
//!
//! and transforms back to the plane-wave basis with two staged batched
//! FFTs and to imaginary frequency with the fitted cosine weights of
//! [`bgw_num::minimax`]. Per tau node the cost is `O(N_b N_r^2)` (the
//! Green's-function GEMMs) plus `O(N_r log N_r)` FFTs — cubic in system
//! size, against the dense path's quartic sum. Each v,c pair contributes
//! `e^{-(e_c - e_v) tau}`, whose cosine image is exactly the dense
//! imaginary-axis denominator `2 de / (de^2 + u^2)` (see
//! [`crate::chi::delta_vc_imag`]), so the transformed chi agrees with the
//! dense oracle to the minimax fit residual — which is how the tests and
//! the `--spacetime` CI stage gate it.
//!
//! The `q -> 0` head and wings are not FFT-representable (they need the
//! k.p matrix elements), so row/column `G = 0` are rebuilt explicitly at
//! every tau from the same `head_kp` elements the dense path uses.

use crate::chi::{ChiConfig, ChiEngine, ChiTimings};
use crate::coulomb::Coulomb;
use crate::epsilon::{EpsilonError, EpsilonInverse};
use crate::mtxel::Mtxel;
use crate::sigma::imagaxis::{imag_axis_sigma_diag, SigmaImagAxisResult};
use crate::sigma::SigmaContext;
use bgw_fft::{Direction, Fft3d};
use bgw_linalg::{matmul, CMatrix, GemmBackend, Op};
use bgw_num::grid::semi_infinite_quadrature;
use bgw_num::minimax::{FitOptions, MinimaxGrid};
use bgw_num::PadeError;
use bgw_num::{c64, Complex64};
use bgw_pwdft::{GSphere, Wavefunctions};
use std::time::Instant;

/// Why a space-time chi0 build cannot proceed (or went numerically bad).
#[derive(Clone, Debug, PartialEq)]
pub enum SpaceTimeError {
    /// The system has no gap: `e^{-(e_c - e_v) tau}` does not decay, so
    /// no imaginary-time grid can represent the transitions. (The dense
    /// path handles metals; space-time GW needs a spectral gap.)
    Gapless {
        /// The (non-positive) HOMO-LUMO gap found, in Ry.
        gap: f64,
    },
    /// A non-finite value appeared in the per-tau polarizability.
    NonFinite {
        /// Which stage produced it.
        stage: &'static str,
        /// The imaginary-time node being processed.
        tau: f64,
    },
}

impl std::fmt::Display for SpaceTimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Gapless { gap } => write!(
                f,
                "space-time chi0 needs a gapped system (HOMO-LUMO gap = {gap:.3e} Ry <= 0)"
            ),
            Self::NonFinite { stage, tau } => {
                write!(
                    f,
                    "non-finite value in space-time {stage} at tau = {tau:.3e}"
                )
            }
        }
    }
}

impl std::error::Error for SpaceTimeError {}

/// Configuration for the space-time polarizability build.
#[derive(Clone, Debug)]
pub struct SpaceTimeConfig {
    /// Number of imaginary-time nodes (the minimax grid size). 10-16
    /// reaches fit residuals of 1e-5..1e-7 for typical gap ratios.
    pub n_tau: usize,
    /// Rows of `r` processed per Green's-function GEMM + FFT batch
    /// (bounds peak memory at `row_batch * N_r` amplitudes).
    pub row_batch: usize,
    /// GEMM backend for the Green's-function products.
    pub backend: GemmBackend,
    /// Momentum magnitude (bohr^-1) for the k.p head, as in
    /// [`ChiConfig::q0`]; use the Coulomb `q0`. `0` disables the head.
    pub q0: f64,
    /// Minimax fit options (tests shrink `optimize_passes` for speed).
    pub fit: FitOptions,
}

impl Default for SpaceTimeConfig {
    fn default() -> Self {
        Self {
            n_tau: 12,
            row_batch: 64,
            backend: GemmBackend::Parallel,
            q0: 0.2,
            fit: FitOptions::default(),
        }
    }
}

/// Which polarizability algorithm feeds the imaginary-axis pipeline.
#[derive(Clone, Debug)]
pub enum ChiBackend {
    /// The quartic dense band double-sum (`crate::chi`) — exact on the
    /// imaginary axis, the oracle the space-time path is validated
    /// against.
    Dense(ChiConfig),
    /// The cubic space-time path of this module (exact up to the minimax
    /// fit residual, reported per build).
    SpaceTime(SpaceTimeConfig),
}

/// Work/accuracy breakdown of one space-time chi0 build.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpaceTimeReport {
    /// Imaginary-time nodes used.
    pub n_tau: usize,
    /// Real-space grid points `N_r` of the FFT box.
    pub npts: usize,
    /// Output G-vectors `N_G`.
    pub n_g: usize,
    /// Sup-norm relative residual of the fitted tau -> omega cosine
    /// transform: the tolerance cross-validation should gate on.
    pub fit_residual: f64,
    /// Seconds in the Green's-function GEMMs.
    pub t_green: f64,
    /// Seconds in the staged FFTs (both passes plus gathers).
    pub t_fft: f64,
    /// Seconds in the time -> frequency accumulation.
    pub t_transform: f64,
}

/// The space-time polarizability engine.
///
/// Holds the real-space band amplitudes (both manifolds, FFT'd once), the
/// mid-gap-referenced energies, the k.p head elements, and its own FFT
/// plan with gather tables for both `+G` and `-G` (the two staged
/// transforms need opposite sign conventions).
pub struct SpaceTimeChi {
    plan: Fft3d,
    npts: usize,
    /// Box position of `-G` per output G (stage 1: transform over `r'`).
    gather_minus: Vec<usize>,
    /// Box position of `+G` per output G (stage 2: transform over `r`).
    gather_plus: Vec<usize>,
    /// Occupied amplitudes, `occ_mat[(v, r)] = psi_v(r)` (`N_v x N_r`).
    occ_mat: CMatrix,
    /// Empty amplitudes, `emp_mat[(c, r)] = psi_c(r)` (`N_c x N_r`).
    emp_mat: CMatrix,
    /// `e_v - mu` (negative), `mu` mid-gap.
    e_occ: Vec<f64>,
    /// `e_c - mu` (positive).
    e_emp: Vec<f64>,
    /// k.p head elements `h[(v, c)]` matching the dense panel's `G = 0`.
    h_vc: CMatrix,
    /// Smallest transition energy (the gap, Ry).
    pub e_min: f64,
    /// Largest transition energy (Ry).
    pub e_max: f64,
    cfg: SpaceTimeConfig,
}

impl SpaceTimeChi {
    /// Builds the engine: FFTs every band to real space once and
    /// prepares the gather tables. `mtxel` must have been built from the
    /// same `(wfn_sph, out_sph)` pair. Fails with
    /// [`SpaceTimeError::Gapless`] when the system has no spectral gap.
    pub fn new(
        wf: &Wavefunctions,
        mtxel: &Mtxel,
        wfn_sph: &GSphere,
        out_sph: &GSphere,
        cfg: SpaceTimeConfig,
    ) -> Result<Self, SpaceTimeError> {
        let nv = wf.n_valence;
        let nc = wf.n_conduction();
        assert!(nv > 0 && nc > 0, "need both occupied and empty bands");
        let ev_max = wf.energies[..nv].iter().cloned().fold(f64::MIN, f64::max);
        let ec_min = wf.energies[nv..].iter().cloned().fold(f64::MAX, f64::min);
        let gap = ec_min - ev_max;
        if gap <= 1e-12 {
            return Err(SpaceTimeError::Gapless { gap });
        }
        let mu = 0.5 * (ev_max + ec_min);
        let e_occ: Vec<f64> = wf.energies[..nv].iter().map(|e| e - mu).collect();
        let e_emp: Vec<f64> = wf.energies[nv..].iter().map(|e| e - mu).collect();
        let ev_min = wf.energies[..nv].iter().cloned().fold(f64::MAX, f64::min);
        let ec_max = wf.energies[nv..].iter().cloned().fold(f64::MIN, f64::max);

        // Same alias-free box rule as Mtxel: the pair densities the staged
        // transforms resolve have support `2 m_psi`, read out to `m_out`.
        let max_m = |sph: &GSphere, axis: usize| {
            sph.miller
                .iter()
                .map(|m| m[axis].unsigned_abs() as usize)
                .max()
                .unwrap_or(0)
        };
        let dim =
            |axis: usize| bgw_fft::good_size(2 * max_m(wfn_sph, axis) + max_m(out_sph, axis) + 1);
        let (nx, ny, nz) = (dim(0), dim(1), dim(2));
        let plan = Fft3d::new(nx, ny, nz);
        let npts = plan.len();
        let wrap = |v: i32, n: usize| -> usize {
            let n = n as i32;
            (((v % n) + n) % n) as usize
        };
        let pos = |m: [i32; 3]| (wrap(m[0], nx) * ny + wrap(m[1], ny)) * nz + wrap(m[2], nz);
        let gather_minus: Vec<usize> = out_sph
            .miller
            .iter()
            .map(|&m| pos([-m[0], -m[1], -m[2]]))
            .collect();
        let gather_plus: Vec<usize> = out_sph.miller.iter().map(|&m| pos(m)).collect();

        let occ_bands: Vec<usize> = (0..nv).collect();
        let emp_bands: Vec<usize> = (nv..nv + nc).collect();
        let occ_real = mtxel.to_real_space_many(wf, &occ_bands);
        let emp_real = mtxel.to_real_space_many(wf, &emp_bands);
        assert_eq!(
            occ_real[0].len(),
            npts,
            "mtxel was built over different spheres than the space-time engine"
        );
        let pack = |rows: Vec<Vec<Complex64>>, n: usize| {
            let mut m = CMatrix::zeros(n, npts);
            for (i, row) in rows.into_iter().enumerate() {
                m.row_mut(i).copy_from_slice(&row);
            }
            m
        };
        let occ_mat = pack(occ_real, nv);
        let emp_mat = pack(emp_real, nc);
        let h_vc = CMatrix::from_fn(nv, nc, |v, c| mtxel.head_kp(wf, v, nv + c, cfg.q0));

        Ok(Self {
            plan,
            npts,
            gather_minus,
            gather_plus,
            occ_mat,
            emp_mat,
            e_occ,
            e_emp,
            h_vc,
            e_min: gap,
            e_max: ec_max - ev_min,
            cfg,
        })
    }

    /// Number of output G-vectors.
    pub fn n_g(&self) -> usize {
        self.gather_minus.len()
    }

    /// Real-space grid points of the FFT box.
    pub fn npts(&self) -> usize {
        self.npts
    }

    /// Band amplitudes scaled by half the imaginary-time exponent, so the
    /// Green's function is a single `A^dagger A` product: row `b` holds
    /// `psi_b(r) e^{ sign * e~_b * tau / 2 }`.
    fn half_exp(&self, mat: &CMatrix, energies: &[f64], tau: f64, sign: f64) -> CMatrix {
        let (nb, npts) = mat.shape();
        let mut out = CMatrix::zeros(nb, npts);
        for (b, e) in energies.iter().enumerate().take(nb) {
            let w = (0.5 * sign * e * tau).exp();
            for (dst, src) in out.row_mut(b).iter_mut().zip(mat.row(b)) {
                *dst = src.scale(w);
            }
        }
        out
    }

    /// The polarizability at one imaginary-time node, on the output
    /// sphere: `chi[(G, G')] = -2 sum_vc M_vc^{G*} M_vc^{G'}
    /// e^{-(e_c - e_v) tau}`, built without ever forming the `N_v N_c`
    /// pair set. Row/column `G = 0` carry the k.p head/wings.
    pub fn chi_tau(&self, tau: f64, report: &mut SpaceTimeReport) -> CMatrix {
        let ng = self.n_g();
        let npts = self.npts;
        let nv = self.e_occ.len();
        let nc = self.e_emp.len();
        let inv_n2 = 1.0 / (npts as f64 * npts as f64);

        let t0 = Instant::now();
        let a = self.half_exp(&self.occ_mat, &self.e_occ, tau, 1.0);
        let b = self.half_exp(&self.emp_mat, &self.e_emp, tau, -1.0);
        report.t_green += t0.elapsed().as_secs_f64();

        // Stage 1: for each r, transform chi0(r, .) over r' and gather at
        // -G' (the e^{+i G'.r'} component). Batched over `row_batch` rows
        // of r so the Green's functions never materialize fully.
        let mut t1 = CMatrix::zeros(npts, ng);
        let batch = self.cfg.row_batch.max(1);
        let mut r0 = 0;
        while r0 < npts {
            let r1 = (r0 + batch).min(npts);
            let tg = Instant::now();
            // occ_rows[(i, r')] = sum_v conj(A[(v, r0+i)]) A[(v, r')]
            //                   = conj(G_occ(r0+i, r'))
            let occ_sub = a.submatrix(0, nv, r0, r1);
            let occ_rows = matmul(&occ_sub, Op::Adj, &a, Op::None, self.cfg.backend);
            // emp_rows[(i, r')] = sum_c conj(B[(c, r0+i)]) B[(c, r')]
            //                   = G_emp(r', r0+i)
            let emp_sub = b.submatrix(0, nc, r0, r1);
            let emp_rows = matmul(&emp_sub, Op::Adj, &b, Op::None, self.cfg.backend);
            report.t_green += tg.elapsed().as_secs_f64();

            let tf = Instant::now();
            let mut grids: Vec<Vec<Complex64>> = (0..r1 - r0)
                .map(|i| {
                    occ_rows
                        .row(i)
                        .iter()
                        .zip(emp_rows.row(i))
                        .map(|(o, e)| o.conj() * *e)
                        .collect()
                })
                .collect();
            self.plan.forward_many(&mut grids);
            for (i, grid) in grids.iter().enumerate() {
                let row = t1.row_mut(r0 + i);
                for (g, &pos) in self.gather_minus.iter().enumerate() {
                    row[g] = grid[pos];
                }
            }
            report.t_fft += tf.elapsed().as_secs_f64();
            r0 = r1;
        }

        // Stage 2: per output column G', transform over r and gather at
        // +G (the e^{-i G.r} component).
        let tf = Instant::now();
        let mut cols: Vec<Vec<Complex64>> = (0..ng)
            .map(|g| (0..npts).map(|r| t1[(r, g)]).collect())
            .collect();
        self.plan.forward_many(&mut cols);
        let mut chi = CMatrix::zeros(ng, ng);
        for gp in 0..ng {
            let col = &cols[gp];
            for (g, &pos) in self.gather_plus.iter().enumerate() {
                chi[(g, gp)] = col[pos].scale(-2.0 * inv_n2);
            }
        }
        report.t_fft += tf.elapsed().as_secs_f64();

        self.overwrite_head_wings(tau, &mut chi);
        chi
    }

    /// Rebuilds row/column `G = 0` from the k.p head elements — the FFT
    /// pass puts the (vanishing) naive `G = 0` overlap there, while the
    /// physical screening head is the k.p limit, exactly as in the dense
    /// panel build.
    fn overwrite_head_wings(&self, tau: f64, chi: &mut CMatrix) {
        let ng = self.n_g();
        let nv = self.e_occ.len();
        let nc = self.e_emp.len();
        let npts = self.npts;

        // S[(v, r')] = sum_c conj(h_vc) e^{-e~_c tau} psi_c(r')
        let mut hp = CMatrix::zeros(nv, nc);
        for v in 0..nv {
            let hr = self.h_vc.row(v);
            let row = hp.row_mut(v);
            for c in 0..nc {
                row[c] = hr[c].conj().scale((-self.e_emp[c] * tau).exp());
            }
        }
        let s = matmul(&hp, Op::None, &self.emp_mat, Op::None, self.cfg.backend);

        // W(r') = sum_v e^{e~_v tau} conj(psi_v(r')) S[(v, r')], whose
        // forward FFT at -G' is the wing sum_vc conj(h_vc) M_vc^{G'}
        // e^{-(e_c - e_v) tau} (times N).
        let mut w = vec![Complex64::ZERO; npts];
        for v in 0..nv {
            let ev = self.e_occ[v].mul_add(tau, 0.0).exp();
            let pv = self.occ_mat.row(v);
            let sv = s.row(v);
            for (r, wr) in w.iter_mut().enumerate() {
                *wr += (pv[r].conj() * sv[r]).scale(ev);
            }
        }
        self.plan.process(&mut w, Direction::Forward);
        let inv_n = 1.0 / npts as f64;

        // Head: -2 sum_vc |h_vc|^2 e^{-(e_c - e_v) tau}.
        let mut head = 0.0;
        for v in 0..nv {
            let hr = self.h_vc.row(v);
            for (c, h) in hr.iter().enumerate().take(nc) {
                let a_vc = self.e_emp[c] - self.e_occ[v];
                head += h.norm_sqr() * (-a_vc * tau).exp();
            }
        }
        chi[(0, 0)] = c64(-2.0 * head, 0.0);
        for g in 1..ng {
            let wing = w[self.gather_minus[g]].scale(-2.0 * inv_n);
            chi[(0, g)] = wing;
            // chi(i tau) is Hermitian (real spectral weights).
            chi[(g, 0)] = wing.conj();
        }
    }

    /// The polarizability at the requested imaginary frequencies `i u_k`
    /// (Ry): builds chi at every minimax tau node and accumulates the
    /// fitted cosine-transform weights. The report carries the fit
    /// residual — the agreement tolerance vs the dense oracle.
    pub fn chi_imag_freqs(
        &self,
        us: &[f64],
    ) -> Result<(Vec<CMatrix>, SpaceTimeReport), SpaceTimeError> {
        let grid =
            MinimaxGrid::build_with(self.cfg.n_tau, us, self.e_min, self.e_max, &self.cfg.fit);
        let ng = self.n_g();
        let mut report = SpaceTimeReport {
            n_tau: grid.taus.len(),
            npts: self.npts,
            n_g: ng,
            fit_residual: grid.cos_tw.residual,
            ..Default::default()
        };
        let mut chis = vec![CMatrix::zeros(ng, ng); us.len()];
        for (j, &tau) in grid.taus.iter().enumerate() {
            let chi_t = self.chi_tau(tau, &mut report);
            if !chi_t
                .as_slice()
                .iter()
                .all(|z| z.re.is_finite() && z.im.is_finite())
            {
                return Err(SpaceTimeError::NonFinite {
                    stage: "chi(tau)",
                    tau,
                });
            }
            let tt = Instant::now();
            for (k, chi_k) in chis.iter_mut().enumerate() {
                let gamma = grid.cos_tw.weights[k][j];
                if gamma != 0.0 {
                    chi_k.axpy(c64(gamma, 0.0), &chi_t);
                }
            }
            report.t_transform += tt.elapsed().as_secs_f64();
        }
        Ok((chis, report))
    }
}

/// Errors of the end-to-end imaginary-axis pipeline.
#[derive(Debug)]
pub enum ImagAxisError {
    /// The space-time chi0 build failed.
    SpaceTime(SpaceTimeError),
    /// The symmetrized dielectric matrix could not be inverted.
    Epsilon(EpsilonError),
    /// The Pade analytic continuation was degenerate.
    Pade(PadeError),
}

impl From<SpaceTimeError> for ImagAxisError {
    fn from(e: SpaceTimeError) -> Self {
        Self::SpaceTime(e)
    }
}

impl From<EpsilonError> for ImagAxisError {
    fn from(e: EpsilonError) -> Self {
        Self::Epsilon(e)
    }
}

impl From<PadeError> for ImagAxisError {
    fn from(e: PadeError) -> Self {
        Self::Pade(e)
    }
}

impl std::fmt::Display for ImagAxisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::SpaceTime(e) => write!(f, "space-time chi0: {e}"),
            Self::Epsilon(e) => write!(f, "imaginary-axis epsilon: {e}"),
            Self::Pade(e) => write!(f, "analytic continuation: {e}"),
        }
    }
}

impl std::error::Error for ImagAxisError {}

/// Builds `eps~^{-1}(i u_k)` on a semi-infinite quadrature through either
/// polarizability backend. Returns the inverse, the quadrature weights
/// (for [`imag_axis_sigma_diag`]), and the space-time report when that
/// path ran (`None` for the dense oracle).
#[allow(clippy::too_many_arguments)]
pub fn build_imag_epsilon(
    wf: &Wavefunctions,
    mtxel: &Mtxel,
    wfn_sph: &GSphere,
    eps_sph: &GSphere,
    coulomb: &Coulomb,
    backend: &ChiBackend,
    n_quad: usize,
    quad_w0: f64,
) -> Result<(EpsilonInverse, Vec<f64>, Option<SpaceTimeReport>), ImagAxisError> {
    let (nodes, weights) = semi_infinite_quadrature(n_quad, quad_w0);
    let (chis, report) = match backend {
        ChiBackend::Dense(cfg) => {
            let engine = ChiEngine::new(wf, mtxel, *cfg);
            let mut t = ChiTimings::default();
            (engine.chi_imag_freqs(&nodes, &mut t), None)
        }
        ChiBackend::SpaceTime(cfg) => {
            let st = SpaceTimeChi::new(wf, mtxel, wfn_sph, eps_sph, cfg.clone())?;
            let (chis, report) = st.chi_imag_freqs(&nodes)?;
            (chis, Some(report))
        }
    };
    let eps = EpsilonInverse::build(&chis, &nodes, coulomb, eps_sph)?;
    Ok((eps, weights, report))
}

/// Result of the end-to-end imaginary-axis GW run.
#[derive(Clone, Debug)]
pub struct ImagAxisGwResult {
    /// The continued self-energies.
    pub sigma: SigmaImagAxisResult,
    /// Space-time build report (None when the dense backend ran).
    pub report: Option<SpaceTimeReport>,
    /// Quadrature nodes used for the dielectric inverse.
    pub n_quad: usize,
}

/// Runs the imaginary-axis GW pipeline end to end on the chosen chi
/// backend: chi(i u) -> eps~^{-1}(i u) -> Sigma(i w) -> Pade-continued
/// Sigma(E). This is the consumer the `ChiBackend` switch exists for —
/// swapping `Dense` for `SpaceTime` changes the chi algorithm and nothing
/// else.
#[allow(clippy::too_many_arguments)]
pub fn run_imagaxis_gw(
    ctx: &SigmaContext,
    wf: &Wavefunctions,
    mtxel: &Mtxel,
    wfn_sph: &GSphere,
    eps_sph: &GSphere,
    coulomb: &Coulomb,
    backend: &ChiBackend,
    e_grids: &[Vec<f64>],
    n_quad: usize,
    iw_samples: usize,
) -> Result<ImagAxisGwResult, ImagAxisError> {
    let (eps, weights, report) =
        build_imag_epsilon(wf, mtxel, wfn_sph, eps_sph, coulomb, backend, n_quad, 1.5)?;
    let sigma = imag_axis_sigma_diag(ctx, &eps, &weights, e_grids, iw_samples)?;
    Ok(ImagAxisGwResult {
        sigma,
        report,
        n_quad,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chi::ChiTimings;
    use crate::testkit;

    /// Cheap fit options for tests: skip node optimization, fewer
    /// samples; the reported residual stays the honest gate.
    fn test_fit() -> FitOptions {
        FitOptions {
            n_samples: 128,
            optimize_passes: 2,
            ..FitOptions::default()
        }
    }

    #[test]
    fn spacetime_matches_dense_oracle_on_si() {
        let (_, setup) = testkit::small_context();
        let mtxel = Mtxel::new(&setup.wfn_sph, &setup.eps_sph);
        let q0 = setup.coulomb.q0;
        let us = [0.0, 0.3, 1.1, 4.0];

        let dense_cfg = ChiConfig {
            q0,
            ..ChiConfig::default()
        };
        let engine = ChiEngine::new(&setup.wf, &mtxel, dense_cfg);
        let mut t = ChiTimings::default();
        let dense = engine.chi_imag_freqs(&us, &mut t);

        let st_cfg = SpaceTimeConfig {
            n_tau: 14,
            q0,
            fit: test_fit(),
            ..SpaceTimeConfig::default()
        };
        let st = SpaceTimeChi::new(&setup.wf, &mtxel, &setup.wfn_sph, &setup.eps_sph, st_cfg)
            .expect("Si is gapped");
        let (chis, report) = st.chi_imag_freqs(&us).expect("build succeeds");

        assert!(
            report.fit_residual < 1e-3,
            "residual {}",
            report.fit_residual
        );
        for (k, (a, b)) in chis.iter().zip(&dense).enumerate() {
            let scale = b.max_abs().max(1e-12);
            let rel = a.max_abs_diff(b) / scale;
            // The only systematic error is the minimax fit.
            assert!(
                rel < 10.0 * report.fit_residual + 1e-12,
                "u = {}: rel err {rel:.3e} vs fit residual {:.3e}",
                us[k],
                report.fit_residual
            );
        }
    }

    #[test]
    fn spacetime_matches_dense_oracle_on_lih_defect() {
        // Second roster system: the LiH6 defect cell (rocksalt minus an
        // H), solved fresh at small cutoff — different lattice, different
        // gap structure, same parity requirement.
        let sys = bgw_pwdft::systems::lih_defect(1, 3.0);
        let wfn_sph = sys.wfn_sphere();
        let eps_sph = sys.eps_sphere();
        let wf = bgw_pwdft::solve_bands(&sys.crystal, &wfn_sph, sys.n_bands);
        let coulomb = Coulomb::bulk_for_cell(sys.crystal.lattice.volume());
        let mtxel = Mtxel::new(&wfn_sph, &eps_sph);
        let us = [0.0, 0.8, 3.0];

        let engine = ChiEngine::new(
            &wf,
            &mtxel,
            ChiConfig {
                q0: coulomb.q0,
                ..ChiConfig::default()
            },
        );
        let mut t = ChiTimings::default();
        let dense = engine.chi_imag_freqs(&us, &mut t);

        let st = SpaceTimeChi::new(
            &wf,
            &mtxel,
            &wfn_sph,
            &eps_sph,
            SpaceTimeConfig {
                n_tau: 14,
                q0: coulomb.q0,
                fit: test_fit(),
                ..SpaceTimeConfig::default()
            },
        )
        .expect("LiH defect cell is gapped");
        let (chis, report) = st.chi_imag_freqs(&us).expect("build succeeds");
        for (k, (a, b)) in chis.iter().zip(&dense).enumerate() {
            let rel = a.max_abs_diff(b) / b.max_abs().max(1e-12);
            assert!(
                rel < 10.0 * report.fit_residual + 1e-12,
                "u = {}: rel err {rel:.3e} vs fit residual {:.3e}",
                us[k],
                report.fit_residual
            );
        }
    }

    #[test]
    fn per_tau_chi_is_hermitian_and_negative_head() {
        let (_, setup) = testkit::small_context();
        let mtxel = Mtxel::new(&setup.wfn_sph, &setup.eps_sph);
        let cfg = SpaceTimeConfig {
            q0: setup.coulomb.q0,
            fit: test_fit(),
            ..SpaceTimeConfig::default()
        };
        let st = SpaceTimeChi::new(&setup.wf, &mtxel, &setup.wfn_sph, &setup.eps_sph, cfg)
            .expect("gapped");
        let mut rep = SpaceTimeReport::default();
        let chi = st.chi_tau(0.7, &mut rep);
        let ng = st.n_g();
        let mut herm = 0.0f64;
        for i in 0..ng {
            for j in 0..ng {
                herm = herm.max((chi[(i, j)] - chi[(j, i)].conj()).abs());
            }
        }
        assert!(
            herm < 1e-10 * chi.max_abs().max(1.0),
            "hermiticity {herm:.3e}"
        );
        assert!(chi[(0, 0)].re < 0.0, "head must be negative");
        assert!(chi[(0, 0)].im.abs() < 1e-12);
    }

    #[test]
    fn gapless_system_is_a_typed_error() {
        let (_, setup) = testkit::small_context();
        let mtxel = Mtxel::new(&setup.wfn_sph, &setup.eps_sph);
        let mut wf = setup.wf.clone();
        // Close the gap: degenerate HOMO/LUMO.
        let nv = wf.n_valence;
        wf.energies[nv] = wf.energies[nv - 1];
        match SpaceTimeChi::new(
            &wf,
            &mtxel,
            &setup.wfn_sph,
            &setup.eps_sph,
            SpaceTimeConfig::default(),
        ) {
            Err(SpaceTimeError::Gapless { gap }) => assert!(gap <= 0.0),
            Err(other) => panic!("wrong error: {other:?}"),
            Ok(_) => panic!("gapless must fail"),
        }
    }

    #[test]
    fn backend_switch_runs_end_to_end() {
        let (ctx, setup) = testkit::small_context();
        let mtxel = Mtxel::new(&setup.wfn_sph, &setup.eps_sph);
        let grids: Vec<Vec<f64>> = ctx.sigma_energies.iter().map(|&e| vec![e]).collect();
        let st_cfg = SpaceTimeConfig {
            q0: setup.coulomb.q0,
            fit: test_fit(),
            ..SpaceTimeConfig::default()
        };
        let dense_cfg = ChiConfig {
            q0: setup.coulomb.q0,
            ..ChiConfig::default()
        };
        let r_dense = run_imagaxis_gw(
            &ctx,
            &setup.wf,
            &mtxel,
            &setup.wfn_sph,
            &setup.eps_sph,
            &setup.coulomb,
            &ChiBackend::Dense(dense_cfg),
            &grids,
            12,
            10,
        )
        .expect("dense path runs");
        let r_st = run_imagaxis_gw(
            &ctx,
            &setup.wf,
            &mtxel,
            &setup.wfn_sph,
            &setup.eps_sph,
            &setup.coulomb,
            &ChiBackend::SpaceTime(st_cfg),
            &grids,
            12,
            10,
        )
        .expect("space-time path runs");
        assert!(r_dense.report.is_none());
        let rep = r_st.report.expect("space-time reports");
        assert!(rep.fit_residual > 0.0 && rep.fit_residual < 1e-2);
        // The two backends continue to nearly identical self-energies:
        // the chi difference is at the fit residual, and everything
        // downstream is shared.
        for s in 0..ctx.n_sigma() {
            let a = r_dense.sigma.sigma[s][0].re;
            let b = r_st.sigma.sigma[s][0].re;
            assert!(a.is_finite() && b.is_finite());
            assert!(
                (a - b).abs() < 1e-2 * a.abs().max(1.0),
                "band {s}: dense {a} vs space-time {b}"
            );
        }
    }
}
