//! Plane-wave basis spheres (G-vector sets).
//!
//! `N_G^psi` and `N_G` in paper Table 1/2 are the sizes of two such spheres:
//! a larger one for wavefunctions and a smaller one for the polarizability
//! and dielectric matrices. A sphere holds all reciprocal-lattice vectors
//! with kinetic energy `|G|^2 <= E_cut` (Ry), deterministically ordered by
//! `(|G|^2, Miller indices)` so that rank-distributed slices are
//! reproducible.

use crate::lattice::Lattice;
use std::collections::HashMap;

/// A set of G-vectors inside an energy cutoff.
#[derive(Clone, Debug)]
pub struct GSphere {
    /// Miller indices of each G-vector.
    pub miller: Vec<[i32; 3]>,
    /// Cartesian components (bohr^-1).
    pub cart: Vec<[f64; 3]>,
    /// `|G|^2` (bohr^-2), equal to the kinetic energy in Ry.
    pub norm2: Vec<f64>,
    /// The cutoff (Ry) used to build the sphere.
    pub ecut_ry: f64,
    /// FFT box dimensions able to hold all pairwise differences.
    pub fft_dims: (usize, usize, usize),
    index: HashMap<[i32; 3], usize>,
}

impl GSphere {
    /// Builds the sphere for `lattice` with cutoff `ecut_ry` (Ry).
    pub fn new(lattice: &Lattice, ecut_ry: f64) -> Self {
        assert!(ecut_ry > 0.0, "cutoff must be positive");
        let gmax = ecut_ry.sqrt();
        // |m_i| = |G . a_i| / 2 pi <= |G| |a_i| / 2 pi
        let bound = |row: [f64; 3]| {
            let len = (row[0] * row[0] + row[1] * row[1] + row[2] * row[2]).sqrt();
            (gmax * len / (2.0 * std::f64::consts::PI)).ceil() as i32 + 1
        };
        let (m1, m2, m3) = (
            bound(lattice.a[0]),
            bound(lattice.a[1]),
            bound(lattice.a[2]),
        );
        let mut entries: Vec<([i32; 3], [f64; 3], f64)> = Vec::new();
        for i in -m1..=m1 {
            for j in -m2..=m2 {
                for k in -m3..=m3 {
                    let g = lattice.g_cart([i, j, k]);
                    let n2 = g[0] * g[0] + g[1] * g[1] + g[2] * g[2];
                    if n2 <= ecut_ry + 1e-12 {
                        entries.push(([i, j, k], g, n2));
                    }
                }
            }
        }
        // Deterministic order: energy, then Miller lexicographic.
        entries.sort_by(|a, b| a.2.total_cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        let mut miller = Vec::with_capacity(entries.len());
        let mut cart = Vec::with_capacity(entries.len());
        let mut norm2 = Vec::with_capacity(entries.len());
        let mut index = HashMap::with_capacity(entries.len());
        for (pos, (m, g, n2)) in entries.into_iter().enumerate() {
            index.insert(m, pos);
            miller.push(m);
            cart.push(g);
            norm2.push(n2);
        }
        // FFT box: must hold differences G - G', i.e. Miller range
        // [-2 m_max, 2 m_max]; round up to 5-smooth sizes.
        let max_m = |axis: usize| {
            miller
                .iter()
                .map(|m| m[axis].unsigned_abs())
                .max()
                .unwrap_or(0)
        };
        let dim = |axis: usize| bgw_fft::good_size((4 * max_m(axis) + 1) as usize);
        let fft_dims = (dim(0), dim(1), dim(2));
        Self {
            miller,
            cart,
            norm2,
            ecut_ry,
            fft_dims,
            index,
        }
    }

    /// Number of G-vectors (`N_G`).
    pub fn len(&self) -> usize {
        self.miller.len()
    }

    /// `true` if the sphere is empty (never for positive cutoffs).
    pub fn is_empty(&self) -> bool {
        self.miller.is_empty()
    }

    /// Position of a Miller triplet in the sphere, if inside the cutoff.
    pub fn find(&self, m: [i32; 3]) -> Option<usize> {
        self.index.get(&m).copied()
    }

    /// Index of `-G` for the G-vector at `i` (spheres are inversion
    /// symmetric by construction).
    pub fn minus(&self, i: usize) -> usize {
        let m = self.miller[i];
        self.find([-m[0], -m[1], -m[2]])
            .expect("sphere must be inversion symmetric")
    }

    /// Flattened FFT-box index for the G-vector at `i` (wrapping negative
    /// Miller indices into the box).
    pub fn fft_index(&self, i: usize) -> usize {
        let (nx, ny, nz) = self.fft_dims;
        let m = self.miller[i];
        let wrap = |v: i32, n: usize| -> usize {
            let n = n as i32;
            (((v % n) + n) % n) as usize
        };
        (wrap(m[0], nx) * ny + wrap(m[1], ny)) * nz + wrap(m[2], nz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_counts_match_volume_estimate() {
        let lat = Lattice::cubic(10.0);
        let sph = GSphere::new(&lat, 4.0);
        // N_G ~ Omega * gmax^3 / (6 pi^2)
        let est = lat.volume() * 4.0f64.powf(1.5) / (6.0 * std::f64::consts::PI.powi(2));
        let n = sph.len() as f64;
        assert!(
            (n - est).abs() / est < 0.25,
            "count {n} vs continuum estimate {est}"
        );
    }

    #[test]
    fn first_vector_is_gamma_and_sorted() {
        let sph = GSphere::new(&Lattice::cubic(8.0), 6.0);
        assert_eq!(sph.miller[0], [0, 0, 0]);
        assert_eq!(sph.norm2[0], 0.0);
        for w in sph.norm2.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        // all inside the cutoff
        assert!(sph.norm2.iter().all(|&n2| n2 <= 6.0 + 1e-9));
    }

    #[test]
    fn inversion_symmetry() {
        let sph = GSphere::new(&Lattice::hexagonal(5.0, 12.0), 5.0);
        for i in 0..sph.len() {
            let j = sph.minus(i);
            let (a, b) = (sph.miller[i], sph.miller[j]);
            assert_eq!([a[0] + b[0], a[1] + b[1], a[2] + b[2]], [0, 0, 0]);
        }
    }

    #[test]
    fn find_roundtrip() {
        let sph = GSphere::new(&Lattice::cubic(9.0), 3.5);
        for (i, &m) in sph.miller.iter().enumerate() {
            assert_eq!(sph.find(m), Some(i));
        }
        assert_eq!(sph.find([100, 0, 0]), None);
    }

    #[test]
    fn fft_box_holds_differences() {
        let sph = GSphere::new(&Lattice::cubic(10.0), 4.0);
        let (nx, ny, nz) = sph.fft_dims;
        let max_m = sph
            .miller
            .iter()
            .map(|m| m.iter().map(|v| v.unsigned_abs()).max().unwrap())
            .max()
            .unwrap();
        assert!(nx >= (4 * max_m + 1) as usize);
        assert!(ny >= (4 * max_m + 1) as usize && nz >= (4 * max_m + 1) as usize);
        // fft_index is injective over the sphere
        let mut seen = std::collections::HashSet::new();
        for i in 0..sph.len() {
            assert!(seen.insert(sph.fft_index(i)), "fft_index collision at {i}");
        }
    }

    #[test]
    fn larger_cutoff_is_superset() {
        let lat = Lattice::cubic(10.0);
        let small = GSphere::new(&lat, 2.0);
        let big = GSphere::new(&lat, 5.0);
        assert!(big.len() > small.len());
        for &m in &small.miller {
            assert!(big.find(m).is_some());
        }
    }
}
