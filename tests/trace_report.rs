//! Golden-file and FLOP-model validation tests for the `bgw-trace` run
//! report (DESIGN.md Sec. 11).
//!
//! The golden test pins the `bgw-trace/1` JSON encoding byte for byte —
//! field order, indentation, the nonzero-counters-only rule — so the
//! format cannot drift silently out from under external consumers. The
//! model tests assert the paper's Eq. 7 FLOP count (`gpp_diag_flops`)
//! reproduces the kernel's own counted FLOPs *exactly* on a tiny
//! deterministic workload, including when `alpha` is calibrated on one
//! workload shape and used to predict another.

use berkeleygw_rs::core::sigma::diag::{gpp_sigma_diag, measured_alpha, KernelVariant};
use berkeleygw_rs::core::testkit;
use berkeleygw_rs::perf::counters::exclusive_test_guard;
use berkeleygw_rs::perf::{gpp_diag_flops, CounterSnapshot};
use berkeleygw_rs::trace;
use berkeleygw_rs::trace::{RunReport, SpanNode};

const GOLDEN: &str = include_str!("golden/trace_report.json");

/// A hand-built report with fixed integers: span trees from real runs
/// carry nondeterministic times, so the byte-stability check uses a
/// synthetic tree exercising every encoding rule (nested children,
/// zero-suppressed counters, escaping-free names, empty child lists).
fn golden_report() -> RunReport {
    let gemm_counters = CounterSnapshot {
        gemm_calls: 3,
        gemm_pack_ns: 1_200,
        gemm_compute_ns: 8_400,
        ..CounterSnapshot::default()
    };
    let pool_counters = CounterSnapshot {
        pool_dispatches: 1,
        pool_dispatch_ns: 52_000,
        pool_region_ns: 410_000,
        ..CounterSnapshot::default()
    };
    RunReport::new(vec![SpanNode {
        name: "workflow.gpp_gw".to_string(),
        calls: 1,
        incl_ns: 2_000_000,
        excl_ns: 150_000,
        flops: 0,
        counters: pool_counters,
        children: vec![
            SpanNode {
                name: "gemm".to_string(),
                calls: 3,
                incl_ns: 450_000,
                excl_ns: 440_000,
                flops: 1_228_800,
                counters: gemm_counters,
                children: vec![SpanNode {
                    name: "gemm.pack".to_string(),
                    calls: 3,
                    incl_ns: 10_000,
                    excl_ns: 10_000,
                    flops: 0,
                    counters: CounterSnapshot::default(),
                    children: Vec::new(),
                }],
            },
            SpanNode {
                name: "sigma.diag".to_string(),
                calls: 1,
                incl_ns: 1_400_000,
                excl_ns: 1_400_000,
                flops: 60_480,
                counters: CounterSnapshot::default(),
                children: Vec::new(),
            },
        ],
    }])
}

#[test]
fn golden_json_is_byte_stable() {
    assert_eq!(
        golden_report().to_json(),
        GOLDEN,
        "bgw-trace/1 JSON encoding drifted from tests/golden/trace_report.json"
    );
}

#[test]
fn golden_json_round_trips_through_parser() {
    let parsed = RunReport::from_json(GOLDEN).expect("golden parses");
    assert_eq!(parsed, golden_report());
    // And the re-serialization is the identical byte stream (schema
    // round trip, not just structural equality).
    assert_eq!(parsed.to_json(), GOLDEN);
}

#[test]
fn golden_preserves_derived_quantities() {
    let rep = RunReport::from_json(GOLDEN).expect("golden parses");
    let root = rep.find("workflow.gpp_gw").expect("root span");
    assert_eq!(root.inclusive_flops(), 1_228_800 + 60_480);
    assert_eq!(
        rep.find("workflow.gpp_gw/gemm")
            .unwrap()
            .counters
            .gemm_calls,
        3
    );
    // Zero counters were suppressed in the file but restored as zeros.
    assert_eq!(
        rep.find("workflow.gpp_gw/sigma.diag").unwrap().counters,
        CounterSnapshot::default()
    );
}

#[test]
fn gpp_diag_model_matches_counted_flops_exactly() {
    let _guard = exclusive_test_guard();
    let (ctx, _) = testkit::small_context();
    let grids: Vec<Vec<f64>> = ctx
        .sigma_energies
        .iter()
        .map(|&e| vec![e - 0.05, e, e + 0.05])
        .collect();
    let r = gpp_sigma_diag(&ctx, &grids, KernelVariant::Optimized);
    let alpha = measured_alpha(&r, &ctx);
    let predicted = gpp_diag_flops(alpha, ctx.n_sigma(), ctx.n_b(), ctx.n_g(), 3);
    let err = (predicted - r.flops as f64).abs() / predicted;
    assert!(
        err < 1e-12,
        "Eq. 7 must reproduce the counted FLOPs exactly: {predicted} vs {}",
        r.flops
    );
}

#[test]
fn gpp_diag_model_transfers_across_workloads() {
    let _guard = exclusive_test_guard();
    let (ctx, _) = testkit::small_context();
    // Calibrate alpha on a 1-point grid...
    let grids1: Vec<Vec<f64>> = ctx.sigma_energies.iter().map(|&e| vec![e]).collect();
    let cal = gpp_sigma_diag(&ctx, &grids1, KernelVariant::Reference);
    let alpha = measured_alpha(&cal, &ctx);
    // ...and predict a 5-point grid: alpha depends only on the GPP pole
    // structure, so the Eq. 7 prediction is exact, not just close.
    let grids5: Vec<Vec<f64>> = ctx
        .sigma_energies
        .iter()
        .map(|&e| vec![e - 0.2, e - 0.1, e, e + 0.1, e + 0.2])
        .collect();
    let r = gpp_sigma_diag(&ctx, &grids5, KernelVariant::Blocked);
    let predicted = gpp_diag_flops(alpha, ctx.n_sigma(), ctx.n_b(), ctx.n_g(), 5);
    let err = (predicted - r.flops as f64).abs() / predicted;
    assert!(
        err < 1e-12,
        "cross-workload Eq. 7 drifted: predicted {predicted}, counted {}",
        r.flops
    );
}

#[test]
fn adopted_span_finishing_after_parent_does_not_double_count_exclusive() {
    let _guard = exclusive_test_guard();
    trace::reset();
    trace::set_enabled(true);
    // Dispatcher opens a parent span and hands its handle to a "stolen
    // task" thread; the task deliberately outlives the parent's frame.
    // The overlap used to be reported as exclusive time on BOTH nodes;
    // the parent must now shed the adopted child's inclusive time even
    // though the child closed after the parent's frame was folded in.
    let worker = {
        let _parent = trace::span!("t.steal_parent");
        let h = trace::current_handle();
        let worker = std::thread::spawn(move || {
            let _adopt = trace::adopt(h);
            let _child = trace::span!("t.stolen_task");
            std::thread::sleep(std::time::Duration::from_millis(40));
        });
        // Keep the parent open long enough that the whole of its life is
        // overlapped by the child, then close it while the child runs on.
        std::thread::sleep(std::time::Duration::from_millis(10));
        worker
    };
    worker.join().expect("stolen-task thread");
    trace::set_enabled(false);
    let rep = trace::report();
    let parent = rep.find("t.steal_parent").expect("parent span");
    let child = rep
        .find("t.steal_parent/t.stolen_task")
        .expect("adopted child nests under the dispatcher");
    assert!(parent.incl_ns >= 9_000_000, "parent lived >= ~10ms");
    assert!(child.incl_ns >= 39_000_000, "child lived >= ~40ms");
    // The child covered the parent's entire frame, so the parent's
    // exclusive time must collapse to ~0 instead of re-reporting the
    // overlapped ~10ms (generous slack for scheduling jitter between
    // the spawn and the child's span actually opening).
    assert!(
        parent.excl_ns < 5_000_000,
        "parent exclusive {}ns still double-counts the adopted overlap",
        parent.excl_ns
    );
    trace::reset();
}

#[test]
fn traced_kernel_attributes_its_counted_flops_to_the_span() {
    let _guard = exclusive_test_guard();
    let (ctx, _) = testkit::small_context();
    let grids: Vec<Vec<f64>> = ctx.sigma_energies.iter().map(|&e| vec![e]).collect();
    trace::reset();
    trace::set_enabled(true);
    let r = gpp_sigma_diag(&ctx, &grids, KernelVariant::Optimized);
    trace::set_enabled(false);
    let rep = trace::report();
    let span = rep.find("sigma.diag").expect("sigma.diag span recorded");
    assert_eq!(span.calls, 1);
    assert_eq!(
        span.inclusive_flops(),
        r.flops,
        "the span must carry exactly the kernel's counted FLOPs"
    );
    assert!(span.incl_ns > 0 && span.excl_ns <= span.incl_ns);
    trace::reset();
}
