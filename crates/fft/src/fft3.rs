//! Three-dimensional complex FFT over row-major `[nx][ny][nz]` grids.
//!
//! This is the transform behind the MTXEL kernel: wavefunctions are scattered
//! from the plane-wave sphere onto the FFT box, transformed to real space,
//! multiplied pointwise, and transformed back (paper Sec. 5.2, ref 8).
//!
//! The hot path executes each axis as *batched* line transforms on the
//! `bgw-par` worker pool: lines are gathered [`LINE_BATCH`] at a time into
//! per-worker split re/im `f64` panels, pushed through
//! [`FftPlan::process_batch_split`] (table-driven butterflies compiled per
//! ISA and dispatched at runtime, twiddle lookups amortized over the batch,
//! the batch dimension vectorized) and scattered back. z-lines are
//! contiguous; y and x lines are strided gathers.
//! [`Fft3d::process_serial`] keeps the original one-line-at-a-time kernel as
//! the correctness oracle and baseline, and [`Fft3d::process_many`] batches
//! whole grids (one worker per grid, axis passes running inline inside it),
//! which is the shape the MTXEL band cache and the SCF density sum feed.

use crate::plan::{cached_plan, Direction, FftPlan, LINE_BATCH};
use bgw_num::Complex64;
use bgw_par::SendPtr;
use std::sync::Arc;
use std::time::Instant;

/// A reusable 3-D FFT plan. Cheap to clone: the per-axis 1-D plans are
/// process-wide cached [`Arc`]s shared between all engines with a common
/// axis length (see [`cached_plan`]).
#[derive(Clone, Debug)]
pub struct Fft3d {
    nx: usize,
    ny: usize,
    nz: usize,
    plan_x: Arc<FftPlan>,
    plan_y: Arc<FftPlan>,
    plan_z: Arc<FftPlan>,
}

impl Fft3d {
    /// Creates a plan for an `nx x ny x nz` grid.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Self {
            nx,
            ny,
            nz,
            plan_x: cached_plan(nx),
            plan_y: cached_plan(ny),
            plan_z: cached_plan(nz),
        }
    }

    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// `true` if the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of 1-D line transforms in one 3-D pass.
    pub fn line_count(&self) -> usize {
        self.nx * self.ny + self.nx * self.nz + self.ny * self.nz
    }

    /// Flat index of grid point `(ix, iy, iz)`.
    #[inline]
    pub fn index(&self, ix: usize, iy: usize, iz: usize) -> usize {
        (ix * self.ny + iy) * self.nz + iz
    }

    /// Transforms `data` (length `nx*ny*nz`, row-major) in place on the
    /// worker pool, batching lines per axis.
    pub fn process(&self, data: &mut [Complex64], dir: Direction) {
        assert_eq!(data.len(), self.len(), "grid buffer length mismatch");
        let _span = bgw_trace::span!("fft.grid");
        let t0 = Instant::now();
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        // z lines are contiguous: line l starts at l*nz.
        {
            let _axis = bgw_trace::span!("fft.axis_z");
            axis_pass(&self.plan_z, data, nx * ny, 1, |l| l * nz, dir);
        }
        // y lines: stride nz within each x-plane.
        {
            let _axis = bgw_trace::span!("fft.axis_y");
            axis_pass(
                &self.plan_y,
                data,
                nx * nz,
                nz,
                |l| (l / nz) * ny * nz + (l % nz),
                dir,
            );
        }
        // x lines: stride ny*nz.
        {
            let _axis = bgw_trace::span!("fft.axis_x");
            axis_pass(&self.plan_x, data, ny * nz, ny * nz, |l| l, dir);
        }
        bgw_perf::counters::record_fft_pass(
            self.line_count() as u64,
            t0.elapsed().as_nanos() as u64,
        );
    }

    /// Transforms `data` in place with the original serial per-line kernel
    /// (recursive butterflies, twiddle index recomputed per butterfly).
    /// This is the oracle the pooled path is checked against and the
    /// baseline the `bench_fft_mtxel` harness measures speedups over.
    pub fn process_serial(&self, data: &mut [Complex64], dir: Direction) {
        assert_eq!(data.len(), self.len(), "grid buffer length mismatch");
        let _span = bgw_trace::span!("fft.serial");
        let t0 = Instant::now();
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        // z lines are contiguous.
        {
            let mut scratch = vec![Complex64::ZERO; self.plan_z.scratch_len()];
            for line in data.chunks_exact_mut(nz) {
                self.plan_z.process_with(line, &mut scratch, dir);
            }
        }
        // y lines: stride nz within each x-plane.
        {
            let mut scratch = vec![Complex64::ZERO; self.plan_y.scratch_len()];
            let mut line = vec![Complex64::ZERO; ny];
            for ix in 0..nx {
                for iz in 0..nz {
                    let base = ix * ny * nz + iz;
                    for iy in 0..ny {
                        line[iy] = data[base + iy * nz];
                    }
                    self.plan_y.process_with(&mut line, &mut scratch, dir);
                    for iy in 0..ny {
                        data[base + iy * nz] = line[iy];
                    }
                }
            }
        }
        // x lines: stride ny*nz.
        {
            let mut scratch = vec![Complex64::ZERO; self.plan_x.scratch_len()];
            let mut line = vec![Complex64::ZERO; nx];
            let stride = ny * nz;
            for rem in 0..stride {
                for ix in 0..nx {
                    line[ix] = data[rem + ix * stride];
                }
                self.plan_x.process_with(&mut line, &mut scratch, dir);
                for ix in 0..nx {
                    data[rem + ix * stride] = line[ix];
                }
            }
        }
        bgw_perf::counters::record_fft_pass(
            self.line_count() as u64,
            t0.elapsed().as_nanos() as u64,
        );
    }

    /// Transforms every grid in `grids` in place, distributing whole grids
    /// over the worker pool. Axis passes inside a worker run inline (the
    /// pool refuses nested dispatch), so grid-level parallelism composes
    /// with the per-axis batching instead of fighting it.
    pub fn process_many(&self, grids: &mut [Vec<Complex64>], dir: Direction) {
        let _span = bgw_trace::span!("fft.batch");
        for g in grids.iter() {
            assert_eq!(g.len(), self.len(), "grid buffer length mismatch");
        }
        bgw_par::parallel_fill(grids, |_, grid| self.process(grid, dir));
    }

    /// [`Fft3d::process_many`] in the forward direction.
    pub fn forward_many(&self, grids: &mut [Vec<Complex64>]) {
        self.process_many(grids, Direction::Forward);
    }

    /// [`Fft3d::process_many`] in the inverse direction.
    pub fn inverse_many(&self, grids: &mut [Vec<Complex64>]) {
        self.process_many(grids, Direction::Inverse);
    }
}

/// One batched axis pass: `n_lines` lines of length `plan.len()`, line `l`
/// starting at flat offset `line_base(l)` with element stride `stride`.
/// Groups of up to [`LINE_BATCH`] lines are gathered straight into
/// per-worker split re/im panels (the strided gather doubles as the
/// complex-to-split-plane conversion, so the layout change costs nothing
/// extra), transformed with [`FftPlan::process_batch_split`] and scattered
/// back; groups are distributed over the pool.
fn axis_pass<F>(
    plan: &FftPlan,
    data: &mut [Complex64],
    n_lines: usize,
    stride: usize,
    line_base: F,
    dir: Direction,
) where
    F: Fn(usize) -> usize + Sync,
{
    let n = plan.len();
    if n <= 1 || n_lines == 0 {
        return;
    }
    let groups = n_lines.div_ceil(LINE_BATCH);
    let chunk = bgw_par::auto_chunk(groups, bgw_par::num_threads(), 1);
    let ptr = SendPtr::new(data.as_mut_ptr());
    bgw_par::parallel_for_chunked(groups, chunk, move |glo, ghi| {
        let mut panel_re = vec![0.0f64; n * LINE_BATCH];
        let mut panel_im = vec![0.0f64; n * LINE_BATCH];
        let mut scratch = vec![0.0f64; plan.batch_scratch_split_len()];
        for g in glo..ghi {
            let lo = g * LINE_BATCH;
            let b = LINE_BATCH.min(n_lines - lo);
            for (j, l) in (lo..lo + b).enumerate() {
                let base = line_base(l);
                for k in 0..n {
                    // SAFETY: distinct lines occupy disjoint flat offsets
                    // and group ranges are disjoint across workers, so each
                    // element has exactly one reader/writer in this pass.
                    let z = unsafe { *ptr.get().add(base + k * stride) };
                    panel_re[k * b + j] = z.re;
                    panel_im[k * b + j] = z.im;
                }
            }
            plan.process_batch_split(
                &mut panel_re[..n * b],
                &mut panel_im[..n * b],
                b,
                &mut scratch,
                dir,
            );
            for (j, l) in (lo..lo + b).enumerate() {
                let base = line_base(l);
                for k in 0..n {
                    let z = Complex64::new(panel_re[k * b + j], panel_im[k * b + j]);
                    // SAFETY: as above — one writer per element.
                    unsafe { *ptr.get().add(base + k * stride) = z };
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::dft_reference;
    use bgw_num::c64;

    fn rand_grid(n: usize, seed: u64) -> Vec<Complex64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n).map(|_| c64(next(), next())).collect()
    }

    /// Brute-force 3-D DFT by applying the 1-D reference along each axis.
    fn dft3_reference(
        x: &[Complex64],
        (nx, ny, nz): (usize, usize, usize),
        dir: Direction,
    ) -> Vec<Complex64> {
        let mut data = x.to_vec();
        // z
        for line in data.chunks_exact_mut(nz) {
            let t = dft_reference(line, dir);
            line.copy_from_slice(&t);
        }
        // y
        for ix in 0..nx {
            for iz in 0..nz {
                let mut line = Vec::with_capacity(ny);
                for iy in 0..ny {
                    line.push(data[(ix * ny + iy) * nz + iz]);
                }
                let t = dft_reference(&line, dir);
                for iy in 0..ny {
                    data[(ix * ny + iy) * nz + iz] = t[iy];
                }
            }
        }
        // x
        for iy in 0..ny {
            for iz in 0..nz {
                let mut line = Vec::with_capacity(nx);
                for ix in 0..nx {
                    line.push(data[(ix * ny + iy) * nz + iz]);
                }
                let t = dft_reference(&line, dir);
                for ix in 0..nx {
                    data[(ix * ny + iy) * nz + iz] = t[ix];
                }
            }
        }
        data
    }

    #[test]
    fn matches_reference_small_grids() {
        for dims in [(2usize, 3usize, 4usize), (4, 4, 4), (3, 5, 7), (6, 5, 4)] {
            let n = dims.0 * dims.1 * dims.2;
            let x = rand_grid(n, n as u64);
            let plan = Fft3d::new(dims.0, dims.1, dims.2);
            let mut y = x.clone();
            plan.process(&mut y, Direction::Forward);
            let r = dft3_reference(&x, dims, Direction::Forward);
            let err = y
                .iter()
                .zip(&r)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-9, "dims {dims:?}: err {err}");
        }
    }

    #[test]
    fn pooled_matches_serial_to_rounding() {
        // The batched pooled path agrees with the per-line serial kernel
        // to rounding: the hard-wired radix-2/3/4/5 butterflies use exact
        // DFT constants where the serial kernel multiplies by twiddle-table
        // entries carrying ~1e-16 phase error (well inside the 1e-10
        // acceptance gate the bench enforces).
        for dims in [
            (2usize, 3usize, 4usize),
            (16, 16, 16),
            (12, 10, 9),
            (1, 5, 8),
            (20, 1, 1),
        ] {
            let n = dims.0 * dims.1 * dims.2;
            let plan = Fft3d::new(dims.0, dims.1, dims.2);
            for dir in [Direction::Forward, Direction::Inverse] {
                let x = rand_grid(n, 7 * n as u64 + 1);
                let mut pooled = x.clone();
                let mut serial = x;
                plan.process(&mut pooled, dir);
                plan.process_serial(&mut serial, dir);
                for (i, (a, b)) in pooled.iter().zip(&serial).enumerate() {
                    assert!(
                        (*a - *b).abs() <= 1e-12 * (n as f64).max(1.0),
                        "dims {dims:?} dir {dir:?} i {i}: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn bluestein_prime_dims_roundtrip_and_reference() {
        // 7 x 11 x 13 factorizes into supported radices per axis, but a
        // 17-length axis forces the chirp-z fallback inside the batched
        // driver; cross-check both against the naive DFT and roundtrip.
        for dims in [(7usize, 11usize, 13usize), (17, 4, 5), (3, 17, 2)] {
            let n = dims.0 * dims.1 * dims.2;
            let x = rand_grid(n, 13 * n as u64 + 5);
            let plan = Fft3d::new(dims.0, dims.1, dims.2);
            let mut y = x.clone();
            plan.process(&mut y, Direction::Forward);
            let r = dft3_reference(&x, dims, Direction::Forward);
            let err = y
                .iter()
                .zip(&r)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-8, "dims {dims:?}: err vs naive DFT {err}");
            plan.process(&mut y, Direction::Inverse);
            let rt = y
                .iter()
                .zip(&x)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max);
            assert!(rt < 1e-10, "dims {dims:?}: roundtrip err {rt}");
        }
    }

    #[test]
    fn process_many_matches_individual() {
        let plan = Fft3d::new(6, 5, 4);
        let grids: Vec<Vec<Complex64>> = (0..5)
            .map(|g| rand_grid(plan.len(), 1000 + g as u64))
            .collect();
        let mut batched = grids.clone();
        plan.forward_many(&mut batched);
        for (g, grid) in grids.iter().enumerate() {
            let mut want = grid.clone();
            plan.process(&mut want, Direction::Forward);
            let err = batched[g]
                .iter()
                .zip(&want)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max);
            assert_eq!(err, 0.0, "grid {g}");
        }
        let mut back = batched;
        plan.inverse_many(&mut back);
        for (g, grid) in grids.iter().enumerate() {
            let err = back[g]
                .iter()
                .zip(grid)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-11, "grid {g}: roundtrip err {err}");
        }
    }

    #[test]
    fn many_matches_serial_oracle_on_every_supported_isa() {
        // Satellite parity gate: `forward_many` / `inverse_many` against
        // the per-line `process_serial` oracle on grids exercising the
        // radix-3 and radix-5 butterflies (9*5*15 = 3^3 * 5^2 per-axis
        // mix) and a Bluestein axis (17), with each host-supported ISA's
        // butterfly set forced in turn. This is the only test in the
        // binary that calls `simd::force`, so the global override cannot
        // race another test's expectations.
        for &isa in bgw_num::simd::supported().iter() {
            assert!(bgw_num::simd::force(Some(isa)), "{isa:?} must force");
            for dims in [(9usize, 5usize, 15usize), (17, 3, 5), (25, 27, 4)] {
                let plan = Fft3d::new(dims.0, dims.1, dims.2);
                let grids: Vec<Vec<Complex64>> = (0..3)
                    .map(|g| rand_grid(plan.len(), 500 + 31 * g as u64))
                    .collect();
                let n = plan.len() as f64;
                let mut fwd = grids.clone();
                plan.forward_many(&mut fwd);
                for (g, grid) in grids.iter().enumerate() {
                    let mut want = grid.clone();
                    plan.process_serial(&mut want, Direction::Forward);
                    let err = fwd[g]
                        .iter()
                        .zip(&want)
                        .map(|(a, b)| (*a - *b).abs())
                        .fold(0.0, f64::max);
                    assert!(
                        err <= 1e-12 * n,
                        "{isa:?} dims {dims:?} grid {g}: forward err {err}"
                    );
                }
                let mut back = fwd;
                plan.inverse_many(&mut back);
                for (g, grid) in grids.iter().enumerate() {
                    let mut want = grid.clone();
                    plan.process_serial(&mut want, Direction::Forward);
                    plan.process_serial(&mut want, Direction::Inverse);
                    let err = back[g]
                        .iter()
                        .zip(&want)
                        .map(|(a, b)| (*a - *b).abs())
                        .fold(0.0, f64::max);
                    assert!(
                        err <= 1e-12 * n,
                        "{isa:?} dims {dims:?} grid {g}: inverse err {err}"
                    );
                }
            }
        }
        bgw_num::simd::force(None);
    }

    #[test]
    fn roundtrip_3d() {
        let plan = Fft3d::new(5, 6, 7);
        let x = rand_grid(plan.len(), 99);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        plan.process(&mut y, Direction::Inverse);
        let err = y
            .iter()
            .zip(&x)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-11, "err {err}");
    }

    #[test]
    fn plane_wave_maps_to_single_grid_point() {
        let (nx, ny, nz) = (4usize, 6usize, 5usize);
        let plan = Fft3d::new(nx, ny, nz);
        let (kx, ky, kz) = (1usize, 2usize, 3usize);
        let mut x = vec![Complex64::ZERO; plan.len()];
        for ix in 0..nx {
            for iy in 0..ny {
                for iz in 0..nz {
                    let ph = 2.0 * std::f64::consts::PI * (kx * ix) as f64 / nx as f64
                        + 2.0 * std::f64::consts::PI * (ky * iy) as f64 / ny as f64
                        + 2.0 * std::f64::consts::PI * (kz * iz) as f64 / nz as f64;
                    x[plan.index(ix, iy, iz)] = Complex64::cis(ph);
                }
            }
        }
        plan.process(&mut x, Direction::Forward);
        let hot = plan.index(kx, ky, kz);
        for (i, z) in x.iter().enumerate() {
            if i == hot {
                assert!((z.re - plan.len() as f64).abs() < 1e-8);
            } else {
                assert!(z.abs() < 1e-8, "leakage at {i}: {z}");
            }
        }
    }

    #[test]
    fn index_is_row_major() {
        let plan = Fft3d::new(2, 3, 4);
        assert_eq!(plan.index(0, 0, 0), 0);
        assert_eq!(plan.index(0, 0, 3), 3);
        assert_eq!(plan.index(0, 1, 0), 4);
        assert_eq!(plan.index(1, 0, 0), 12);
        assert_eq!(plan.index(1, 2, 3), 23);
        assert_eq!(plan.dims(), (2, 3, 4));
        assert_eq!(plan.line_count(), 2 * 3 + 2 * 4 + 3 * 4);
        assert!(!plan.is_empty());
    }
}
