//! Content-hash artifact keys.
//!
//! An artifact key is the FNV-1a-64 digest of a *canonical* parameter
//! string: named fields, each rendered in an exact textual form (integers
//! in decimal, floats as IEEE-754 bit patterns in hex — never formatted
//! decimals, which round), sorted by field name. Canonicalization is what
//! makes the key a cache identity rather than a serialization accident:
//! the same parameters pushed in any order produce byte-identical
//! canonical strings and therefore identical keys, while perturbing any
//! single band index, cutoff, or frequency count changes the digest.
//! `tests/serve.rs` holds the round-trip and sensitivity properties.

use std::fmt;

/// A 64-bit content-hash key into the artifact store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactKey(pub u64);

impl ArtifactKey {
    /// Fixed-width lowercase hex form, used in store file names.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

impl fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.hex())
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One canonical field value.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Value {
    /// Unsigned integer, rendered in decimal.
    Int(u64),
    /// An `f64`, rendered as its IEEE-754 bit pattern in hex (exact).
    Bits(u64),
    /// Short identifier text (no `;`, `=`, or control characters).
    Text(String),
}

impl Value {
    fn render(&self) -> String {
        match self {
            Value::Int(v) => format!("i{v}"),
            Value::Bits(b) => format!("f{b:016x}"),
            Value::Text(t) => format!("s{t}"),
        }
    }

    fn parse(text: &str) -> Option<Value> {
        if text.is_empty() {
            return None;
        }
        let (tag, rest) = text.split_at(1);
        match tag {
            "i" => rest.parse::<u64>().ok().map(Value::Int),
            "f" => {
                if rest.len() != 16 {
                    return None;
                }
                u64::from_str_radix(rest, 16).ok().map(Value::Bits)
            }
            "s" => Some(Value::Text(rest.to_string())),
            _ => None,
        }
    }
}

/// A set of named parameters being canonicalized into an [`ArtifactKey`].
///
/// Push fields in any order; [`KeySpec::canonical`] sorts by name, so two
/// specs with the same fields are byte-identical however they were built.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KeySpec {
    fields: Vec<(String, Value)>,
}

impl KeySpec {
    /// An empty spec.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, name: &str, value: Value) {
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "key field name {name:?} must be [A-Za-z0-9_]"
        );
        assert!(
            !self.fields.iter().any(|(n, _)| n == name),
            "duplicate key field {name:?}"
        );
        self.fields.push((name.to_string(), value));
    }

    /// Adds an unsigned-integer field.
    pub fn push_int(&mut self, name: &str, value: u64) -> &mut Self {
        self.push(name, Value::Int(value));
        self
    }

    /// Adds an `f64` field by exact bit pattern (no decimal rounding).
    pub fn push_f64(&mut self, name: &str, value: f64) -> &mut Self {
        self.push(name, Value::Bits(value.to_bits()));
        self
    }

    /// Adds a short identifier field (`[A-Za-z0-9_.-]` only).
    pub fn push_str(&mut self, name: &str, value: &str) -> &mut Self {
        assert!(
            value
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-')),
            "key field value {value:?} must be [A-Za-z0-9_.-]"
        );
        self.push(name, Value::Text(value.to_string()));
        self
    }

    /// The canonical string: `name=value` pairs sorted by name, joined
    /// with `;`. Identical parameter sets render identically regardless
    /// of push order or intermediate re-serialization.
    pub fn canonical(&self) -> String {
        let mut sorted: Vec<&(String, Value)> = self.fields.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        sorted
            .iter()
            .map(|(n, v)| format!("{n}={}", v.render()))
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Parses a [`KeySpec::canonical`] string back into a spec; `None` on
    /// any malformed field. Round-trip contract:
    /// `parse(canonical()).canonical() == canonical()`.
    pub fn parse(text: &str) -> Option<KeySpec> {
        let mut spec = KeySpec::new();
        if text.is_empty() {
            return Some(spec);
        }
        for pair in text.split(';') {
            let (name, value) = pair.split_once('=')?;
            if name.is_empty()
                || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                || spec.fields.iter().any(|(n, _)| n == name)
            {
                return None;
            }
            spec.fields.push((name.to_string(), Value::parse(value)?));
        }
        Some(spec)
    }

    /// The content hash of the canonical string.
    pub fn key(&self) -> ArtifactKey {
        ArtifactKey(fnv1a(self.canonical().as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_order_does_not_change_key() {
        let mut a = KeySpec::new();
        a.push_int("n_bands", 24)
            .push_f64("ecut", 2.2)
            .push_str("sys", "si");
        let mut b = KeySpec::new();
        b.push_str("sys", "si")
            .push_f64("ecut", 2.2)
            .push_int("n_bands", 24);
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn canonical_round_trips_and_perturbations_differ() {
        let mut a = KeySpec::new();
        a.push_int("m", 1)
            .push_f64("delta", 0.05)
            .push_str("mode", "gpp");
        let text = a.canonical();
        let back = KeySpec::parse(&text).expect("parse");
        assert_eq!(back.canonical(), text);
        assert_eq!(back.key(), a.key());

        let mut b = KeySpec::new();
        b.push_int("m", 2)
            .push_f64("delta", 0.05)
            .push_str("mode", "gpp");
        assert_ne!(a.key(), b.key());
        // Even a 1-ulp float perturbation must change the key.
        let mut c = KeySpec::new();
        c.push_int("m", 1)
            .push_f64("delta", f64::from_bits(0.05f64.to_bits() + 1))
            .push_str("mode", "gpp");
        assert_ne!(a.key(), c.key());
    }

    #[test]
    fn parse_rejects_malformed_strings() {
        assert!(KeySpec::parse("a=i1;a=i2").is_none(), "duplicate field");
        assert!(KeySpec::parse("a=").is_none(), "empty value");
        assert!(KeySpec::parse("a=x9").is_none(), "unknown tag");
        assert!(KeySpec::parse("a=f123").is_none(), "short bit pattern");
        assert!(KeySpec::parse("=i1").is_none(), "empty name");
        assert!(KeySpec::parse("a&b=i1").is_none(), "bad name chars");
        assert!(KeySpec::parse("noequals").is_none());
    }

    #[test]
    fn hex_form_is_fixed_width() {
        let k = ArtifactKey(0x2a);
        assert_eq!(k.hex(), "000000000000002a");
        assert_eq!(k.to_string(), k.hex());
    }
}
