//! Integration tests of the distributed (simulated-MPI) execution paths:
//! the parallel decompositions must reproduce serial results exactly and
//! account their communication.

use berkeleygw_rs::comm::run_world;
use berkeleygw_rs::core::chi::{chi_distributed, ChiConfig, ChiEngine};
use berkeleygw_rs::core::coulomb::Coulomb;
use berkeleygw_rs::core::mtxel::Mtxel;
use berkeleygw_rs::core::sigma::diag::{gpp_sigma_diag, gpp_sigma_diag_distributed, KernelVariant};
use berkeleygw_rs::core::testkit;
use berkeleygw_rs::linalg::CMatrix;
use berkeleygw_rs::pwdft::{si_bulk, solve_bands};

#[test]
fn distributed_chi_equals_serial_for_any_world_size() {
    let sys = si_bulk(1, 2.2);
    let wfn = sys.wfn_sphere();
    let eps = sys.eps_sphere();
    let wf = solve_bands(&sys.crystal, &wfn, 24);
    let coulomb = Coulomb::bulk_for_cell(sys.crystal.lattice.volume());
    let cfg = ChiConfig {
        q0: coulomb.q0,
        ..ChiConfig::default()
    };
    let mtxel = Mtxel::new(&wfn, &eps);
    let serial = ChiEngine::new(&wf, &mtxel, cfg).chi_static();
    for world in [1usize, 2, 5] {
        let (results, stats) = run_world(world, |comm| {
            let mtxel = Mtxel::new(&wfn, &eps);
            chi_distributed(comm, &wf, &mtxel, cfg, &[0.0])[0]
                .as_slice()
                .to_vec()
        });
        for r in results {
            let chi = CMatrix::from_vec(serial.nrows(), serial.ncols(), r);
            assert!(
                chi.max_abs_diff(&serial) < 1e-10,
                "world {world}: {}",
                chi.max_abs_diff(&serial)
            );
        }
        if world > 1 {
            assert!(stats.iter().all(|s| s.bytes_sent > 0));
        }
    }
}

#[test]
fn sigma_pool_decomposition_is_exact_and_balanced() {
    let (ctx, _) = testkit::small_context();
    let grids: Vec<Vec<f64>> = ctx.sigma_energies.iter().map(|&e| vec![e]).collect();
    let serial = gpp_sigma_diag(&ctx, &grids, KernelVariant::Reference);
    let (results, _) = run_world(4, |comm| {
        let r = gpp_sigma_diag_distributed(comm, &ctx, &grids);
        (r.sigma, r.flops)
    });
    let total_flops: u64 = results.iter().map(|(_, f)| f).sum();
    assert_eq!(total_flops, serial.flops, "work must partition exactly");
    // load balance: no rank does more than ceil-share of the pair work
    let max_flops = results.iter().map(|(_, f)| *f).max().unwrap();
    assert!(
        (max_flops as f64) < serial.flops as f64 / 4.0 * 1.5,
        "imbalanced: {max_flops} of {}",
        serial.flops
    );
    for (sigma, _) in &results {
        for (srow, refrow) in sigma.iter().zip(&serial.sigma) {
            assert!((srow[0] - refrow[0]).abs() < 1e-9 * (1.0 + refrow[0].abs()));
        }
    }
}

#[test]
fn pools_of_pools_nested_split() {
    // 8 ranks -> 2 pools x 4 ranks; each pool independently reduces its
    // own Sigma slice — the paper's pool-over-elements layout.
    let (ctx, _) = testkit::small_context();
    let grids: Vec<Vec<f64>> = ctx.sigma_energies.iter().map(|&e| vec![e]).collect();
    let serial = gpp_sigma_diag(&ctx, &grids, KernelVariant::Reference);
    let (results, _) = run_world(8, |comm| {
        let pool_id = comm.rank() % 2;
        let pool = comm.split(pool_id as u64, comm.rank() as u64);
        // pool 0 handles Sigma bands {0, 1}, pool 1 handles {2, 3}
        let my_bands: Vec<usize> = (0..ctx.n_sigma()).filter(|s| s % 2 == pool_id).collect();
        let mut sub = ctx.clone();
        sub.m_tilde = my_bands.iter().map(|&s| ctx.m_tilde[s].clone()).collect();
        sub.sigma_bands = my_bands.iter().map(|&s| ctx.sigma_bands[s]).collect();
        sub.sigma_energies = my_bands.iter().map(|&s| ctx.sigma_energies[s]).collect();
        let sub_grids: Vec<Vec<f64>> = my_bands.iter().map(|&s| grids[s].clone()).collect();
        let r = gpp_sigma_diag_distributed(&pool, &sub, &sub_grids);
        (my_bands, r.sigma)
    });
    for (bands, sigma) in &results {
        for (i, &s) in bands.iter().enumerate() {
            assert!(
                (sigma[i][0] - serial.sigma[s][0]).abs() < 1e-9 * (1.0 + serial.sigma[s][0].abs()),
                "band {s}"
            );
        }
    }
}

#[test]
fn communication_volume_scales_with_matrix_size() {
    // allreduce volume of chi must grow ~ N_G^2.
    let sys = si_bulk(1, 2.2);
    let wfn = sys.wfn_sphere();
    let wf = solve_bands(&sys.crystal, &wfn, 20);
    let coulomb = Coulomb::bulk_for_cell(sys.crystal.lattice.volume());
    let cfg = ChiConfig {
        q0: coulomb.q0,
        ..ChiConfig::default()
    };
    let mut volumes = Vec::new();
    for ecut in [0.55, 1.1] {
        let eps = berkeleygw_rs::pwdft::GSphere::new(&sys.crystal.lattice, ecut);
        let n_g = eps.len();
        let (_, stats) = run_world(2, |comm| {
            let mtxel = Mtxel::new(&wfn, &eps);
            let _ = chi_distributed(comm, &wf, &mtxel, cfg, &[0.0]);
        });
        volumes.push((n_g, stats[0].bytes_sent));
    }
    let (n0, v0) = volumes[0];
    let (n1, v1) = volumes[1];
    let expected = (n1 as f64 / n0 as f64).powi(2);
    let measured = v1 as f64 / v0 as f64;
    assert!(
        (measured / expected - 1.0).abs() < 0.05,
        "comm volume ratio {measured} vs N_G^2 ratio {expected}"
    );
}
