//! FLOP-count models (paper Sec. 6, Eqs. 7-8, Table 3).
//!
//! The diag kernel's count is `alpha * N_Sigma N_b N_G^2 N_E` with an
//! architecture/compiler prefactor `alpha` measured by a profiler
//! (ROCm / Intel Advisor in the paper, our instrumented counters here);
//! the off-diag kernel is charged for its ZGEMMs only.

/// Architecture prefactor measured on Frontier (paper Sec. 6).
pub const ALPHA_FRONTIER: f64 = 83.50;
/// Architecture prefactor measured on Aurora (paper Sec. 6).
pub const ALPHA_AURORA: f64 = 94.27;

/// Eq. 7: estimated FLOPs of the GPP diag kernel.
pub fn gpp_diag_flops(alpha: f64, n_sigma: usize, n_b: usize, n_g: usize, n_e: usize) -> f64 {
    alpha * n_sigma as f64 * n_b as f64 * (n_g as f64).powi(2) * n_e as f64
}

/// Eq. 8: ZGEMM FLOPs of the GPP off-diag kernel.
pub fn gpp_offdiag_flops(n_b: usize, n_e: usize, n_sigma: usize, n_g: usize) -> f64 {
    let ns = n_sigma as f64;
    let ng = n_g as f64;
    2.0 * n_b as f64 * n_e as f64 * 8.0 * (ns * ng * ng + ng * ns * ns)
}

/// One row of a Table 3-style validation: estimated vs measured FLOPs.
#[derive(Clone, Copy, Debug)]
pub struct FlopRow {
    /// `N_Sigma`.
    pub n_sigma: usize,
    /// `N_b`.
    pub n_b: usize,
    /// `N_G`.
    pub n_g: usize,
    /// `N_E`.
    pub n_e: usize,
    /// Estimated TFLOP from the linear model.
    pub est_tflop: f64,
    /// Measured TFLOP (instrumented counters).
    pub meas_tflop: f64,
}

impl FlopRow {
    /// The paper's accuracy metric: `100 * (1 - |est - meas| / meas)`.
    pub fn accuracy_pct(&self) -> f64 {
        100.0 * (1.0 - (self.est_tflop - self.meas_tflop).abs() / self.meas_tflop)
    }
}

/// The paper's Table 3 rows (Frontier block then Aurora block), used to
/// cross-check the published linear relationship.
pub fn paper_table3() -> Vec<(char, FlopRow)> {
    let row = |m: char, ns, nb, ng, ne, est, meas| {
        (
            m,
            FlopRow {
                n_sigma: ns,
                n_b: nb,
                n_g: ng,
                n_e: ne,
                est_tflop: est,
                meas_tflop: meas,
            },
        )
    };
    vec![
        row('F', 2, 5_000, 3_911, 3, 38.32, 38.55),
        row('F', 4, 15_045, 26_529, 3, 10_609.67, 10_564.75),
        row('F', 8, 6_340, 11_075, 4, 2_077.88, 2_064.84),
        row('A', 2, 3_000, 11_075, 6, 416.27, 415.17),
        row('A', 1, 5_000, 11_075, 6, 346.89, 345.89),
        row('A', 1, 2_000, 11_075, 6, 138.76, 139.42),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq7_matches_paper_estimates() {
        // each Table 3 row's Est. column must equal Eq. 7 with the stated
        // machine prefactor (to rounding in the paper).
        for (m, row) in paper_table3() {
            let alpha = if m == 'F' {
                ALPHA_FRONTIER
            } else {
                ALPHA_AURORA
            };
            let est = gpp_diag_flops(alpha, row.n_sigma, row.n_b, row.n_g, row.n_e) / 1e12;
            assert!(
                (est - row.est_tflop).abs() / row.est_tflop < 0.01,
                "row {row:?}: eq7 gives {est}"
            );
        }
    }

    #[test]
    fn paper_accuracies_are_above_99_pct() {
        for (_, row) in paper_table3() {
            let acc = row.accuracy_pct();
            assert!(acc > 99.0 && acc <= 100.0, "accuracy {acc}");
        }
    }

    #[test]
    fn eq8_scaling() {
        let base = gpp_offdiag_flops(100, 10, 64, 1000);
        // doubling N_b doubles the count
        assert!((gpp_offdiag_flops(200, 10, 64, 1000) / base - 2.0).abs() < 1e-12);
        // N_G^2 dominates for N_G >> N_Sigma
        let big = gpp_offdiag_flops(100, 10, 64, 2000);
        assert!(big / base > 3.5 && big / base < 4.1);
    }
}
