//! Criterion micro-benchmarks of the core computational kernels:
//! GPP diag variants (the Table 4 programming-model comparison at micro
//! scale), the off-diag ZGEMM path, CHI_SUM, the FFT, and the dense
//! eigensolver behind the static subspace approximation.

use bgw_bench::build_setup;
use bgw_core::sigma::diag::{gpp_sigma_diag, KernelVariant};
use bgw_core::sigma::offdiag::gpp_sigma_offdiag;
use bgw_fft::{Direction, FftPlan};
use bgw_linalg::{eigh, matmul, CMatrix, GemmBackend, Op};
use bgw_num::{Complex64, UniformGrid};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_gpp_diag_variants(c: &mut Criterion) {
    let mut sys = bgw_pwdft::si_bulk(1, 2.6);
    sys.n_bands = 32;
    let setup = build_setup(sys, 4);
    let grids: Vec<Vec<f64>> = setup
        .ctx
        .sigma_energies
        .iter()
        .map(|&e| vec![e - 0.05, e, e + 0.05])
        .collect();
    let mut g = c.benchmark_group("gpp_diag");
    for (name, v) in [
        ("reference", KernelVariant::Reference),
        ("blocked", KernelVariant::Blocked),
        ("optimized", KernelVariant::Optimized),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(gpp_sigma_diag(&setup.ctx, &grids, v)))
        });
    }
    g.finish();
}

fn bench_gpp_offdiag(c: &mut Criterion) {
    let mut sys = bgw_pwdft::si_bulk(1, 2.6);
    sys.n_bands = 32;
    let setup = build_setup(sys, 4);
    let grid = UniformGrid::new(
        setup.ctx.sigma_energies[0] - 0.2,
        *setup.ctx.sigma_energies.last().unwrap() + 0.2,
        4,
    );
    c.bench_function("gpp_offdiag_zgemm", |b| {
        b.iter(|| {
            black_box(gpp_sigma_offdiag(
                &setup.ctx,
                &grid,
                GemmBackend::Parallel,
            ))
        })
    });
}

fn bench_zgemm(c: &mut Criterion) {
    let n = 96;
    let a = CMatrix::random(n, n, 1);
    let bm = CMatrix::random(n, n, 2);
    let mut g = c.benchmark_group("zgemm_96");
    for (name, be) in [
        ("naive", GemmBackend::Naive),
        ("blocked", GemmBackend::Blocked),
        ("parallel", GemmBackend::Parallel),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(matmul(&a, Op::None, &bm, Op::None, be)))
        });
    }
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let n = 729; // 3^6, pure mixed-radix
    let plan = FftPlan::new(n);
    let data: Vec<Complex64> = (0..n)
        .map(|i| Complex64::cis(i as f64 * 0.1))
        .collect();
    c.bench_function("fft_729", |b| {
        b.iter(|| {
            let mut x = data.clone();
            plan.process(&mut x, Direction::Forward);
            black_box(x)
        })
    });
}

fn bench_eigh(c: &mut Criterion) {
    let a = CMatrix::random_hermitian(64, 7);
    c.bench_function("eigh_64", |b| b.iter(|| black_box(eigh(&a))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gpp_diag_variants, bench_gpp_offdiag, bench_zgemm, bench_fft, bench_eigh
}
criterion_main!(benches);
