//! Regenerates paper Fig. 4: strong scaling of the full-frequency GW
//! Sigma across Perlmutter, Frontier, and Aurora (excluding I/O).
//!
//! Two layers, as in Fig. 6: (i) the FF Sigma kernel is *measured* locally
//! (full basis and static-subspace variants), establishing the subspace
//! speedup and the per-unit cost; (ii) the paper-size workload runs
//! through the calibrated time model on all three machines, where the
//! parallelism over self-energy elements gives near-ideal strong scaling
//! until the pool reduction bites — the paper's portable-scaling claim.

use bgw_bench::{build_setup, timed};
use bgw_core::chi::{ChiConfig, ChiEngine};
use bgw_core::epsilon::EpsilonInverse;
use bgw_core::mtxel::Mtxel;
use bgw_core::sigma::fullfreq::{ff_sigma_diag, ff_sigma_diag_subspace};
use bgw_core::subspace::Subspace;
use bgw_num::grid::semi_infinite_quadrature;
use bgw_perf::flopmodel::ALPHA_FRONTIER;
use bgw_perf::timemodel::{strong_scaling, Efficiencies, Kernel, SigmaWorkload};
use bgw_perf::{fmt_secs, Machine, Table};

fn main() {
    // ---- measured local FF Sigma ----------------------------------------
    let mut sys = bgw_pwdft::si_divacancy(1, 3.6);
    sys.ecut_eps_ry = sys.ecut_wfn_ry / 2.5;
    sys.n_bands = 80;
    let setup = build_setup(sys, 6);
    let (nodes_q, weights) = semi_infinite_quadrature(10, 2.0);
    let mtxel = Mtxel::new(&setup.wfn_sph, &setup.eps_sph);
    let cfg = ChiConfig {
        q0: setup.coulomb.q0,
        ..ChiConfig::default()
    };
    let engine = ChiEngine::new(&setup.wf, &mtxel, cfg);
    let (chis, _) = engine.chi_freqs(&nodes_q);
    let eps_ff = EpsilonInverse::build(&chis, &nodes_q, &setup.coulomb, &setup.eps_sph)
        .expect("dielectric matrix must be invertible");
    let grids: Vec<Vec<f64>> = setup
        .ctx
        .sigma_energies
        .iter()
        .map(|&e| vec![e - 0.05, e, e + 0.05])
        .collect();
    let (full, t_full) = timed(|| ff_sigma_diag(&setup.ctx, &eps_ff, &weights, &grids, 0.05));
    let n_eig = (setup.ctx.n_g() / 5).max(2);
    let sub = Subspace::from_chi0(&setup.chi0, &setup.vsqrt, n_eig);
    let (subr, t_sub) =
        timed(|| ff_sigma_diag_subspace(&setup.ctx, &eps_ff, &weights, &grids, 0.05, &sub));
    let max_dev = (0..setup.ctx.n_sigma())
        .map(|s| (full.sigma[s][1].re - subr.sigma[s][1].re).abs())
        .fold(0.0, f64::max);
    println!(
        "measured FF Sigma ({} bands, {} freqs): full-basis {} s (dim {}),\n\
         {}%-subspace {} s (dim {}), max deviation {:.2e} Ry\n",
        setup.ctx.n_sigma(),
        nodes_q.len(),
        fmt_secs(t_full),
        full.contracted_dim,
        (100 * n_eig) / setup.ctx.n_g(),
        fmt_secs(t_sub),
        subr.contracted_dim,
        max_dev,
    );

    // ---- modeled strong scaling on the three machines --------------------
    // FF Sigma with the subspace has the same parallel structure as the
    // GPP diag kernel (pools over N_Sigma, inner sums split), so the diag
    // time model applies with N_omega folded into the energy-grid factor.
    let w = SigmaWorkload {
        n_sigma: 128,
        n_b: 15_000,
        n_g: 26_529, // Si510 epsilon sphere
        n_e: 20,     // N_omega-weighted sampling
        alpha: ALPHA_FRONTIER,
    };
    let eff = Efficiencies::paper_anchored();
    for machine in [
        Machine::perlmutter(),
        Machine::frontier(),
        Machine::aurora(),
    ] {
        let max_nodes = if machine.name == "Perlmutter" {
            1024
        } else {
            4096
        };
        let mut nodes = vec![];
        let mut n = 16;
        while n <= max_nodes {
            nodes.push(n);
            n *= 2;
        }
        let series = strong_scaling(&machine, &nodes, &w, Kernel::Diag, &eff, false);
        let mut t = Table::new(
            &format!(
                "Fig. 4 (model): GW-FF Sigma strong scaling on {}",
                machine.name
            ),
            &[
                "# nodes",
                "GPUs",
                "seconds",
                "speedup",
                "ideal",
                "efficiency %",
            ],
        );
        let t0 = series[0].seconds;
        for p in &series {
            let ideal = p.nodes as f64 / nodes[0] as f64;
            let sp = t0 / p.seconds;
            t.row(&[
                p.nodes.to_string(),
                machine.gpus(p.nodes).to_string(),
                fmt_secs(p.seconds),
                format!("{sp:.2}"),
                format!("{ideal:.2}"),
                format!("{:.1}", 100.0 * sp / ideal),
            ]);
        }
        print!("{}", t.render());
        println!();
    }
    println!(
        "Shape check vs paper Fig. 4: portable near-ideal strong scaling on\n\
         all three machines (the abundant N_Sigma parallelism), with\n\
         efficiency tapering only when pools run out of elements — and the\n\
         static subspace makes the FF kernel only modestly more expensive\n\
         than GPP (measured above)."
    );
}
