//! Dyson's equation: quasiparticle energies from the self-energy (Eq. 1).
//!
//! Two solution modes, matching the paper's two Sigma kernels:
//! - **Diagonal**: per-band Newton / Z-factor solution of
//!   `E = E^MF + Re Sigma_ll(E)` from a few sampled energies (the standard
//!   quasiparticle approximation, `N_E ~ O(1)-O(10)`, Sec. 6).
//! - **Full matrix**: self-consistent eigenvalues of
//!   `H^QP(E) = diag(E^MF) + (Sigma(E) + Sigma(E)^dagger)/2` on the
//!   off-diag kernel's uniform energy grid — "full solutions of the Dyson's
//!   equation" (Sec. 5.6).

use crate::sigma::diag::SigmaDiagResult;
use crate::sigma::offdiag::SigmaOffdiagResult;
use bgw_linalg::{eigvalsh, CMatrix};
use bgw_num::c64;

/// Quasiparticle solution for one band.
#[derive(Clone, Copy, Debug)]
pub struct QpState {
    /// Mean-field energy (Ry).
    pub e_mf: f64,
    /// `Re Sigma(E^MF)` (Ry).
    pub sigma_mf: f64,
    /// Renormalization factor `Z = 1 / (1 - dSigma/dE)`, clamped to (0, 1].
    pub z: f64,
    /// Quasiparticle energy (Ry).
    pub e_qp: f64,
}

/// Solves the diagonal quasiparticle equation for every band of a diag
/// result. Each band's grid must contain at least 2 points bracketing its
/// `E^MF` (3-point grids centered on `E^MF` are the usual choice).
pub fn solve_qp_diag(e_mf: &[f64], diag: &SigmaDiagResult) -> Vec<QpState> {
    assert_eq!(e_mf.len(), diag.sigma.len());
    e_mf.iter()
        .zip(diag.sigma.iter().zip(&diag.e_grids))
        .map(|(&emf, (sig, grid))| solve_one(emf, grid, sig))
        .collect()
}

fn solve_one(e_mf: f64, grid: &[f64], sigma: &[f64]) -> QpState {
    assert!(grid.len() >= 2, "need >= 2 energy samples");
    assert_eq!(grid.len(), sigma.len());
    // Interpolate Sigma and dSigma/dE at E^MF from the sampled grid.
    let (sig_mf, dsig) = interp_with_slope(grid, sigma, e_mf);
    // Z factor; clamp to (0, 1] as production GW codes do when the linear
    // expansion misbehaves near poles.
    let mut z = 1.0 / (1.0 - dsig);
    if !(0.0..=1.0).contains(&z) {
        z = if z > 1.0 { 1.0 } else { 0.3 };
    }
    QpState {
        e_mf,
        sigma_mf: sig_mf,
        z,
        e_qp: e_mf + z * sig_mf,
    }
}

/// Linear interpolation of `f` and its slope at `x` from samples.
fn interp_with_slope(xs: &[f64], fs: &[f64], x: f64) -> (f64, f64) {
    let n = xs.len();
    if n == 2 {
        let slope = (fs[1] - fs[0]) / (xs[1] - xs[0]);
        return (fs[0] + slope * (x - xs[0]), slope);
    }
    // locate the nearest interval
    let mut i = 0;
    while i + 2 < n && xs[i + 1] < x {
        i += 1;
    }
    let slope = (fs[i + 1] - fs[i]) / (xs[i + 1] - xs[i]);
    (fs[i] + slope * (x - xs[i]), slope)
}

/// Full-matrix quasiparticle energies from the off-diag kernel result.
///
/// For each grid energy `E_i` the Hermitianized quasiparticle Hamiltonian
/// is diagonalized, giving eigenvalue curves `lambda_k(E_i)`; each state's
/// QP energy is the self-consistent point `lambda_k(E) = E` found by
/// linear interpolation between grid points (clamped to the grid ends).
pub fn solve_qp_full(e_mf: &[f64], off: &SigmaOffdiagResult) -> Vec<f64> {
    let ns = e_mf.len();
    assert_eq!(off.sigma[0].nrows(), ns);
    let ne = off.e_grid.len();
    // lambda[k][i]: k-th eigenvalue at grid energy i.
    let mut lambda = vec![vec![0.0; ne]; ns];
    for (i, sig) in off.sigma.iter().enumerate() {
        let mut h = CMatrix::from_diag(&e_mf.iter().map(|&e| c64(e, 0.0)).collect::<Vec<_>>());
        // Hermitianized Sigma(E_i)
        for a in 0..ns {
            for b in 0..ns {
                h[(a, b)] += (sig[(a, b)] + sig[(b, a)].conj()).scale(0.5);
            }
        }
        let vals = eigvalsh(&h);
        for k in 0..ns {
            lambda[k][i] = vals[k];
        }
    }
    // Self-consistency per eigenvalue branch. The GPP kernel has poles on
    // the real axis, so lambda_k(E) can cross E several times; the
    // physical quasiparticle is the crossing nearest the one-shot estimate
    // lambda_k evaluated at the mean-field energy.
    (0..ns)
        .map(|k| {
            let g = &off.e_grid.points;
            let f: Vec<f64> = g.iter().zip(&lambda[k]).map(|(&e, &l)| l - e).collect();
            let e0 = lambda[k][off.e_grid.nearest(e_mf[k])];
            let mut best: Option<f64> = None;
            for i in 0..ne - 1 {
                let crossing = if f[i] == 0.0 {
                    Some(g[i])
                } else if f[i] * f[i + 1] < 0.0 {
                    let t = f[i] / (f[i] - f[i + 1]);
                    Some(g[i] + t * (g[i + 1] - g[i]))
                } else {
                    None
                };
                if let Some(c) = crossing {
                    if best.is_none_or(|b| (c - e0).abs() < (b - e0).abs()) {
                        best = Some(c);
                    }
                }
            }
            best.unwrap_or_else(|| {
                // No crossing inside the window: take the endpoint with the
                // smaller residual (state outside the sampled range).
                if f[0].abs() < f[ne - 1].abs() {
                    lambda[k][0]
                } else {
                    lambda[k][ne - 1]
                }
            })
        })
        .collect()
}

/// Quasiparticle gap (Ry) between two solved states.
pub fn qp_gap(states: &[QpState], homo_pos: usize, lumo_pos: usize) -> f64 {
    states[lumo_pos].e_qp - states[homo_pos].e_qp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sigma::diag::{gpp_sigma_diag, KernelVariant};
    use crate::sigma::offdiag::gpp_sigma_offdiag;
    use crate::testkit;
    use bgw_linalg::GemmBackend;
    use bgw_num::UniformGrid;

    #[test]
    fn newton_solves_linear_sigma_exactly() {
        // Sigma(E) = 0.2 - 0.5 (E - E0): fixed point of E = E0 + Sigma(E)
        // is E0 + 0.2/1.5; the one-shot Z-factor update gives exactly that.
        let e0 = 1.0;
        let grid = vec![e0 - 0.1, e0, e0 + 0.1];
        let sigma: Vec<f64> = grid.iter().map(|&e| 0.2 - 0.5 * (e - e0)).collect();
        let st = solve_one(e0, &grid, &sigma);
        assert!((st.sigma_mf - 0.2).abs() < 1e-12);
        assert!((st.z - 1.0 / 1.5).abs() < 1e-12);
        assert!((st.e_qp - (e0 + 0.2 / 1.5)).abs() < 1e-12);
    }

    #[test]
    fn z_factor_is_clamped() {
        // pathological positive slope > 1 -> clamp
        let grid = vec![0.0, 1.0];
        let sigma = vec![0.0, 3.0];
        let st = solve_one(0.5, &grid, &sigma);
        assert!(st.z > 0.0 && st.z <= 1.0);
    }

    #[test]
    fn gw_opens_the_gap() {
        // The headline physics check: QP gap > mean-field gap.
        let (ctx, setup) = testkit::small_context();
        let delta = 0.05;
        let grids: Vec<Vec<f64>> = ctx
            .sigma_energies
            .iter()
            .map(|&e| vec![e - delta, e, e + delta])
            .collect();
        let diag = gpp_sigma_diag(&ctx, &grids, KernelVariant::Optimized);
        let states = solve_qp_diag(&ctx.sigma_energies, &diag);
        let mf_gap = setup.wf.gap_ry();
        let qp = qp_gap(&states, ctx.homo_pos(), ctx.lumo_pos());
        assert!(
            qp > mf_gap,
            "QP gap {qp} Ry must exceed mean-field gap {mf_gap} Ry"
        );
        for st in &states {
            assert!(st.z > 0.0 && st.z <= 1.0, "Z out of range: {}", st.z);
            assert!(st.e_qp.is_finite());
        }
    }

    #[test]
    fn full_solve_tracks_diag_for_weak_offdiagonals() {
        let (ctx, _) = testkit::small_context();
        let lo = ctx.sigma_energies[0] - 3.0;
        let hi = ctx.sigma_energies[3] + 3.0;
        let grid = UniformGrid::new(lo, hi, 24);
        let off = gpp_sigma_offdiag(&ctx, &grid, GemmBackend::Parallel);
        let full = solve_qp_full(&ctx.sigma_energies, &off);
        assert_eq!(full.len(), ctx.n_sigma());
        for (k, &e) in full.iter().enumerate() {
            assert!(e.is_finite(), "state {k}");
            // QP energies stay within the sampled window
            assert!(e >= lo - 1.0 && e <= hi + 1.0);
        }
        // the full solution stays insulating and lands near the diag
        // solution (off-diagonal mixing shifts it, but not wildly)
        let gap_qp = full[ctx.lumo_pos()] - full[ctx.homo_pos()];
        assert!(gap_qp > 0.0, "full Dyson gap closed: {gap_qp}");
        let grids: Vec<Vec<f64>> = ctx
            .sigma_energies
            .iter()
            .map(|&e| vec![e - 0.05, e, e + 0.05])
            .collect();
        let diag = gpp_sigma_diag(&ctx, &grids, KernelVariant::Reference);
        let states = solve_qp_diag(&ctx.sigma_energies, &diag);
        for (k, st) in states.iter().enumerate() {
            assert!(
                (full[k] - st.e_qp).abs() < 0.3,
                "state {k}: full {} vs diag {}",
                full[k],
                st.e_qp
            );
        }
    }
}
