//! Checkpoint/restart drivers for the GW workflows.
//!
//! Leadership-class GW runs burn node-hours by the hundred thousand; a
//! crash at hour N must not restart the pipeline from hour zero. These
//! drivers wrap [`run_gpp_gw`](crate::workflow::run_gpp_gw) and
//! [`run_evgw`](crate::workflow::run_evgw) with periodic snapshots of the
//! expensive accumulated state — partial CHI sums, inverted dielectric
//! blocks, per-band Sigma values, self-consistency iterates — through the
//! checksummed BGWR checkpoint records of `bgw-io`. A restarted run reads
//! the newest *valid* checkpoint (corrupt/truncated residue of the crash
//! is skipped) and resumes mid-stage; the cheap deterministic prefix
//! (mean-field solve, Coulomb setup, MTXEL caches) is recomputed, so only
//! O(N^3)-and-up work is snapshotted.
//!
//! The restart contract, enforced by `tests/restart.rs`: a run killed at
//! any checkpoint boundary and resumed reproduces the uninterrupted run's
//! quasiparticle energies to 1e-10.

use crate::chi::{ChiConfig, ChiEngine, ChiTimings};
use crate::coulomb::Coulomb;
use crate::dyson::{qp_gap, solve_qp_diag};
use crate::epsilon::EpsilonInverse;
use crate::gpp::GppModel;
use crate::mtxel::Mtxel;
use crate::sigma::diag::{gpp_sigma_diag, SigmaDiagResult};
use crate::sigma::SigmaContext;
use crate::workflow::{EvGwResults, GwConfig, GwResults, GwTimings};
use bgw_io::{read_latest_checkpoint, write_checkpoint, Checkpoint, IoError};
use bgw_linalg::CMatrix;
use bgw_pwdft::{charge_density_g, solve_bands, ModelSystem};
use std::path::PathBuf;
use std::time::Instant;

/// Stage markers stored in [`Checkpoint::stage`]. The numeric values are
/// part of the on-disk format: renumbering breaks old checkpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GwStage {
    /// CHI accumulation in progress; `step` = valence chunks summed,
    /// matrix 0 = the partial `chi(0)` accumulator.
    ChiPartial = 1,
    /// Dielectric inversion finished; matrix 0 = `eps~^{-1}(0)`.
    EpsilonDone = 2,
    /// Sigma evaluation in progress; `step` = Sigma bands done, matrix 0 =
    /// `eps~^{-1}(0)`, meta = flattened per-band Sigma values + flops.
    SigmaPartial = 3,
    /// Self-consistent (evGW) iteration finished; `step` = iterations,
    /// meta = current QP energies then the gap history.
    EvGwIter = 4,
    /// Screening artifact record used by the `bgw-serve` artifact store:
    /// matrix 0 = static `eps~^{-1}`, matrices 1.. = full-frequency
    /// `eps~^{-1}(omega_i)` blocks, meta = quadrature nodes then weights.
    WScreening = 5,
}

/// When and where to checkpoint.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Directory for `ckpt_NNNNNN.bgwr` files (created on first write).
    pub dir: PathBuf,
    /// Valence bands accumulated between CHI checkpoints. `None` uses the
    /// run's `nv_block`, which keeps the chunked accumulation identical to
    /// the uninterrupted [`ChiEngine`] sweep.
    pub chi_stride: Option<usize>,
    /// Test hook simulating a kill: abort with
    /// [`RestartError::Aborted`] immediately *after* this many checkpoint
    /// writes, leaving a valid on-disk state to resume from.
    pub abort_after_writes: Option<usize>,
}

impl CheckpointPolicy {
    /// Checkpoint into `dir` with default stride and no injected abort.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            chi_stride: None,
            abort_after_writes: None,
        }
    }
}

/// Errors from a checkpointed run.
#[derive(Debug)]
pub enum RestartError {
    /// Checkpoint file traffic failed.
    Io(IoError),
    /// The [`CheckpointPolicy::abort_after_writes`] kill switch fired.
    Aborted {
        /// Checkpoint writes completed before the abort.
        writes: usize,
    },
    /// The dielectric matrix could not be inverted — an application
    /// condition surfaced as data (the on-disk checkpoints up to the CHI
    /// stage stay valid and resumable), not a panic that would discard
    /// them.
    Epsilon(crate::epsilon::EpsilonError),
    /// A checkpoint decoded cleanly (checksums passed) but its payload
    /// does not fit the run resuming from it: a missing or mis-shaped
    /// matrix, a truncated metadata table, or a step count inconsistent
    /// with the stored data. Stale residue from a different system or a
    /// partially rewritten record degrades to this typed error instead of
    /// an index-out-of-bounds panic deep inside the resume path.
    Malformed {
        /// Which resume path rejected the record (`"chi"`, `"epsilon"`,
        /// `"sigma"`, `"evgw"`).
        stage: &'static str,
        /// What failed to validate.
        reason: String,
    },
}

impl std::fmt::Display for RestartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestartError::Io(e) => write!(f, "checkpoint io: {e}"),
            RestartError::Aborted { writes } => {
                write!(
                    f,
                    "aborted after {writes} checkpoint writes (injected kill)"
                )
            }
            RestartError::Epsilon(e) => write!(f, "epsilon stage: {e}"),
            RestartError::Malformed { stage, reason } => {
                write!(f, "malformed checkpoint ({stage}): {reason}")
            }
        }
    }
}

impl std::error::Error for RestartError {}

impl From<IoError> for RestartError {
    fn from(e: IoError) -> Self {
        RestartError::Io(e)
    }
}

impl From<crate::epsilon::EpsilonError> for RestartError {
    fn from(e: crate::epsilon::EpsilonError) -> Self {
        RestartError::Epsilon(e)
    }
}

/// Bookkeeping for one checkpointed invocation: monotonic file indices and
/// the injected-kill countdown.
struct CkptWriter {
    policy: CheckpointPolicy,
    next_index: u64,
    writes: usize,
    t_checkpoint: f64,
}

impl CkptWriter {
    fn write(&mut self, ckpt: &Checkpoint) -> Result<(), RestartError> {
        let _s = bgw_trace::span!("workflow.checkpoint");
        let t = Instant::now();
        write_checkpoint(&self.policy.dir, self.next_index, ckpt)?;
        self.t_checkpoint += t.elapsed().as_secs_f64();
        self.next_index += 1;
        self.writes += 1;
        if let Some(limit) = self.policy.abort_after_writes {
            if self.writes >= limit {
                return Err(RestartError::Aborted {
                    writes: self.writes,
                });
            }
        }
        Ok(())
    }
}

/// State recovered from disk when a GPP run resumes.
enum GppResume {
    /// Nothing usable on disk: start from scratch.
    Fresh,
    /// CHI partially accumulated over the first `chunks_done` chunks.
    Chi { chunks_done: u64, acc: CMatrix },
    /// Epsilon inverted; Sigma not started.
    Epsilon { inv: CMatrix },
    /// Sigma evaluated for the first `bands_done` bands.
    Sigma {
        inv: CMatrix,
        bands_done: u64,
        sigma: Vec<Vec<f64>>,
        flops: u64,
    },
}

/// A checkpoint matrix must match the G-sphere of the run resuming from
/// it; anything else is residue from a different system or cutoff.
fn check_square(m: &CMatrix, ng: usize, stage: &'static str) -> Result<(), RestartError> {
    if m.nrows() != ng || m.ncols() != ng {
        return Err(RestartError::Malformed {
            stage,
            reason: format!(
                "matrix is {}x{}, this run needs {ng}x{ng}",
                m.nrows(),
                m.ncols()
            ),
        });
    }
    Ok(())
}

fn classify_gpp(
    found: Option<(u64, Checkpoint)>,
    ng: usize,
    n_chunks: usize,
) -> Result<(GppResume, u64), RestartError> {
    let Some((idx, ck)) = found else {
        return Ok((GppResume::Fresh, 0));
    };
    let resume = match ck.stage {
        s if s == GwStage::ChiPartial as u64 => {
            let acc = ck
                .matrices
                .into_iter()
                .next()
                .ok_or(RestartError::Malformed {
                    stage: "chi",
                    reason: "record carries no chi accumulator matrix".into(),
                })?;
            check_square(&acc, ng, "chi")?;
            if ck.step as usize > n_chunks {
                return Err(RestartError::Malformed {
                    stage: "chi",
                    reason: format!(
                        "claims {} valence chunks accumulated, this run only has {n_chunks}",
                        ck.step
                    ),
                });
            }
            GppResume::Chi {
                chunks_done: ck.step,
                acc,
            }
        }
        s if s == GwStage::EpsilonDone as u64 => {
            let inv = ck
                .matrices
                .into_iter()
                .next()
                .ok_or(RestartError::Malformed {
                    stage: "epsilon",
                    reason: "record carries no inverse dielectric matrix".into(),
                })?;
            check_square(&inv, ng, "epsilon")?;
            GppResume::Epsilon { inv }
        }
        s if s == GwStage::SigmaPartial as u64 => {
            let inv = ck
                .matrices
                .into_iter()
                .next()
                .ok_or(RestartError::Malformed {
                    stage: "sigma",
                    reason: "record carries no inverse dielectric matrix".into(),
                })?;
            check_square(&inv, ng, "sigma")?;
            // meta = [n_grid, flops, sigma values band-major]
            if ck.meta.len() < 2 {
                return Err(RestartError::Malformed {
                    stage: "sigma",
                    reason: format!("metadata has {} values, header needs 2", ck.meta.len()),
                });
            }
            if !(0.0..=1e9).contains(&ck.meta[0]) || !(0.0..=f64::MAX).contains(&ck.meta[1]) {
                return Err(RestartError::Malformed {
                    stage: "sigma",
                    reason: format!(
                        "nonsense header: n_grid = {}, flops = {}",
                        ck.meta[0], ck.meta[1]
                    ),
                });
            }
            let n_grid = ck.meta[0] as usize;
            let flops = ck.meta[1] as u64;
            let bands_done = ck.step as usize;
            let need = 2 + bands_done * n_grid.max(1);
            if ck.meta.len() < need {
                return Err(RestartError::Malformed {
                    stage: "sigma",
                    reason: format!(
                        "sigma table truncated: {} bands x {n_grid} energies needs {} \
                         meta values, record has {}",
                        bands_done,
                        need,
                        ck.meta.len()
                    ),
                });
            }
            let vals = &ck.meta[2..];
            let sigma: Vec<Vec<f64>> = vals
                .chunks_exact(n_grid.max(1))
                .take(bands_done)
                .map(|c| c.to_vec())
                .collect();
            GppResume::Sigma {
                inv,
                bands_done: ck.step,
                sigma,
                flops,
            }
        }
        _ => GppResume::Fresh, // unknown stage (e.g. evGW residue)
    };
    Ok((resume, idx + 1))
}

/// [`run_gpp_gw`](crate::workflow::run_gpp_gw) with checkpoint/restart.
///
/// On entry the newest valid checkpoint under `policy.dir` (if any) is
/// loaded and the pipeline resumes after it; on success the results are
/// identical to the uninterrupted driver to better than 1e-10 in every QP
/// energy. Checkpoints are written after every `chi_stride` valence bands
/// of CHI accumulation, after the dielectric inversion, and after each
/// Sigma band.
pub fn run_gpp_gw_checkpointed(
    system: &ModelSystem,
    cfg: &GwConfig,
    policy: &CheckpointPolicy,
) -> Result<GwResults, RestartError> {
    let mut timings = GwTimings::default();
    let counters0 = bgw_perf::counters::snapshot();
    let wfn_sph = system.wfn_sphere();
    let eps_sph = system.eps_sphere();

    let t = Instant::now();
    let wf = solve_bands(&system.crystal, &wfn_sph, system.n_bands.min(wfn_sph.len()));
    timings.t_meanfield = t.elapsed().as_secs_f64();

    let coulomb = if cfg.slab {
        Coulomb::slab(
            system.crystal.lattice.a[2][2],
            system.crystal.lattice.volume(),
        )
    } else {
        Coulomb::bulk_for_cell(system.crystal.lattice.volume())
    };
    let mtxel = Mtxel::new(&wfn_sph, &eps_sph);
    let chi_cfg = ChiConfig {
        q0: coulomb.q0,
        ..cfg.chi
    };
    let engine = ChiEngine::new(&wf, &mtxel, chi_cfg);
    let ng = engine.n_g();
    let stride = policy.chi_stride.unwrap_or(chi_cfg.nv_block).max(1);

    let t_read = Instant::now();
    let n_chunks = wf.n_valence.div_ceil(stride);
    let (resume, next_index) = classify_gpp(read_latest_checkpoint(&policy.dir)?, ng, n_chunks)?;
    let mut writer = CkptWriter {
        policy: policy.clone(),
        next_index,
        writes: 0,
        t_checkpoint: t_read.elapsed().as_secs_f64(),
    };

    // ---- CHI accumulation, chunk by chunk -------------------------------
    let valence: Vec<usize> = (0..wf.n_valence).collect();
    let chunks: Vec<&[usize]> = valence.chunks(stride).collect();
    let (mut chi0, start_chunk, mut have_inv) = match &resume {
        GppResume::Fresh => (CMatrix::zeros(ng, ng), 0usize, None),
        GppResume::Chi { chunks_done, acc } => (acc.clone(), *chunks_done as usize, None),
        GppResume::Epsilon { inv } => (CMatrix::zeros(0, 0), chunks.len(), Some(inv.clone())),
        GppResume::Sigma { inv, .. } => (CMatrix::zeros(0, 0), chunks.len(), Some(inv.clone())),
    };
    if start_chunk < chunks.len() {
        for (ci, chunk) in chunks.iter().enumerate().skip(start_chunk) {
            let t = Instant::now();
            let mut ct = ChiTimings::default();
            let partial = engine
                .chi_freqs_subset(&[0.0], Some(chunk), &mut ct)
                .pop()
                .unwrap();
            for (a, b) in chi0.as_mut_slice().iter_mut().zip(partial.as_slice()) {
                *a += *b;
            }
            timings.t_chi += t.elapsed().as_secs_f64();
            writer.write(&Checkpoint {
                stage: GwStage::ChiPartial as u64,
                step: (ci + 1) as u64,
                meta: vec![],
                matrices: vec![chi0.clone()],
            })?;
        }
    }

    // ---- Epsilon inversion ---------------------------------------------
    let vsqrt = coulomb.sqrt_on_sphere(&eps_sph);
    let eps_inv = match have_inv.take() {
        Some(inv) => EpsilonInverse::from_parts(vec![0.0], vec![inv], vsqrt.clone()),
        None => {
            let t = Instant::now();
            let built = EpsilonInverse::build(&[chi0], &[0.0], &coulomb, &eps_sph)?;
            timings.t_epsilon = t.elapsed().as_secs_f64();
            writer.write(&Checkpoint {
                stage: GwStage::EpsilonDone as u64,
                step: 0,
                meta: vec![],
                matrices: vec![built.inv[0].clone()],
            })?;
            built
        }
    };
    let eps_macro = eps_inv.macroscopic_constant();

    // ---- Sigma, band by band -------------------------------------------
    let rho = charge_density_g(&wf, &wfn_sph);
    let gpp = GppModel::new(
        &eps_inv,
        &eps_sph,
        &wfn_sph,
        &rho,
        system.crystal.lattice.volume(),
    );
    let nv = wf.n_valence;
    let k = cfg.bands_around_gap.max(1);
    let lo = nv.saturating_sub(k);
    let hi = (nv + k).min(wf.n_bands());
    let sigma_bands: Vec<usize> = (lo..hi).collect();

    let t = Instant::now();
    let ctx = SigmaContext::build(&wf, &mtxel, gpp, &vsqrt, &sigma_bands, coulomb.q0);
    timings.t_mtxel_sigma = t.elapsed().as_secs_f64();

    let d = cfg.sampling_delta_ry;
    let grids: Vec<Vec<f64>> = ctx
        .sigma_energies
        .iter()
        .map(|&e| vec![e - d, e, e + d])
        .collect();
    let n_grid = grids.first().map_or(0, |g| g.len());
    let dims = crate::workflow::SigmaDims {
        n_sigma: ctx.n_sigma(),
        n_b: ctx.n_b(),
        n_g: ctx.n_g(),
        n_e: n_grid,
    };

    let (mut sigma, mut flops, start_band) = match resume {
        GppResume::Sigma {
            sigma,
            flops,
            bands_done,
            ..
        } => (sigma, flops, bands_done as usize),
        _ => (Vec::new(), 0u64, 0usize),
    };
    let eps_inv_mat = eps_inv.inv[0].clone();
    for s in start_band..ctx.n_sigma() {
        let t = Instant::now();
        let one = band_slice(&ctx, s);
        let r = gpp_sigma_diag(&one, &grids[s..s + 1], cfg.variant);
        timings.t_sigma += t.elapsed().as_secs_f64();
        sigma.push(r.sigma.into_iter().next().unwrap());
        flops += r.flops;
        let mut meta = vec![n_grid as f64, flops as f64];
        for band in &sigma {
            meta.extend_from_slice(band);
        }
        writer.write(&Checkpoint {
            stage: GwStage::SigmaPartial as u64,
            step: (s + 1) as u64,
            meta,
            matrices: vec![eps_inv_mat.clone()],
        })?;
    }

    let diag = SigmaDiagResult {
        sigma,
        e_grids: grids,
        seconds: timings.t_sigma,
        flops,
    };
    let states = solve_qp_diag(&ctx.sigma_energies, &diag);
    let gap_qp = qp_gap(&states, ctx.homo_pos(), ctx.lumo_pos());
    timings.t_checkpoint = writer.t_checkpoint;
    timings.substrate = counters0.delta(&bgw_perf::counters::snapshot());
    Ok(GwResults {
        sigma_bands,
        states,
        gap_mf_ry: wf.gap_ry(),
        gap_qp_ry: gap_qp,
        eps_macro,
        timings,
        sigma_flops: diag.flops,
        dims,
    })
}

/// A one-band view of a [`SigmaContext`]: the checkpoint unit of the Sigma
/// stage (and the preemption unit of the `bgw-serve` loop). Evaluating the
/// slices in order reproduces the full-context kernel exactly (each band's
/// sum is independent).
pub fn band_slice(ctx: &SigmaContext, s: usize) -> SigmaContext {
    SigmaContext {
        m_tilde: vec![ctx.m_tilde[s].clone()],
        energies: ctx.energies.clone(),
        n_occ: ctx.n_occ,
        gpp: ctx.gpp.clone(),
        sigma_bands: vec![ctx.sigma_bands[s]],
        sigma_energies: vec![ctx.sigma_energies[s]],
    }
}

/// [`run_evgw`](crate::workflow::run_evgw) with per-iteration
/// checkpoint/restart. The screening prefix (CHI, epsilon, Sigma context)
/// is deterministic and recomputed on resume; only the self-consistency
/// iterate (QP energies + gap history) is snapshotted, after every
/// iteration.
pub fn run_evgw_checkpointed(
    system: &ModelSystem,
    cfg: &GwConfig,
    max_iter: usize,
    tol_ry: f64,
    policy: &CheckpointPolicy,
) -> Result<EvGwResults, RestartError> {
    let wfn_sph = system.wfn_sphere();
    let eps_sph = system.eps_sphere();
    let wf = solve_bands(&system.crystal, &wfn_sph, system.n_bands.min(wfn_sph.len()));
    let coulomb = Coulomb::bulk_for_cell(system.crystal.lattice.volume());
    let mtxel = Mtxel::new(&wfn_sph, &eps_sph);
    let chi_cfg = ChiConfig {
        q0: coulomb.q0,
        ..cfg.chi
    };
    let chi0 = ChiEngine::new(&wf, &mtxel, chi_cfg).chi_static();
    let eps_inv = EpsilonInverse::build(&[chi0], &[0.0], &coulomb, &eps_sph)?;
    let rho = charge_density_g(&wf, &wfn_sph);
    let gpp = GppModel::new(
        &eps_inv,
        &eps_sph,
        &wfn_sph,
        &rho,
        system.crystal.lattice.volume(),
    );
    let vsqrt = coulomb.sqrt_on_sphere(&eps_sph);
    let nv = wf.n_valence;
    let k = cfg.bands_around_gap.max(1);
    let sigma_bands: Vec<usize> = (nv.saturating_sub(k)..(nv + k).min(wf.n_bands())).collect();
    let ctx = SigmaContext::build(&wf, &mtxel, gpp, &vsqrt, &sigma_bands, coulomb.q0);
    let homo = ctx.homo_pos();
    let lumo = ctx.lumo_pos();
    let n_sigma = ctx.n_sigma();

    // Resume the iterate if a valid evGW checkpoint exists.
    let found = read_latest_checkpoint(&policy.dir)?;
    let (mut e_qp, mut gap_history, mut iterations, next_index) = match found {
        Some((idx, ck)) if ck.stage == GwStage::EvGwIter as u64 => {
            // meta = [e_qp per sigma band, gap history: one entry per
            // completed iteration]. Anything else is residue from a
            // different band set or a half-rewritten record.
            let expect = n_sigma + ck.step as usize;
            if ck.meta.len() != expect {
                return Err(RestartError::Malformed {
                    stage: "evgw",
                    reason: format!(
                        "iterate has {} meta values; step {} with {n_sigma} sigma bands \
                         needs exactly {expect}",
                        ck.meta.len(),
                        ck.step
                    ),
                });
            }
            let e_qp = ck.meta[..n_sigma].to_vec();
            if e_qp.iter().any(|e| !e.is_finite()) {
                return Err(RestartError::Malformed {
                    stage: "evgw",
                    reason: "resumed QP energies contain non-finite values".into(),
                });
            }
            let hist = ck.meta[n_sigma..].to_vec();
            (e_qp, hist, ck.step as usize, idx + 1)
        }
        Some((idx, _)) => (ctx.sigma_energies.clone(), Vec::new(), 0, idx + 1),
        None => (ctx.sigma_energies.clone(), Vec::new(), 0, 0),
    };
    let mut writer = CkptWriter {
        policy: policy.clone(),
        next_index,
        writes: 0,
        t_checkpoint: 0.0,
    };

    let damping = 0.6;
    while iterations < max_iter {
        iterations += 1;
        let grids: Vec<Vec<f64>> = e_qp.iter().map(|&e| vec![e]).collect();
        let diag = gpp_sigma_diag(&ctx, &grids, cfg.variant);
        let mut max_delta: f64 = 0.0;
        for (s, e) in e_qp.iter_mut().enumerate() {
            let target = ctx.sigma_energies[s] + diag.sigma[s][0];
            let new = *e + damping * (target - *e);
            max_delta = max_delta.max((new - *e).abs());
            *e = new;
        }
        gap_history.push(e_qp[lumo] - e_qp[homo]);
        let mut meta = e_qp.clone();
        meta.extend_from_slice(&gap_history);
        writer.write(&Checkpoint {
            stage: GwStage::EvGwIter as u64,
            step: iterations as u64,
            meta,
            matrices: vec![],
        })?;
        if max_delta < tol_ry && iterations > 1 {
            break;
        }
    }
    let gap_ry = *gap_history.last().ok_or(RestartError::Malformed {
        stage: "evgw",
        reason: "run finished with an empty gap history \
                 (zero iterations performed and nothing resumed)"
            .into(),
    })?;
    Ok(EvGwResults {
        gap_ry,
        gap_history,
        iterations,
        e_qp,
    })
}
