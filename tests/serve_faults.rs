//! Fault-injection battery for the serving loop (DESIGN.md Sec. 15):
//! a seeded `FaultPlan` is threaded through [`ServeCore`] and consulted
//! once per request evaluation op. Crashes re-enqueue only the affected
//! request, transients retry with bounded backoff, corruption poisons the
//! *stored* artifact (which the checksummed reader must catch later —
//! never a wrong hit), and no partial record is ever visible to a later
//! cache hit.

use berkeleygw_rs::comm::FaultPlan;
use berkeleygw_rs::core::{run_gpp_gw, GwResults};
use berkeleygw_rs::perf::counters::{self, exclusive_test_guard};
use berkeleygw_rs::serve::{
    zipf_stream, GwRequest, Payload, RequestKind, ServeConfig, ServeCore, ServeError, ServeEvent,
    StructureSpec, TrafficConfig,
};
use std::collections::HashMap;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bgw_serve_ft_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn si_small() -> StructureSpec {
    StructureSpec::SiBulk {
        m: 1,
        ecut_centi_ry: 220,
        n_bands: 24,
    }
}

fn gpp_req(bag: usize, delta: u32) -> GwRequest {
    GwRequest {
        structure: si_small(),
        kind: RequestKind::GppDiag {
            bands_around_gap: bag,
            delta_milli_ry: delta,
        },
        priority: 0,
    }
}

fn check_gpp(oracles: &mut HashMap<u64, GwResults>, req: &GwRequest, payload: &Payload) {
    let Payload::Gpp(p) = payload else {
        panic!("expected a GPP payload");
    };
    let oracle = oracles
        .entry(req.request_key().0)
        .or_insert_with(|| run_gpp_gw(&req.structure.system(), &req.gw_config()));
    assert_eq!(p.bands, oracle.sigma_bands);
    for (i, st) in oracle.states.iter().enumerate() {
        assert!(
            (p.e_qp[i] - st.e_qp).abs() < 1e-12,
            "post-fault parity broke: {} vs {}",
            p.e_qp[i],
            st.e_qp
        );
    }
}

#[test]
fn crash_reenqueues_only_the_faulted_request() {
    let _guard = exclusive_test_guard();
    let dir = tmpdir("crash");
    let mut sc = ServeConfig::new(&dir);
    // Ops are per-member assembly evaluations in batch order: the second
    // member of the first batch crashes, nobody else is touched.
    sc.fault_plan = FaultPlan::none().crash_at(0, 1);
    let mut core = ServeCore::new(sc);
    let reqs = [gpp_req(1, 50), gpp_req(2, 50), gpp_req(1, 40)];
    let before = counters::snapshot();
    let ids: Vec<_> = reqs.iter().map(|r| core.enqueue(*r).unwrap()).collect();
    core.run_until_idle(&mut || None);
    let d = before.delta(&counters::snapshot());
    assert_eq!(d.serve_reenqueued, 1);
    assert_eq!(d.serve_completed, 3, "the crashed request still retires");

    let events = core.take_events();
    let reenqueued: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            ServeEvent::Reenqueued { id } => Some(*id),
            _ => None,
        })
        .collect();
    assert_eq!(reenqueued, vec![ids[1]], "only the faulted request re-runs");
    let completions: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            ServeEvent::Completed { id } => Some(*id),
            _ => None,
        })
        .collect();
    assert_eq!(
        completions,
        vec![ids[0], ids[2], ids[1]],
        "unaffected members retire first; the crashed one follows"
    );

    let mut oracles = HashMap::new();
    for (rid, resp) in core.take_responses() {
        let i = ids.iter().position(|&x| x == rid).unwrap();
        let ok = resp.expect("crash is retried, not fatal");
        if rid == ids[1] {
            assert_eq!(ok.telemetry.attempts, 2, "one crash, one re-run");
        }
        check_gpp(&mut oracles, &reqs[i], &ok.payload);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_fault_retries_with_bounded_backoff() {
    let _guard = exclusive_test_guard();
    let dir = tmpdir("transient");
    let mut sc = ServeConfig::new(&dir);
    sc.fault_plan = FaultPlan::none().transient_at(0, 0, 2);
    let mut core = ServeCore::new(sc);
    let req = gpp_req(1, 50);
    let before = counters::snapshot();
    let id = core.enqueue(req).unwrap();
    core.run_until_idle(&mut || None);
    let d = before.delta(&counters::snapshot());
    assert_eq!(d.serve_retries, 2);
    assert_eq!(d.serve_reenqueued, 0);

    let events = core.take_events();
    let attempts: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            ServeEvent::Retried { id: rid, attempt } if *rid == id => Some(*attempt),
            _ => None,
        })
        .collect();
    assert_eq!(attempts, vec![1, 2], "bounded backoff, then success");
    let (_, resp) = core.take_responses().pop().unwrap();
    let mut oracles = HashMap::new();
    check_gpp(
        &mut oracles,
        &req,
        &resp.expect("transient recovers").payload,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_retries_surface_as_typed_errors() {
    let _guard = exclusive_test_guard();
    let dir = tmpdir("exhaust");

    // Transient outliving the retry budget (default max_retries = 5).
    let mut sc = ServeConfig::new(&dir);
    sc.fault_plan = FaultPlan::none().transient_at(0, 0, 6);
    let mut core = ServeCore::new(sc);
    core.enqueue(gpp_req(1, 50)).unwrap();
    core.run_until_idle(&mut || None);
    let (_, resp) = core.take_responses().pop().unwrap();
    assert_eq!(
        resp.unwrap_err(),
        ServeError::RetriesExhausted { attempts: 6 }
    );
    assert!(core.take_events().contains(&ServeEvent::Failed { id: 1 }));

    // Repeated crashes outliving the re-enqueue budget.
    let mut sc = ServeConfig::new(&dir);
    sc.fault_plan = FaultPlan::none()
        .crash_at(0, 0)
        .crash_at(0, 1)
        .crash_at(0, 2);
    sc.max_request_retries = 2;
    let mut core = ServeCore::new(sc);
    core.enqueue(gpp_req(1, 50)).unwrap();
    core.run_until_idle(&mut || None);
    let (_, resp) = core.take_responses().pop().unwrap();
    assert_eq!(resp.unwrap_err(), ServeError::Faulted { attempts: 3 });
    let events = core.take_events();
    let n_reenq = events
        .iter()
        .filter(|e| matches!(e, ServeEvent::Reenqueued { .. }))
        .count();
    assert_eq!(n_reenq, 2, "two re-enqueues before the budget trips");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corruption_poisons_the_store_but_never_a_response() {
    let _guard = exclusive_test_guard();
    let dir = tmpdir("poison");
    let req = gpp_req(1, 50);
    let mut oracles = HashMap::new();

    // The fault corrupts the *stored* artifact mid-serve; the in-memory
    // response is unaffected.
    let mut sc = ServeConfig::new(&dir);
    sc.fault_plan = FaultPlan::none().corrupt_at(0, 0, 1);
    let mut a = ServeCore::new(sc);
    a.enqueue(req).unwrap();
    a.run_until_idle(&mut || None);
    let (_, resp) = a.take_responses().pop().unwrap();
    check_gpp(&mut oracles, &req, &resp.expect("serving survives").payload);
    drop(a);

    // A fresh engine over the poisoned store: the checksummed reader
    // rejects the record and recomputes — never a wrong hit.
    let before = counters::snapshot();
    let mut b = ServeCore::new(ServeConfig::new(&dir));
    b.enqueue(req).unwrap();
    b.run_until_idle(&mut || None);
    let d = before.delta(&counters::snapshot());
    assert!(d.serve_store_invalid >= 1);
    assert_eq!(d.serve_hits_disk, 0, "poisoned artifact must not hit");
    assert_eq!(d.serve_misses, 1);
    let (_, resp) = b.take_responses().pop().unwrap();
    check_gpp(&mut oracles, &req, &resp.expect("recompute").payload);
    drop(b);

    // The recompute rewrote a valid artifact.
    let mut c = ServeCore::new(ServeConfig::new(&dir));
    c.enqueue(req).unwrap();
    c.run_until_idle(&mut || None);
    let (_, resp) = c.take_responses().pop().unwrap();
    check_gpp(&mut oracles, &req, &resp.expect("clean hit").payload);
    assert!(c
        .take_events()
        .iter()
        .any(|e| matches!(e, ServeEvent::DiskHit { .. })));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_partial_record_is_visible_to_a_later_hit() {
    let _guard = exclusive_test_guard();
    let dir = tmpdir("partial");
    let mut core = ServeCore::new(ServeConfig::new(&dir));
    let req = gpp_req(2, 50); // 4 band rows: room to preempt
    core.enqueue(req).unwrap();
    assert!(core.step_with(&mut || Some(9)), "batch runs and preempts");
    let wkey = req.w_key();
    let wcanon = req.w_spec().canonical();
    // Mid-preemption: the partial exists on disk but only under its own
    // name space, and the artifact record is the screening, untouched.
    assert!(core.store().load_partial(wkey, &wcanon).is_some());
    let art = core
        .store()
        .load(wkey, &wcanon)
        .expect("screening artifact intact");
    assert_eq!(
        art.stage,
        berkeleygw_rs::core::GwStage::WScreening as u64,
        "artifact is screening state, never Sigma partials"
    );
    core.run_until_idle(&mut || None);
    let (_, resp) = core.take_responses().pop().unwrap();
    let mut oracles = HashMap::new();
    check_gpp(&mut oracles, &req, &resp.expect("resumed").payload);
    // Completion removed the partial; nothing for a later hit to see.
    assert!(core.store().load_partial(wkey, &wcanon).is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_fault_plan_under_load_drains_and_stays_correct() {
    let _guard = exclusive_test_guard();
    let dir = tmpdir("seeded");
    let traffic = TrafficConfig {
        seed: 9,
        n_requests: 8,
        zipf_exponent: 1.1,
        structures: vec![si_small()],
        ff_fraction: 0.0,
        high_priority_fraction: 0.0,
    };
    let stream = zipf_stream(&traffic);
    let mut sc = ServeConfig::new(&dir);
    // Rank 0 of a seeded plan never crashes permanently (the generator
    // keeps a survivor), so every fault here is recoverable by design;
    // the test still accepts typed errors as a valid outcome.
    sc.fault_plan = FaultPlan::seeded(11, 1, 6, 16);
    let mut core = ServeCore::new(sc);
    let mut ids = HashMap::new();
    for r in &stream {
        ids.insert(core.enqueue(*r).unwrap(), *r);
    }
    core.run_until_idle(&mut || None);
    assert!(core.is_idle(), "the queue must drain under injected faults");

    let mut oracles = HashMap::new();
    let responses = core.take_responses();
    assert_eq!(responses.len(), stream.len(), "every request retires");
    let mut n_ok = 0;
    for (rid, resp) in responses {
        match resp {
            Ok(ok) => {
                check_gpp(&mut oracles, &ids[&rid], &ok.payload);
                n_ok += 1;
            }
            Err(
                ServeError::RetriesExhausted { .. }
                | ServeError::Faulted { .. }
                | ServeError::Cancelled,
            ) => {}
            Err(e) => panic!("unexpected failure class under faults: {e}"),
        }
    }
    assert!(n_ok >= 1, "the plan must not wipe out the whole stream");
    drop(core);

    // Whatever the plan corrupted, a clean engine over the same store
    // still serves every unique request with full parity.
    let mut clean = ServeCore::new(ServeConfig::new(&dir));
    let mut uniq: Vec<GwRequest> = Vec::new();
    for r in &stream {
        if !uniq.iter().any(|u| u.request_key() == r.request_key()) {
            uniq.push(*r);
        }
    }
    let mut clean_ids = HashMap::new();
    for r in &uniq {
        clean_ids.insert(clean.enqueue(*r).unwrap(), *r);
    }
    clean.run_until_idle(&mut || None);
    for (rid, resp) in clean.take_responses() {
        check_gpp(
            &mut oracles,
            &clean_ids[&rid],
            &resp.expect("clean replay").payload,
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
