//! Property-style tests over the numerical substrates, driven through the
//! root crate's public API. Each property is checked over a deterministic
//! seeded sweep of randomized inputs (no external property-test crates, so
//! the suite builds fully offline and failures reproduce exactly).

use berkeleygw_rs::fft::{dft_reference, Direction, FftPlan};
use berkeleygw_rs::linalg::{eigh, invert, matmul, CMatrix, GemmBackend, Op};
use berkeleygw_rs::num::{c64, Complex64, Xoshiro256StarStar};

fn signal(rng: &mut Xoshiro256StarStar, n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|_| c64(rng.next_f64() * 2.0 - 1.0, rng.next_f64() * 2.0 - 1.0))
        .collect()
}

#[test]
fn fft_roundtrip_any_size() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xF0F0_0001);
    for case in 0..24 {
        let n = 1 + rng.next_below(139);
        let x = signal(&mut rng, n);
        let plan = FftPlan::new(n);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        plan.process(&mut y, Direction::Inverse);
        let err = x
            .iter()
            .zip(&y)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-9, "case {case}: n = {n}, err = {err}");
    }
}

#[test]
fn fft_matches_reference_small() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xF0F0_0002);
    for case in 0..24 {
        let x = signal(&mut rng, 48);
        let plan = FftPlan::new(48);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        let r = dft_reference(&x, Direction::Forward);
        let err = y
            .iter()
            .zip(&r)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-9, "case {case}: err = {err}");
    }
}

#[test]
fn gemm_backends_agree() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xF0F0_0003);
    for case in 0..24 {
        let m = 1 + rng.next_below(23);
        let k = 1 + rng.next_below(23);
        let n = 1 + rng.next_below(23);
        let seed = rng.next_u64();
        let a = CMatrix::random(m, k, seed);
        let b = CMatrix::random(k, n, seed.wrapping_add(1));
        let reference = matmul(&a, Op::None, &b, Op::None, GemmBackend::Naive);
        for be in [GemmBackend::Blocked, GemmBackend::Parallel] {
            let c = matmul(&a, Op::None, &b, Op::None, be);
            assert!(
                c.max_abs_diff(&reference) < 1e-10,
                "case {case}: {m}x{k}x{n} {be:?}"
            );
        }
    }
}

#[test]
fn gemm_adjoint_identity() {
    // (A B)^dagger = B^dagger A^dagger
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xF0F0_0004);
    for case in 0..24 {
        let m = 1 + rng.next_below(15);
        let k = 1 + rng.next_below(15);
        let seed = rng.next_u64();
        let a = CMatrix::random(m, k, seed);
        let b = CMatrix::random(k, m, seed.wrapping_add(7));
        let ab_h = matmul(&a, Op::None, &b, Op::None, GemmBackend::Blocked).adjoint();
        let bh_ah = matmul(&b, Op::Adj, &a, Op::Adj, GemmBackend::Blocked);
        assert!(ab_h.max_abs_diff(&bh_ah) < 1e-10, "case {case}: {m}x{k}");
    }
}

#[test]
fn inverse_roundtrip() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xF0F0_0005);
    for case in 0..24 {
        let n = 1 + rng.next_below(15);
        let a = CMatrix::random(n, n, rng.next_u64());
        // random complex matrices are almost surely invertible
        if let Ok(inv) = invert(&a) {
            let prod = matmul(&a, Op::None, &inv, Op::None, GemmBackend::Blocked);
            assert!(
                prod.max_abs_diff(&CMatrix::identity(n)) < 1e-7,
                "case {case}: n = {n}"
            );
        }
    }
}

#[test]
fn eigh_reconstructs() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xF0F0_0006);
    for case in 0..24 {
        let n = 1 + rng.next_below(13);
        let a = CMatrix::random_hermitian(n, rng.next_u64());
        let e = eigh(&a);
        // A = V W V^dagger
        let mut vw = e.vectors.clone();
        for j in 0..n {
            for i in 0..n {
                vw[(i, j)] = vw[(i, j)].scale(e.values[j]);
            }
        }
        let back = matmul(&vw, Op::None, &e.vectors, Op::Adj, GemmBackend::Blocked);
        assert!(
            back.max_abs_diff(&a) < 1e-8 * (1.0 + a.max_abs()),
            "case {case}: n = {n}"
        );
    }
}

#[test]
fn eigh_eigenvalues_bound_rayleigh_quotients() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xF0F0_0007);
    for case in 0..24 {
        let n = 2 + rng.next_below(10);
        let seed = rng.next_u64();
        let a = CMatrix::random_hermitian(n, seed);
        let e = eigh(&a);
        // Rayleigh quotient of a random vector lies within [w_min, w_max]
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(i as f64 * 0.9 + (seed % 1024) as f64))
            .collect();
        let ax = a.matvec(&x);
        let num: f64 = x.iter().zip(&ax).map(|(u, v)| (u.conj() * *v).re).sum();
        let den: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let q = num / den;
        assert!(
            q >= e.values[0] - 1e-9 && q <= e.values[n - 1] + 1e-9,
            "case {case}: n = {n}, q = {q}"
        );
    }
}

#[test]
fn parseval_for_3d() {
    use berkeleygw_rs::fft::Fft3d;
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xF0F0_0008);
    for case in 0..24 {
        let nx = 1 + rng.next_below(4);
        let ny = 1 + rng.next_below(4);
        let nz = 1 + rng.next_below(4);
        let plan = Fft3d::new(nx, ny, nz);
        let n = plan.len();
        let x = signal(&mut rng, n);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!(
            (ex - ey).abs() < 1e-9 * ex.max(1.0),
            "case {case}: {nx}x{ny}x{nz}"
        );
    }
}
