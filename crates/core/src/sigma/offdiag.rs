//! The GPP *off-diag.* kernel (paper Sec. 5.6): the full self-energy matrix
//! `Sigma_lm({E_i})` on a uniform energy grid, recast as dense matrix
//! multiplication.
//!
//! For each `(n, E_i)` pair the band/frequency-dependent inner matrix
//! `P^{(n,E)}_GG'` is precomputed (*prep.* step, reusing the diag-kernel
//! optimizations), then two ZGEMMs produce the contribution to all
//! `N_Sigma^2` matrix elements at once:
//! `Sigma^{(n,E)} = conj(B_n) P B_n^T` with `B_n` the `(N_Sigma x N_G)`
//! slice of symmetrized matrix elements. FLOPs are counted from the ZGEMMs
//! only (paper Eq. 8), while the reported runtime includes the prep step —
//! the same lower-bound convention the paper uses.

use super::{gpp_factor, SigmaContext};
use bgw_linalg::{zgemm, CMatrix, GemmBackend, Op};
use bgw_num::UniformGrid;
use bgw_num::{c64, Complex64};
use std::time::Instant;

/// Result of an off-diag kernel run.
#[derive(Clone, Debug)]
pub struct SigmaOffdiagResult {
    /// `sigma[e]` is the `(N_Sigma x N_Sigma)` matrix `Sigma_lm(E_e)` (Ry).
    pub sigma: Vec<CMatrix>,
    /// The shared uniform energy grid (Ry).
    pub e_grid: UniformGrid,
    /// Wall-clock seconds (prep + ZGEMM, the full kernel).
    pub seconds: f64,
    /// Seconds spent in the prep step alone.
    pub prep_seconds: f64,
    /// ZGEMM-only FLOPs (paper Eq. 8 convention).
    pub zgemm_flops: u64,
}

/// Runs the off-diagonal GPP kernel on the uniform grid `e_grid`.
pub fn gpp_sigma_offdiag(
    ctx: &SigmaContext,
    e_grid: &UniformGrid,
    backend: GemmBackend,
) -> SigmaOffdiagResult {
    let _span = bgw_trace::span!("sigma.offdiag");
    let ns = ctx.n_sigma();
    let ng = ctx.n_g();
    let nb = ctx.n_b();
    let ne = e_grid.len();
    let t0 = Instant::now();
    let mut prep_seconds = 0.0;
    let mut zgemm_flops = 0u64;
    let mut sigma = vec![CMatrix::zeros(ns, ns); ne];

    // B_n: (N_Sigma x N_G) slice of m~ for fixed n.
    let mut b_n = CMatrix::zeros(ns, ng);
    let mut p = CMatrix::zeros(ng, ng);
    for n in 0..nb {
        let occupied = n < ctx.n_occ;
        let en = ctx.energies[n];
        for s in 0..ns {
            b_n.row_mut(s).copy_from_slice(ctx.m_tilde[s].row(n));
        }
        // conj(B_n) once per n (P is real, so conj(B) P B^T =
        // conj(B) * (P B^T) and we fold the conjugation into the operand).
        let b_conj = b_n.conj();
        for (ei, &e) in e_grid.points.iter().enumerate() {
            let tp = Instant::now();
            let de = e - en;
            // Fill the (real) GPP P-matrix row-parallel on the worker pool;
            // rows are independent and this prep step bounds the ZGEMM rate.
            bgw_par::parallel_rows(p.as_mut_slice(), ng, |g, row| {
                for (gp, z) in row.iter_mut().enumerate() {
                    *z = c64(gpp_factor(&ctx.gpp, g, gp, de, occupied), 0.0);
                }
            });
            prep_seconds += tp.elapsed().as_secs_f64();
            // T = P * B_n^T  (N_G x N_Sigma)
            let mut t = CMatrix::zeros(ng, ns);
            zgemm(
                Complex64::ONE,
                &p,
                Op::None,
                &b_n,
                Op::Trans,
                Complex64::ZERO,
                &mut t,
                backend,
            );
            // Sigma(E) += conj(B_n) * T   (N_Sigma x N_Sigma)
            zgemm(
                Complex64::ONE,
                &b_conj,
                Op::None,
                &t,
                Op::None,
                Complex64::ONE,
                &mut sigma[ei],
                backend,
            );
            zgemm_flops +=
                bgw_linalg::zgemm_flops(ng, ng, ns) + bgw_linalg::zgemm_flops(ns, ng, ns);
        }
    }
    SigmaOffdiagResult {
        sigma,
        e_grid: e_grid.clone(),
        seconds: t0.elapsed().as_secs_f64(),
        prep_seconds,
        zgemm_flops,
    }
}

/// Distributed off-diag kernel: the `(n, E)` ZGEMM pairs are split
/// round-robin over the ranks of `comm` and the accumulated
/// `N_Sigma x N_Sigma x N_E` result is summed with one allreduce — the
/// decomposition behind the paper's full-machine off-diag runs (Sec. 5.6,
/// Fig. 7). Each rank returns the complete result; per-rank `seconds` and
/// `zgemm_flops` reflect only its own share (for load-balance accounting).
pub fn gpp_sigma_offdiag_distributed(
    comm: &bgw_comm::Comm,
    ctx: &SigmaContext,
    e_grid: &UniformGrid,
    backend: GemmBackend,
) -> SigmaOffdiagResult {
    let ns = ctx.n_sigma();
    let ng = ctx.n_g();
    let nb = ctx.n_b();
    let ne = e_grid.len();
    let t0 = Instant::now();
    let mut prep_seconds = 0.0;
    let mut zgemm_flops = 0u64;
    let mut sigma = vec![CMatrix::zeros(ns, ns); ne];

    let mut b_n = CMatrix::zeros(ns, ng);
    let mut p = CMatrix::zeros(ng, ng);
    let mut pair_index = 0usize;
    for n in 0..nb {
        let occupied = n < ctx.n_occ;
        let en = ctx.energies[n];
        let mut b_loaded = false;
        let mut b_conj = CMatrix::zeros(0, 0);
        for (ei, &e) in e_grid.points.iter().enumerate() {
            let mine = pair_index % comm.size() == comm.rank();
            pair_index += 1;
            if !mine {
                continue;
            }
            if !b_loaded {
                for s in 0..ns {
                    b_n.row_mut(s).copy_from_slice(ctx.m_tilde[s].row(n));
                }
                b_conj = b_n.conj();
                b_loaded = true;
            }
            let tp = Instant::now();
            let de = e - en;
            bgw_par::parallel_rows(p.as_mut_slice(), ng, |g, row| {
                for (gp, z) in row.iter_mut().enumerate() {
                    *z = bgw_num::c64(gpp_factor(&ctx.gpp, g, gp, de, occupied), 0.0);
                }
            });
            prep_seconds += tp.elapsed().as_secs_f64();
            let mut t = CMatrix::zeros(ng, ns);
            zgemm(
                Complex64::ONE,
                &p,
                Op::None,
                &b_n,
                Op::Trans,
                Complex64::ZERO,
                &mut t,
                backend,
            );
            zgemm(
                Complex64::ONE,
                &b_conj,
                Op::None,
                &t,
                Op::None,
                Complex64::ONE,
                &mut sigma[ei],
                backend,
            );
            zgemm_flops +=
                bgw_linalg::zgemm_flops(ng, ng, ns) + bgw_linalg::zgemm_flops(ns, ng, ns);
        }
    }
    // Two-stage reduction of the accumulated matrices.
    let flat: Vec<Complex64> = sigma
        .iter()
        .flat_map(|m| m.as_slice().iter().copied())
        .collect();
    let reduced = comm.allreduce_sum_c64(flat);
    for (ei, m) in sigma.iter_mut().enumerate() {
        m.as_mut_slice()
            .copy_from_slice(&reduced[ei * ns * ns..(ei + 1) * ns * ns]);
    }
    SigmaOffdiagResult {
        sigma,
        e_grid: e_grid.clone(),
        seconds: t0.elapsed().as_secs_f64(),
        prep_seconds,
        zgemm_flops,
    }
}

/// Paper Eq. 8: the analytic ZGEMM FLOP count for given sizes.
pub fn offdiag_flops_eq8(n_b: usize, n_e: usize, n_sigma: usize, n_g: usize) -> u64 {
    2 * n_b as u64
        * n_e as u64
        * 8
        * (n_sigma as u64 * (n_g as u64).pow(2) + n_g as u64 * (n_sigma as u64).pow(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sigma::diag::{gpp_sigma_diag, KernelVariant};
    use crate::testkit;

    #[test]
    fn diagonal_matches_diag_kernel() {
        let (ctx, _) = testkit::small_context();
        let grid = UniformGrid::new(
            ctx.sigma_energies[0] - 0.2,
            *ctx.sigma_energies.last().unwrap() + 0.2,
            4,
        );
        let off = gpp_sigma_offdiag(&ctx, &grid, GemmBackend::Blocked);
        // diag kernel on the same grid for every band
        let grids: Vec<Vec<f64>> = (0..ctx.n_sigma()).map(|_| grid.points.clone()).collect();
        let diag = gpp_sigma_diag(&ctx, &grids, KernelVariant::Reference);
        for s in 0..ctx.n_sigma() {
            for (ei, _) in grid.points.iter().enumerate() {
                let a = off.sigma[ei][(s, s)].re;
                let b = diag.sigma[s][ei];
                assert!(
                    (a - b).abs() < 1e-8 * (1.0 + b.abs()),
                    "({s},{ei}): offdiag {a} vs diag {b}"
                );
            }
        }
    }

    #[test]
    fn sigma_matrix_is_hermitian() {
        let (ctx, _) = testkit::small_context();
        let grid = UniformGrid::new(-1.0, 1.0, 3);
        let off = gpp_sigma_offdiag(&ctx, &grid, GemmBackend::Parallel);
        for (ei, s) in off.sigma.iter().enumerate() {
            assert!(
                s.is_hermitian(1e-8),
                "Sigma(E_{ei}) Hermiticity error {}",
                s.hermiticity_error()
            );
        }
    }

    #[test]
    fn zgemm_flop_count_matches_eq8() {
        let (ctx, _) = testkit::small_context();
        let grid = UniformGrid::new(-0.5, 0.5, 3);
        let off = gpp_sigma_offdiag(&ctx, &grid, GemmBackend::Blocked);
        // Our loop performs exactly 2 ZGEMMs per (n, E); Eq. 8 charges the
        // same  8(Ns Ng^2 + Ng Ns^2) per pair with a leading factor 2 N_b
        // N_E. Our counted flops are half of Eq. 8's bound because the
        // paper's factor 2 counts the *pair* of ZGEMMs whose sizes are
        // already summed inside the parenthesis; verify the exact relation.
        let eq8 = offdiag_flops_eq8(ctx.n_b(), grid.len(), ctx.n_sigma(), ctx.n_g());
        assert_eq!(off.zgemm_flops * 2, eq8);
    }

    #[test]
    fn distributed_pairs_match_serial() {
        let (ctx, _) = testkit::small_context();
        let grid = UniformGrid::new(-0.6, 0.8, 5);
        let serial = gpp_sigma_offdiag(&ctx, &grid, GemmBackend::Blocked);
        for world in [2usize, 3, 5] {
            let (results, _) = bgw_comm::run_world(world, |comm| {
                let r = gpp_sigma_offdiag_distributed(comm, &ctx, &grid, GemmBackend::Blocked);
                (
                    r.sigma
                        .iter()
                        .map(|m| m.as_slice().to_vec())
                        .collect::<Vec<_>>(),
                    r.zgemm_flops,
                )
            });
            let total_flops: u64 = results.iter().map(|(_, f)| f).sum();
            assert_eq!(total_flops, serial.zgemm_flops, "world {world}");
            for (mats, _) in results {
                for (ei, flat) in mats.into_iter().enumerate() {
                    let m = CMatrix::from_vec(ctx.n_sigma(), ctx.n_sigma(), flat);
                    assert!(
                        m.max_abs_diff(&serial.sigma[ei]) < 1e-9,
                        "world {world}, E {ei}: {}",
                        m.max_abs_diff(&serial.sigma[ei])
                    );
                }
            }
        }
    }

    #[test]
    fn prep_time_is_included_in_total() {
        let (ctx, _) = testkit::small_context();
        let grid = UniformGrid::new(-0.5, 0.5, 2);
        let off = gpp_sigma_offdiag(&ctx, &grid, GemmBackend::Blocked);
        assert!(off.prep_seconds <= off.seconds);
        assert!(off.prep_seconds > 0.0);
    }
}
