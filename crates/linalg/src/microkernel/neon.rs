//! AArch64 Advanced SIMD (NEON) register-tile kernels for the
//! split-complex ZGEMM.
//!
//! NEON is baseline on every aarch64 target, so these kernels need no
//! runtime feature probe — `bgw_num::simd::probe` reports `Isa::Neon`
//! unconditionally there. 128-bit registers hold 2 f64 lanes; with 32
//! architectural registers the `6 x 4` tile (24 accumulators + 4 B
//! vectors + 2 broadcasts) still fits without spilling.
//!
//! The complex product uses the same four-FMA lattice as the x86 kernels:
//! `vfmaq_f64(acc, a, b)` computes `acc + a*b` and `vfmsq_f64(acc, a, b)`
//! computes `acc - a*b`, so no negation or shuffle appears in the body.
//!
//! # Safety
//! Callers must uphold the panel layout contract of
//! [`super::scalar::kernel_4x4`] with each kernel's `MR`/`NR`.

#![allow(unsafe_op_in_unsafe_fn)]

use core::arch::aarch64::*;

macro_rules! neon_kernel {
    ($name:ident, $mr:expr, $nv:expr, $doc:expr) => {
        #[doc = $doc]
        ///
        /// # Safety
        /// Panel layout contract as in [`super::scalar::kernel_4x4`] with
        /// this kernel's `MR`/`NR`.
        pub unsafe fn $name(
            kk: usize,
            are: *const f64,
            aim: *const f64,
            bre: *const f64,
            bim: *const f64,
            cre: *mut f64,
            cim: *mut f64,
        ) {
            const MR: usize = $mr;
            const NV: usize = $nv;
            const NR: usize = NV * 2;
            let mut acc_re = [[vdupq_n_f64(0.0); NV]; MR];
            let mut acc_im = [[vdupq_n_f64(0.0); NV]; MR];
            for p in 0..kk {
                let mut bv_re = [vdupq_n_f64(0.0); NV];
                let mut bv_im = [vdupq_n_f64(0.0); NV];
                for v in 0..NV {
                    bv_re[v] = vld1q_f64(bre.add(p * NR + v * 2));
                    bv_im[v] = vld1q_f64(bim.add(p * NR + v * 2));
                }
                for i in 0..MR {
                    let ar = vdupq_n_f64(*are.add(p * MR + i));
                    let ai = vdupq_n_f64(*aim.add(p * MR + i));
                    for v in 0..NV {
                        acc_re[i][v] = vfmaq_f64(acc_re[i][v], ar, bv_re[v]);
                        acc_re[i][v] = vfmsq_f64(acc_re[i][v], ai, bv_im[v]);
                        acc_im[i][v] = vfmaq_f64(acc_im[i][v], ar, bv_im[v]);
                        acc_im[i][v] = vfmaq_f64(acc_im[i][v], ai, bv_re[v]);
                    }
                }
            }
            for i in 0..MR {
                for v in 0..NV {
                    vst1q_f64(cre.add(i * NR + v * 2), acc_re[i][v]);
                    vst1q_f64(cim.add(i * NR + v * 2), acc_im[i][v]);
                }
            }
        }
    };
}

neon_kernel!(
    neon_4x4,
    4,
    2,
    "NEON `4 x 4` tile: 16 accumulator vectors; matches the scalar \
     kernel's footprint, the safe default."
);
neon_kernel!(
    neon_6x4,
    6,
    2,
    "NEON `6 x 4` tile: 24 accumulator vectors, better A-broadcast \
     amortization; offered to the autotuner."
);
