//! Second property-test suite: physics-layer invariants (lattices,
//! spheres, pseudopotentials, distributed algebra, Pade continuation,
//! communicator semantics) under randomized inputs.

use berkeleygw_rs::comm::run_world;
use berkeleygw_rs::dist::{newton_schulz_inverse, row_range, DistMatrix};
use berkeleygw_rs::linalg::CMatrix;
use berkeleygw_rs::num::pade::PadeApproximant;
use berkeleygw_rs::num::{c64, Complex64};
use berkeleygw_rs::pwdft::{Crystal, GSphere, Lattice, Species};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lattice_volume_scales_with_supercell(
        a0 in 5.0f64..15.0,
        n1 in 1usize..4, n2 in 1usize..4, n3 in 1usize..4,
    ) {
        let c = Crystal::diamond(Species::Si, a0);
        let s = c.supercell([n1, n2, n3]);
        let expect = c.lattice.volume() * (n1 * n2 * n3) as f64;
        prop_assert!((s.lattice.volume() - expect).abs() < 1e-6 * expect);
        prop_assert_eq!(s.n_atoms(), 8 * n1 * n2 * n3);
        // electron counting is extensive
        prop_assert_eq!(s.n_electrons(), c.n_electrons() * n1 * n2 * n3);
    }

    #[test]
    fn gsphere_invariants(a0 in 6.0f64..14.0, ecut in 1.0f64..5.0) {
        let lat = Lattice::cubic(a0);
        let sph = GSphere::new(&lat, ecut);
        // all inside cutoff, sorted, inversion-symmetric
        prop_assert!(sph.norm2.iter().all(|&n2| n2 <= ecut + 1e-9));
        prop_assert!(sph.norm2.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        for i in 0..sph.len() {
            let j = sph.minus(i);
            prop_assert!((sph.norm2[i] - sph.norm2[j]).abs() < 1e-9);
        }
        // count grows monotonically with cutoff
        let bigger = GSphere::new(&lat, ecut * 1.5);
        prop_assert!(bigger.len() >= sph.len());
    }

    #[test]
    fn form_factors_are_bounded_and_decay(q in 0.0f64..30.0) {
        for sp in [Species::Si, Species::Li, Species::H, Species::B, Species::N, Species::C] {
            let u = sp.form_factor(q);
            prop_assert!(u.is_finite());
            prop_assert!(u.abs() < 500.0, "{sp:?} at q={q}: {u}");
            // beyond the tabulated range everything is exactly zero
            if q > 10.0 {
                prop_assert_eq!(u, 0.0);
            }
        }
    }

    #[test]
    fn displacement_roundtrip(dx in -0.2f64..0.2, dy in -0.2f64..0.2, dz in -0.2f64..0.2) {
        let c = Crystal::diamond(Species::Si, 10.26);
        let moved = c.with_displacement(3, [dx, dy, dz]);
        let back = moved.with_displacement(3, [-dx, -dy, -dz]);
        for (a, b) in c.atoms.iter().zip(&back.atoms) {
            for k in 0..3 {
                prop_assert!((a.frac[k] - b.frac[k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn row_ranges_partition(n in 1usize..200, size in 1usize..12) {
        let mut covered = vec![false; n];
        for r in 0..size {
            let (lo, hi) = row_range(n, size, r);
            for slot in covered.iter_mut().take(hi).skip(lo) {
                prop_assert!(!*slot, "overlap");
                *slot = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn pade_exactness_for_moebius(ar in -2.0f64..2.0, ai in -2.0f64..2.0, br in 0.5f64..2.0) {
        // f(z) = (a z + 1) / (z + b): 4 samples determine it exactly.
        let a = c64(ar, ai);
        let b = c64(br, 0.3);
        let f = |z: Complex64| (a * z + 1.0) / (z + b);
        let nodes: Vec<Complex64> = (1..=4).map(|k| c64(0.0, k as f64)).collect();
        let vals: Vec<Complex64> = nodes.iter().map(|&z| f(z)).collect();
        let p = PadeApproximant::new(&nodes, &vals);
        let z = c64(0.7, 0.2);
        prop_assert!((p.eval(z) - f(z)).abs() < 1e-7);
    }
}

#[test]
fn distributed_inverse_randomized() {
    // deterministic multi-size sweep (proptest and nested threads don't
    // mix well with shrinkage; use fixed seeds)
    for (n, world, seed) in [(6usize, 2usize, 1u64), (10, 3, 2), (15, 4, 3)] {
        let mut a = CMatrix::random(n, n, seed);
        for d in 0..n {
            a[(d, d)] += c64(3.0, 0.0);
        }
        let reference = berkeleygw_rs::linalg::invert(&a).unwrap();
        let (out, _) = run_world(world, |comm| {
            let da = DistMatrix::from_replicated(comm, &a);
            let (inv, _) = newton_schulz_inverse(comm, &da, 1e-11, 80);
            inv.to_replicated(comm).as_slice().to_vec()
        });
        for flat in out {
            let inv = CMatrix::from_vec(n, n, flat);
            assert!(
                inv.max_abs_diff(&reference) < 1e-8,
                "n={n}, world={world}"
            );
        }
    }
}

#[test]
fn collectives_compose_arbitrarily() {
    // a randomized (but rank-uniform) sequence of collectives must be
    // deadlock-free and consistent
    let ops: Vec<u8> = vec![0, 2, 1, 3, 0, 1, 2, 3, 3, 1];
    let (out, _) = run_world(4, |comm| {
        let mut acc = comm.rank() as u64;
        for (i, &op) in ops.iter().enumerate() {
            match op {
                0 => {
                    acc = comm.allreduce(acc, |a, b| a.wrapping_add(b));
                }
                1 => {
                    let all = comm.allgather(acc);
                    acc = all.iter().fold(0u64, |a, &b| a.wrapping_mul(31).wrapping_add(b));
                }
                2 => {
                    acc = comm.bcast(i % comm.size(), Some(acc));
                }
                _ => comm.barrier(),
            }
        }
        acc
    });
    // every rank converges to the same value (all ops end symmetric)
    assert!(out.windows(2).all(|w| w[0] == w[1]), "{out:?}");
}

#[test]
fn mtxel_g0_is_overlap_for_random_band_pairs() {
    use berkeleygw_rs::core::mtxel::Mtxel;
    use berkeleygw_rs::pwdft::solve_bands;
    let c = Crystal::diamond(Species::Si, 10.26);
    let wfn = GSphere::new(&c.lattice, 2.2);
    let eps = GSphere::new(&c.lattice, 0.8);
    let wf = solve_bands(&c, &wfn, 24);
    let eng = Mtxel::new(&wfn, &eps);
    // pseudo-random pair sweep
    let mut state = 12345u64;
    for _ in 0..12 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let m = (state >> 33) as usize % 24;
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let n = (state >> 33) as usize % 24;
        let row = eng.band_pair(&wf, m, n);
        let expect = if m == n { 1.0 } else { 0.0 };
        assert!(
            (row[0] - c64(expect, 0.0)).abs() < 1e-9,
            "pair ({m},{n}): {}",
            row[0]
        );
    }
}
