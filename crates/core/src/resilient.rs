//! Fault-tolerant distributed GW: shrink-and-retry over the simulated
//! communicator.
//!
//! The distributed GPP pipeline (CHI allreduce -> Newton-Schulz epsilon
//! inversion -> G'-sliced Sigma) is rebuilt here on the fallible `try_*`
//! collectives: when a peer rank crashes mid-collective, the survivors
//! observe a typed [`CommError::PeerCrashed`], agree on a shrunken
//! communicator via [`Comm::shrink`], redistribute the work over the new
//! (dense, ordered) ranks, and re-run the failed stage. Unrecoverable
//! faults — the crashed rank's own error, exhausted retries, persistent
//! corruption, a poisoned world — propagate out as `Err` instead of
//! deadlocking, which is the ULFM-style contract of paper-scale runs.
//!
//! Every stage retry restarts the *stage*, not the pipeline: results
//! already replicated on the survivors (e.g. the CHI matrices) are kept.
//!
//! [`run_gpp_gw_resilient_dag`] goes one granularity level further: the
//! CHI and Sigma stages are decomposed into fixed task sets (one task per
//! valence band, `2 * world` G' slices), and a crash re-enqueues only the
//! tasks whose owner died instead of re-running the survivors' work
//! (DESIGN.md Sec. 14).

use crate::chi::{try_chi_distributed, ChiConfig, ChiEngine};
use crate::coulomb::Coulomb;
use crate::dyson::{qp_gap, solve_qp_diag, QpState};
use crate::epsilon::{EpsilonError, EpsilonInverse};
use crate::gpp::GppModel;
use crate::mtxel::Mtxel;
use crate::sigma::diag::{gpp_sigma_diag_partial, try_gpp_sigma_diag_distributed, SigmaDiagResult};
use crate::sigma::SigmaContext;
use crate::workflow::GwConfig;
use bgw_comm::{Comm, CommError};
use bgw_dist::{try_invert_epsilon_distributed, DistError, DistMatrix};
use bgw_linalg::CMatrix;
use bgw_num::{c64, Complex64};
use bgw_par::dag::TaskGraph;
use bgw_pwdft::{charge_density_g, solve_bands, ModelSystem};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Most shrink-and-retry cycles one stage may consume before giving up
/// with [`CommError::RecoveryExhausted`].
pub const MAX_RECOVERIES: u32 = 8;

/// How a resilient run fails: a communicator fault, or an application
/// condition that no amount of shrink-and-retry can fix.
#[derive(Clone, Debug, PartialEq)]
pub enum ResilientError {
    /// A runtime fault of the simulated communicator (crash, exhausted
    /// retries, corruption, poisoned world).
    Comm(CommError),
    /// The dielectric matrix is singular or non-finite — retrying on a
    /// shrunken communicator would recompute the same matrix, so this is
    /// reported as data instead of burning recovery cycles (or panicking
    /// inside the Newton-Schulz iteration, which would poison the world
    /// for every surviving rank).
    Epsilon(EpsilonError),
}

impl std::fmt::Display for ResilientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilientError::Comm(e) => write!(f, "communicator fault: {e:?}"),
            ResilientError::Epsilon(e) => write!(f, "epsilon stage: {e}"),
        }
    }
}

impl std::error::Error for ResilientError {}

impl From<CommError> for ResilientError {
    fn from(e: CommError) -> Self {
        ResilientError::Comm(e)
    }
}

impl From<EpsilonError> for ResilientError {
    fn from(e: EpsilonError) -> Self {
        ResilientError::Epsilon(e)
    }
}

impl From<DistError> for ResilientError {
    fn from(e: DistError) -> Self {
        match e {
            DistError::Comm(c) => ResilientError::Comm(c),
            // Newton-Schulz non-convergence means the dielectric matrix
            // is singular/ill-conditioned — the same application-level
            // condition the LU pre-flight reports, so it maps onto the
            // existing epsilon failure surface (deterministic across
            // ranks; retrying on a shrunken world recomputes the same
            // matrix).
            DistError::NotConverged { .. } => ResilientError::Epsilon(EpsilonError::Singular {
                freq_index: 0,
                omega: 0.0,
            }),
        }
    }
}

/// Borrow-or-owned communicator cursor: starts out borrowing the world
/// communicator handed to a rank closure and switches to owned shrunken
/// communicators as ranks are lost, so every later stage automatically
/// runs on the current survivor set.
pub struct CommCursor<'a> {
    world: &'a Comm,
    owned: Option<Comm>,
    recoveries: u32,
}

impl<'a> CommCursor<'a> {
    /// Starts the cursor on the (borrowed) world communicator.
    pub fn new(world: &'a Comm) -> Self {
        Self {
            world,
            owned: None,
            recoveries: 0,
        }
    }

    /// The communicator every operation should currently use.
    pub fn get(&self) -> &Comm {
        self.owned.as_ref().unwrap_or(self.world)
    }

    /// Shrinks the current communicator to its survivors.
    pub fn shrink(&mut self) -> Result<(), CommError> {
        self.owned = Some(self.get().shrink()?);
        self.recoveries += 1;
        Ok(())
    }

    /// Shrink-and-retry cycles performed so far.
    pub fn recoveries(&self) -> u32 {
        self.recoveries
    }
}

/// Runs `f` against the cursor's communicator, shrinking and retrying on
/// recoverable faults (peer crashes). Non-recoverable errors — including
/// this rank's own injected crash — return immediately.
pub fn with_recovery<T>(
    cursor: &mut CommCursor<'_>,
    mut f: impl FnMut(&Comm) -> Result<T, CommError>,
) -> Result<T, CommError> {
    for _ in 0..MAX_RECOVERIES {
        match f(cursor.get()) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_recoverable() => cursor.shrink()?,
            Err(e) => return Err(e),
        }
    }
    Err(CommError::RecoveryExhausted {
        attempts: MAX_RECOVERIES,
    })
}

/// [`with_recovery`] for stages built on `bgw-dist`, whose typed
/// [`DistError`] may embed a recoverable communicator fault. Numerical
/// failures ([`DistError::NotConverged`]) return immediately — they are
/// deterministic, so shrinking would just recompute the same failure.
pub fn with_recovery_dist<T>(
    cursor: &mut CommCursor<'_>,
    mut f: impl FnMut(&Comm) -> Result<T, DistError>,
) -> Result<T, DistError> {
    for _ in 0..MAX_RECOVERIES {
        match f(cursor.get()) {
            Ok(v) => return Ok(v),
            Err(DistError::Comm(e)) if e.is_recoverable() => cursor.shrink()?,
            Err(e) => return Err(e),
        }
    }
    Err(DistError::Comm(CommError::RecoveryExhausted {
        attempts: MAX_RECOVERIES,
    }))
}

/// What a surviving rank reports after a resilient GPP run.
#[derive(Clone, Debug)]
pub struct ResilientGwReport {
    /// Band indices whose self-energy was computed.
    pub sigma_bands: Vec<usize>,
    /// Quasiparticle solutions, aligned with `sigma_bands`.
    pub states: Vec<QpState>,
    /// Quasiparticle gap (Ry).
    pub gap_qp_ry: f64,
    /// Macroscopic dielectric constant.
    pub eps_macro: f64,
    /// Communicator size at the end of the run (`< initial` iff ranks
    /// were lost and the survivors recovered).
    pub final_size: usize,
    /// Shrink-and-retry cycles this rank performed.
    pub recoveries: u32,
}

/// The distributed G0W0(GPP) pipeline on fallible collectives with
/// shrink-and-retry recovery.
///
/// Under a fault-free plan this reproduces the serial
/// [`run_gpp_gw`](crate::workflow::run_gpp_gw) physics through the
/// distributed code path (Newton-Schulz inversion instead of LU, so QP
/// energies agree to the iteration tolerance rather than bitwise). Under
/// a seeded [`bgw_comm::FaultPlan`], surviving ranks recover and
/// reproduce the *fault-free resilient* run's QP energies to 1e-10; the
/// crashed rank gets its own typed error. A singular dielectric matrix
/// surfaces as [`ResilientError::Epsilon`] on every rank instead of a
/// panic inside the distributed inversion.
pub fn run_gpp_gw_resilient(
    system: &ModelSystem,
    cfg: &GwConfig,
    comm: &Comm,
) -> Result<ResilientGwReport, ResilientError> {
    let mut cursor = CommCursor::new(comm);
    let wfn_sph = system.wfn_sphere();
    let eps_sph = system.eps_sphere();
    let wf = solve_bands(&system.crystal, &wfn_sph, system.n_bands.min(wfn_sph.len()));
    let coulomb = Coulomb::bulk_for_cell(system.crystal.lattice.volume());
    let mtxel = Mtxel::new(&wfn_sph, &eps_sph);
    let chi_cfg = ChiConfig {
        q0: coulomb.q0,
        ..cfg.chi
    };

    // CHI: round-robin valence split + allreduce, re-split on shrink.
    let chi0 = with_recovery(&mut cursor, |c| {
        Ok(try_chi_distributed(c, &wf, &mtxel, chi_cfg, &[0.0])?
            .pop()
            .unwrap())
    })?;

    // Epsilon: distributed Newton-Schulz inversion, replicated at the end.
    let vsqrt = coulomb.sqrt_on_sphere(&eps_sph);
    let eps_inv = epsilon_stage(&mut cursor, &chi0, &vsqrt)?;
    let eps_macro = eps_inv.macroscopic_constant();

    // Sigma: G'-sliced diag kernel + allreduce, re-sliced on shrink.
    let rho = charge_density_g(&wf, &wfn_sph);
    let gpp = GppModel::new(
        &eps_inv,
        &eps_sph,
        &wfn_sph,
        &rho,
        system.crystal.lattice.volume(),
    );
    let nv = wf.n_valence;
    let k = cfg.bands_around_gap.max(1);
    let sigma_bands: Vec<usize> = (nv.saturating_sub(k)..(nv + k).min(wf.n_bands())).collect();
    let ctx = SigmaContext::build(&wf, &mtxel, gpp, &vsqrt, &sigma_bands, coulomb.q0);
    let d = cfg.sampling_delta_ry;
    let grids: Vec<Vec<f64>> = ctx
        .sigma_energies
        .iter()
        .map(|&e| vec![e - d, e, e + d])
        .collect();
    let diag = with_recovery(&mut cursor, |c| {
        try_gpp_sigma_diag_distributed(c, &ctx, &grids)
    })?;

    let states = solve_qp_diag(&ctx.sigma_energies, &diag);
    let gap_qp = qp_gap(&states, ctx.homo_pos(), ctx.lumo_pos());
    Ok(ResilientGwReport {
        sigma_bands,
        states,
        gap_qp_ry: gap_qp,
        eps_macro,
        final_size: cursor.get().size(),
        recoveries: cursor.recoveries(),
    })
}

/// The epsilon stage shared by both resilient drivers. NS diverges (and
/// asserts) on a singular matrix, so a rank-local LU factorization of the
/// replicated eps~ screens for singularity first — every rank sees the
/// same matrix, so every rank agrees on the typed error and no collective
/// is left half-entered. The stage is deliberately *stage*-granular even
/// on the DAG path: the Newton-Schulz iterates are global state, so there
/// is no finer-grained task whose loss could be recovered independently.
fn epsilon_stage(
    cursor: &mut CommCursor<'_>,
    chi0: &CMatrix,
    vsqrt: &[f64],
) -> Result<EpsilonInverse, ResilientError> {
    let eps_m = crate::epsilon::assemble_sym_eps(chi0, vsqrt);
    if !eps_m
        .as_slice()
        .iter()
        .all(|z| z.re.is_finite() && z.im.is_finite())
    {
        return Err(EpsilonError::NonFinite {
            freq_index: 0,
            omega: 0.0,
        }
        .into());
    }
    if bgw_linalg::Lu::new(&eps_m).is_err() {
        return Err(EpsilonError::Singular {
            freq_index: 0,
            omega: 0.0,
        }
        .into());
    }
    let inv = with_recovery_dist(cursor, |c| {
        let chi_dist = DistMatrix::from_replicated(c, chi0);
        let (inv_dist, _iters) = try_invert_epsilon_distributed(c, &chi_dist, vsqrt, 1e-12)?;
        Ok(inv_dist.try_to_replicated(c)?)
    })?;
    Ok(EpsilonInverse::from_parts(
        vec![0.0],
        vec![inv],
        vsqrt.to_vec(),
    ))
}

// ---------------------------------------------------------------------------
// Task-granular recovery: the DAG resilient driver
// ---------------------------------------------------------------------------

/// Runs one stage's locally-owned tasks through a [`TaskGraph`]
/// (overdecomposed and work-stolen when a worker pool is available) and
/// returns their payloads in task order.
fn run_task_set<T, F>(ids: &[usize], f: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let slots: Vec<Mutex<Option<T>>> = ids.iter().map(|_| Mutex::new(None)).collect();
    {
        let mut g = TaskGraph::new();
        for (i, &t) in ids.iter().enumerate() {
            let slots = &slots;
            g.add(&[], move || {
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(f(t));
            });
        }
        g.execute();
    }
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("task executed")
        })
        .collect()
}

/// Survivor consensus on which tasks died with the lost ranks: every
/// survivor contributes a presence mask of the tasks it holds locally; a
/// zero count after the sum means no survivor holds that contribution and
/// the task must be re-enqueued. The mask collective itself runs under
/// shrink-and-retry, so a crash *during the census* just shrinks further
/// and the census repeats among the remaining survivors.
fn lost_tasks(cursor: &mut CommCursor<'_>, done: &[bool]) -> Result<Vec<usize>, CommError> {
    let mask: Vec<Complex64> = done
        .iter()
        .map(|&d| c64(if d { 1.0 } else { 0.0 }, 0.0))
        .collect();
    let counts = with_recovery(cursor, |c| c.try_allreduce_sum_c64(mask.clone()))?;
    Ok(counts
        .iter()
        .enumerate()
        .filter(|(_, z)| z.re < 0.5)
        .map(|(t, _)| t)
        .collect())
}

/// Allreduce-sum of per-task contributions with task-granular recovery.
///
/// On a peer crash the survivors shrink, agree on the orphaned tasks via
/// [`lost_tasks`], re-enqueue ONLY those (split round-robin over the
/// survivor ranks and executed through the task graph), fold the
/// recomputed contributions into the local partial, and retry the
/// collective. Tasks whose results already live on a survivor are never
/// recomputed — that is what makes recovery task-granular instead of
/// stage-granular: losing one rank of `P` costs `~1/P` of the stage, not
/// the whole stage.
fn allreduce_with_reenqueue<F>(
    cursor: &mut CommCursor<'_>,
    done: &mut [bool],
    partial: &mut [Complex64],
    reenqueued: &mut usize,
    compute: &F,
) -> Result<Vec<Complex64>, ResilientError>
where
    F: Fn(usize) -> Vec<Complex64> + Sync,
{
    loop {
        match cursor.get().try_allreduce_sum_c64(partial.to_vec()) {
            Ok(total) => return Ok(total),
            Err(e) if e.is_recoverable() => {
                if cursor.recoveries() >= MAX_RECOVERIES {
                    return Err(CommError::RecoveryExhausted {
                        attempts: MAX_RECOVERIES,
                    }
                    .into());
                }
                cursor.shrink()?;
                let lost = lost_tasks(cursor, done)?;
                let c = cursor.get();
                let mine: Vec<usize> = lost
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|(i, _)| i % c.size() == c.rank())
                    .map(|(_, t)| t)
                    .collect();
                bgw_perf::counters::record_dag_reenqueued(mine.len() as u64);
                *reenqueued += mine.len();
                for (t, contrib) in mine.iter().zip(run_task_set(&mine, compute)) {
                    assert_eq!(contrib.len(), partial.len(), "task payload shape");
                    for (a, b) in partial.iter_mut().zip(&contrib) {
                        *a += *b;
                    }
                    done[*t] = true;
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// What a surviving rank reports after a task-granular (DAG) resilient
/// run.
#[derive(Clone, Debug)]
pub struct ResilientDagReport {
    /// Band indices whose self-energy was computed.
    pub sigma_bands: Vec<usize>,
    /// Quasiparticle solutions, aligned with `sigma_bands`.
    pub states: Vec<QpState>,
    /// Quasiparticle gap (Ry).
    pub gap_qp_ry: f64,
    /// Macroscopic dielectric constant.
    pub eps_macro: f64,
    /// Communicator size at the end of the run.
    pub final_size: usize,
    /// Shrink-and-retry cycles this rank performed.
    pub recoveries: u32,
    /// Fixed task count of the run: one CHI task per valence band plus
    /// the overdecomposed Sigma G' slices. Identical on every rank and
    /// invariant under shrinks — task identity never changes, only
    /// ownership does.
    pub tasks_total: usize,
    /// Orphaned tasks this rank recomputed after their owners died. Zero
    /// on fault-free runs; the sum over survivors after one crash is the
    /// dead rank's task count, not the whole stage.
    pub tasks_reenqueued: usize,
}

/// The distributed G0W0(GPP) pipeline with *task-granular* fault
/// recovery.
///
/// Where [`run_gpp_gw_resilient`] re-runs a whole stage after a crash
/// (every survivor recomputes its share from scratch), this driver
/// decomposes the CHI sum into one task per valence band and the Sigma
/// G' summation into `2 * world` slices, tracks which task results are
/// locally held, and on a crash re-enqueues only the tasks whose owner
/// died. Fault-free runs reproduce the stage-granular driver's physics
/// (same collectives, same reduction contents up to summation order);
/// faulted runs reproduce the fault-free QP energies to 1e-10 while
/// recomputing `~1/P` of the lost stages instead of all of them.
pub fn run_gpp_gw_resilient_dag(
    system: &ModelSystem,
    cfg: &GwConfig,
    comm: &Comm,
) -> Result<ResilientDagReport, ResilientError> {
    let mut cursor = CommCursor::new(comm);
    let mut reenqueued = 0usize;
    let wfn_sph = system.wfn_sphere();
    let eps_sph = system.eps_sphere();
    let wf = solve_bands(&system.crystal, &wfn_sph, system.n_bands.min(wfn_sph.len()));
    let coulomb = Coulomb::bulk_for_cell(system.crystal.lattice.volume());
    let mtxel = Mtxel::new(&wfn_sph, &eps_sph);
    let chi_cfg = ChiConfig {
        q0: coulomb.q0,
        ..cfg.chi
    };

    // CHI: one task per valence band, owners fixed round-robin over the
    // initial ranks — a lost rank orphans exactly its bands.
    let engine = ChiEngine::new(&wf, &mtxel, chi_cfg);
    let ng = engine.n_g();
    let nv = wf.n_valence;
    let chi_task = |v: usize| -> Vec<Complex64> {
        engine
            .chi_block_freqs(v, v + 1, &[0.0])
            .pop()
            .expect("single static frequency")
            .as_slice()
            .to_vec()
    };
    let mut chi_done = vec![false; nv];
    let mut chi_partial = vec![Complex64::ZERO; ng * ng];
    {
        let c = cursor.get();
        let mine: Vec<usize> = (0..nv).filter(|v| v % c.size() == c.rank()).collect();
        for (v, contrib) in mine.iter().zip(run_task_set(&mine, &chi_task)) {
            for (a, b) in chi_partial.iter_mut().zip(&contrib) {
                *a += *b;
            }
            chi_done[*v] = true;
        }
    }
    let chi0 = CMatrix::from_vec(
        ng,
        ng,
        allreduce_with_reenqueue(
            &mut cursor,
            &mut chi_done,
            &mut chi_partial,
            &mut reenqueued,
            &chi_task,
        )?,
    );

    // Epsilon: stage-granular by design (see `epsilon_stage`).
    let vsqrt = coulomb.sqrt_on_sphere(&eps_sph);
    let eps_inv = epsilon_stage(&mut cursor, &chi0, &vsqrt)?;
    let eps_macro = eps_inv.macroscopic_constant();

    // Sigma: G' slices overdecomposed 2x over the initial world, so the
    // shrunken world rebalances at task granularity.
    let rho = charge_density_g(&wf, &wfn_sph);
    let gpp = GppModel::new(
        &eps_inv,
        &eps_sph,
        &wfn_sph,
        &rho,
        system.crystal.lattice.volume(),
    );
    let k = cfg.bands_around_gap.max(1);
    let sigma_bands: Vec<usize> = (nv.saturating_sub(k)..(nv + k).min(wf.n_bands())).collect();
    let ctx = SigmaContext::build(&wf, &mtxel, gpp, &vsqrt, &sigma_bands, coulomb.q0);
    let d = cfg.sampling_delta_ry;
    let grids: Vec<Vec<f64>> = ctx
        .sigma_energies
        .iter()
        .map(|&e| vec![e - d, e, e + d])
        .collect();
    let ng_s = ctx.n_g();
    let n_slices = (comm.size() * 2).clamp(1, ng_s.max(1));
    let sigma_flops = AtomicU64::new(0);
    let sigma_task = |t: usize| -> Vec<Complex64> {
        let lo = t * ng_s / n_slices;
        let hi = (t + 1) * ng_s / n_slices;
        let part = gpp_sigma_diag_partial(&ctx, &grids, lo, hi);
        sigma_flops.fetch_add(part.flops, Ordering::Relaxed);
        part.sigma
            .iter()
            .flat_map(|band| band.iter().map(|&x| c64(x, 0.0)))
            .collect()
    };
    let t_sigma = Instant::now();
    let flat_len: usize = grids.iter().map(Vec::len).sum();
    let mut sig_done = vec![false; n_slices];
    let mut sig_partial = vec![Complex64::ZERO; flat_len];
    {
        let c = cursor.get();
        let mine: Vec<usize> = (0..n_slices).filter(|t| t % c.size() == c.rank()).collect();
        for (t, contrib) in mine.iter().zip(run_task_set(&mine, &sigma_task)) {
            for (a, b) in sig_partial.iter_mut().zip(&contrib) {
                *a += *b;
            }
            sig_done[*t] = true;
        }
    }
    let reduced = allreduce_with_reenqueue(
        &mut cursor,
        &mut sig_done,
        &mut sig_partial,
        &mut reenqueued,
        &sigma_task,
    )?;
    let mut sigma = Vec::with_capacity(grids.len());
    let mut flat_at = 0;
    for grid in &grids {
        sigma.push(
            reduced[flat_at..flat_at + grid.len()]
                .iter()
                .map(|z| z.re)
                .collect(),
        );
        flat_at += grid.len();
    }
    let diag = SigmaDiagResult {
        sigma,
        e_grids: grids,
        seconds: t_sigma.elapsed().as_secs_f64(),
        flops: sigma_flops.into_inner(),
    };

    let states = solve_qp_diag(&ctx.sigma_energies, &diag);
    let gap_qp = qp_gap(&states, ctx.homo_pos(), ctx.lumo_pos());
    Ok(ResilientDagReport {
        sigma_bands,
        states,
        gap_qp_ry: gap_qp,
        eps_macro,
        final_size: cursor.get().size(),
        recoveries: cursor.recoveries(),
        tasks_total: nv + n_slices,
        tasks_reenqueued: reenqueued,
    })
}
