//! GW perturbation theory (GWPT): electron-phonon coupling at the
//! many-body level (paper Sec. 5.1, Eq. 5).
//!
//! The atom-displacement derivative of the self-energy is assembled from
//! the first-order changes of the plane-wave matrix elements,
//! `dM_ln^G = <d psi_l| e^{iG.r} |psi_n> + <psi_l| e^{iG.r} |d psi_n>`,
//! contracted against the *frozen* GPP screening (the phonon-induced
//! change of `W` is neglected, the standard GWPT approximation):
//!
//! `[dSigma(E)]_lm = sum_n { conj(dB_n) P^{(n,E)} B_n^T
//!                         + conj(B_n) P^{(n,E)} dB_n^T }_lm`,
//!
//! which reuses the off-diagonal kernel's ZGEMM structure — this is why
//! the paper's GWPT runs ride on the optimized GPP kernels, with the `N_p`
//! perturbations embarrassingly parallel on top.
//!
//! The GW-level electron-phonon matrix elements are
//! `g^GW_lm = g^DFPT_lm + [dSigma(E)]_lm`.

use crate::mtxel::Mtxel;
use crate::sigma::{gpp_factor, SigmaContext};
use bgw_linalg::{zgemm, CMatrix, GemmBackend, Op};
use bgw_num::{c64, Complex64, UniformGrid};
use bgw_pwdft::{Perturbation, Wavefunctions};
use std::time::Instant;

/// Result of a GWPT evaluation for one perturbation.
#[derive(Clone, Debug)]
pub struct GwptResult {
    /// `dSigma(E_e)` as `(N_Sigma x N_Sigma)` matrices (Ry/bohr).
    pub d_sigma: Vec<CMatrix>,
    /// The energy grid (Ry).
    pub e_grid: UniformGrid,
    /// Mean-field (DFPT-level) coupling `g^DFPT_lm` restricted to the
    /// Sigma bands (Ry/bohr).
    pub g_dfpt: CMatrix,
    /// GW-level coupling `g^GW_lm = g^DFPT + dSigma(E*)` at the grid point
    /// nearest the band-pair average energy window center (Ry/bohr).
    pub g_gw: CMatrix,
    /// Kernel seconds (prep + ZGEMM).
    pub seconds: f64,
    /// ZGEMM FLOPs (doubled relative to plain Sigma: two products per
    /// term, two terms).
    pub zgemm_flops: u64,
}

/// First-order matrix elements `dm~` for every Sigma band: the analogue of
/// `SigmaContext::m_tilde` built from the perturbed wavefunctions.
pub fn build_dm_tilde(
    ctx: &SigmaContext,
    wf: &Wavefunctions,
    mtxel: &Mtxel,
    dpsi: &CMatrix,
    vsqrt: &[f64],
) -> Vec<CMatrix> {
    let nb = wf.n_bands();
    let ng = mtxel.n_out();
    assert_eq!(dpsi.shape(), (nb, wf.n_g()));
    // Transform every zeroth- and first-order state once (two batched
    // FFT passes) and reuse across the l x n pair loop; the old code
    // re-ran both inverse FFTs for every pair.
    let all_bands: Vec<usize> = (0..nb).collect();
    let psi_real = mtxel.to_real_space_many(wf, &all_bands);
    let dpsi_rows: Vec<&[Complex64]> = (0..nb).map(|n| dpsi.row(n)).collect();
    let dpsi_real = mtxel.vectors_to_real_space_many(&dpsi_rows);
    let mut out = Vec::with_capacity(ctx.sigma_bands.len());
    for &l in &ctx.sigma_bands {
        let psi_l = &psi_real[l];
        let dpsi_l = &dpsi_real[l];
        let mut m = CMatrix::zeros(nb, ng);
        for n in 0..nb {
            let psi_n = &psi_real[n];
            let dpsi_n = &dpsi_real[n];
            // <d psi_l| e^{iGr} |psi_n> + <psi_l| e^{iGr} |d psi_n>
            let a = mtxel.pair_from_real(dpsi_l, psi_n);
            let b = mtxel.pair_from_real(psi_l, dpsi_n);
            for (g, slot) in m.row_mut(n).iter_mut().enumerate() {
                *slot = (a[g] + b[g]).scale(vsqrt[g]);
            }
        }
        out.push(m);
    }
    out
}

/// Evaluates `dSigma(E)` on `e_grid` and assembles the GW coupling.
pub fn gwpt_dsigma(
    ctx: &SigmaContext,
    dm_tilde: &[CMatrix],
    perturbation: &Perturbation,
    wf: &Wavefunctions,
    e_grid: &UniformGrid,
    backend: GemmBackend,
) -> GwptResult {
    let ns = ctx.n_sigma();
    let ng = ctx.n_g();
    let nb = ctx.n_b();
    assert_eq!(dm_tilde.len(), ns);
    let t0 = Instant::now();
    let mut d_sigma = vec![CMatrix::zeros(ns, ns); e_grid.len()];
    let mut zgemm_flops = 0u64;

    let mut b_n = CMatrix::zeros(ns, ng);
    let mut db_n = CMatrix::zeros(ns, ng);
    let mut p = CMatrix::zeros(ng, ng);
    for n in 0..nb {
        let occupied = n < ctx.n_occ;
        let en = ctx.energies[n];
        for (s, dms) in dm_tilde.iter().enumerate() {
            b_n.row_mut(s).copy_from_slice(ctx.m_tilde[s].row(n));
            db_n.row_mut(s).copy_from_slice(dms.row(n));
        }
        let b_conj = b_n.conj();
        let db_conj = db_n.conj();
        for (ei, &e) in e_grid.points.iter().enumerate() {
            let de = e - en;
            bgw_par::parallel_rows(p.as_mut_slice(), ng, |g, row| {
                for (gp, z) in row.iter_mut().enumerate() {
                    *z = c64(gpp_factor(&ctx.gpp, g, gp, de, occupied), 0.0);
                }
            });
            // term 1: conj(dB) P B^T
            let mut t1 = CMatrix::zeros(ng, ns);
            zgemm(
                Complex64::ONE,
                &p,
                Op::None,
                &b_n,
                Op::Trans,
                Complex64::ZERO,
                &mut t1,
                backend,
            );
            zgemm(
                Complex64::ONE,
                &db_conj,
                Op::None,
                &t1,
                Op::None,
                Complex64::ONE,
                &mut d_sigma[ei],
                backend,
            );
            // term 2: conj(B) P dB^T
            let mut t2 = CMatrix::zeros(ng, ns);
            zgemm(
                Complex64::ONE,
                &p,
                Op::None,
                &db_n,
                Op::Trans,
                Complex64::ZERO,
                &mut t2,
                backend,
            );
            zgemm(
                Complex64::ONE,
                &b_conj,
                Op::None,
                &t2,
                Op::None,
                Complex64::ONE,
                &mut d_sigma[ei],
                backend,
            );
            zgemm_flops +=
                2 * (bgw_linalg::zgemm_flops(ng, ng, ns) + bgw_linalg::zgemm_flops(ns, ng, ns));
        }
    }

    // DFPT coupling restricted to the Sigma bands.
    let g_full = perturbation.coupling_matrix(wf);
    let g_dfpt = CMatrix::from_fn(ns, ns, |a, b| {
        g_full[(ctx.sigma_bands[a], ctx.sigma_bands[b])]
    });
    // Representative energy: center of the Sigma-band window.
    let e_star = 0.5
        * (ctx
            .sigma_energies
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            + ctx
                .sigma_energies
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max));
    let e_idx = e_grid.nearest(e_star);
    let mut g_gw = g_dfpt.clone();
    for a in 0..ns {
        for b in 0..ns {
            g_gw[(a, b)] += d_sigma[e_idx][(a, b)];
        }
    }
    GwptResult {
        d_sigma,
        e_grid: e_grid.clone(),
        g_dfpt,
        g_gw,
        seconds: t0.elapsed().as_secs_f64(),
        zgemm_flops,
    }
}

/// Convenience driver: builds `dpsi`, `dm~`, and runs [`gwpt_dsigma`] for
/// one atomic perturbation.
pub fn gwpt_for_perturbation(
    ctx: &SigmaContext,
    wf: &Wavefunctions,
    mtxel: &Mtxel,
    perturbation: &Perturbation,
    vsqrt: &[f64],
    e_grid: &UniformGrid,
    backend: GemmBackend,
) -> GwptResult {
    let dpsi = perturbation.first_order_wavefunctions(wf, 1e-8);
    let dm = build_dm_tilde(ctx, wf, mtxel, &dpsi, vsqrt);
    gwpt_dsigma(ctx, &dm, perturbation, wf, e_grid, backend)
}

/// Distributed GWPT: the `N_p` perturbations are independent and are
/// farmed out round-robin over the ranks of `comm` (paper Sec. 5.1: "the
/// N_p perturbations are independent and massively parallelized to full
/// scale with minimal communications"). Every rank returns the complete
/// set of results, gathered with one allgather at the end.
///
/// `perturbations` lists `(atom, axis)` pairs; all ranks must pass the
/// same list.
#[allow(clippy::too_many_arguments)]
pub fn gwpt_distributed(
    comm: &bgw_comm::Comm,
    ctx: &SigmaContext,
    wf: &Wavefunctions,
    mtxel: &Mtxel,
    crystal: &bgw_pwdft::Crystal,
    wfn_sph: &bgw_pwdft::GSphere,
    perturbations: &[(usize, usize)],
    vsqrt: &[f64],
    e_grid: &UniformGrid,
    backend: GemmBackend,
) -> Vec<CMatrix> {
    let ns = ctx.n_sigma();
    // compute my round-robin share
    let mut mine: Vec<(u64, Vec<Complex64>)> = Vec::new();
    for (p, &(atom, axis)) in perturbations.iter().enumerate() {
        if p % comm.size() != comm.rank() {
            continue;
        }
        let pert = Perturbation::new(crystal, wfn_sph, atom, axis);
        let r = gwpt_for_perturbation(ctx, wf, mtxel, &pert, vsqrt, e_grid, backend);
        mine.push((p as u64, r.g_gw.as_slice().to_vec()));
    }
    // one allgather of (index, payload) pairs — the "minimal
    // communications" of the paper's N_p parallelization
    let gathered = comm.allgather(mine);
    let mut out = vec![CMatrix::zeros(ns, ns); perturbations.len()];
    for rank_items in gathered {
        for (p, flat) in rank_items {
            out[p as usize] = CMatrix::from_vec(ns, ns, flat);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sigma::diag::{gpp_sigma_diag, KernelVariant};
    use crate::testkit;
    use bgw_pwdft::solve_bands;

    fn grid_for(ctx: &SigmaContext) -> UniformGrid {
        let lo = ctx.sigma_energies[0] - 0.5;
        let hi = *ctx.sigma_energies.last().unwrap() + 0.5;
        UniformGrid::new(lo, hi, 5)
    }

    #[test]
    fn dsigma_is_hermitian() {
        let (ctx, setup) = testkit::small_context();
        let mtxel = Mtxel::new(&setup.wfn_sph, &setup.eps_sph);
        let pert = Perturbation::new(&setup.crystal, &setup.wfn_sph, 0, 0);
        let r = gwpt_for_perturbation(
            &ctx,
            &setup.wf,
            &mtxel,
            &pert,
            &setup.vsqrt,
            &grid_for(&ctx),
            GemmBackend::Parallel,
        );
        for (ei, ds) in r.d_sigma.iter().enumerate() {
            assert!(
                ds.is_hermitian(1e-8),
                "dSigma(E_{ei}) Hermiticity error {}",
                ds.hermiticity_error()
            );
        }
        assert!(r.g_dfpt.is_hermitian(1e-8));
        assert!(r.g_gw.is_hermitian(1e-8));
        assert!(r.zgemm_flops > 0 && r.seconds > 0.0);
    }

    #[test]
    fn gw_coupling_differs_from_dfpt() {
        // The many-body correction must actually do something.
        let (ctx, setup) = testkit::small_context();
        let mtxel = Mtxel::new(&setup.wfn_sph, &setup.eps_sph);
        let pert = Perturbation::new(&setup.crystal, &setup.wfn_sph, 1, 2);
        let r = gwpt_for_perturbation(
            &ctx,
            &setup.wf,
            &mtxel,
            &pert,
            &setup.vsqrt,
            &grid_for(&ctx),
            GemmBackend::Parallel,
        );
        let diff = r.g_gw.max_abs_diff(&r.g_dfpt);
        assert!(diff > 1e-12, "GW correction to g vanished");
    }

    #[test]
    fn distributed_perturbations_match_serial() {
        let (ctx, setup) = testkit::small_context();
        let mtxel = Mtxel::new(&setup.wfn_sph, &setup.eps_sph);
        let e_grid = grid_for(&ctx);
        let perts = vec![(0usize, 0usize), (0, 1), (1, 0), (1, 2)];
        // serial reference
        let serial: Vec<CMatrix> = perts
            .iter()
            .map(|&(a, ax)| {
                let p = Perturbation::new(&setup.crystal, &setup.wfn_sph, a, ax);
                gwpt_for_perturbation(
                    &ctx,
                    &setup.wf,
                    &mtxel,
                    &p,
                    &setup.vsqrt,
                    &e_grid,
                    GemmBackend::Blocked,
                )
                .g_gw
            })
            .collect();
        let (results, stats) = bgw_comm::run_world(3, |comm| {
            let mtxel = Mtxel::new(&setup.wfn_sph, &setup.eps_sph);
            let out = gwpt_distributed(
                comm,
                &ctx,
                &setup.wf,
                &mtxel,
                &setup.crystal,
                &setup.wfn_sph,
                &perts,
                &setup.vsqrt,
                &e_grid,
                GemmBackend::Blocked,
            );
            out.iter()
                .map(|m| m.as_slice().to_vec())
                .collect::<Vec<_>>()
        });
        for rank_out in results {
            for (p, flat) in rank_out.into_iter().enumerate() {
                let m = CMatrix::from_vec(ctx.n_sigma(), ctx.n_sigma(), flat);
                assert!(
                    m.max_abs_diff(&serial[p]) < 1e-9,
                    "perturbation {p}: {}",
                    m.max_abs_diff(&serial[p])
                );
            }
        }
        assert!(stats.iter().all(|s| s.collectives >= 1));
    }

    #[test]
    fn finite_difference_consistency_of_dsigma_diag() {
        // dSigma_ll from GWPT (frozen screening, frozen energies) must
        // match the finite difference of Sigma_ll built from displaced
        // wavefunctions with the SAME GPP model and band energies.
        // The sum-over-states response is exact only if all bands of the
        // basis are kept, so solve the small system completely.
        let (_, setup) = testkit::small_context();
        let n_full = setup.wfn_sph.len();
        let wf = solve_bands(&setup.crystal, &setup.wfn_sph, n_full);
        let mtxel = Mtxel::new(&setup.wfn_sph, &setup.eps_sph);
        // Sigma_ll is only rotation-invariant for non-degenerate l, so the
        // finite-difference comparison must use isolated bands.
        let isolated: Vec<usize> = (0..wf.n_bands())
            .filter(|&n| {
                let below = n == 0 || wf.energies[n] - wf.energies[n - 1] > 0.05;
                let above = n + 1 >= wf.n_bands() || wf.energies[n + 1] - wf.energies[n] > 0.05;
                below && above
            })
            .take(2)
            .collect();
        assert_eq!(
            isolated.len(),
            2,
            "need two isolated bands for the FD check"
        );
        let sigma_bands = isolated;
        let ctx = SigmaContext::build(
            &wf,
            &mtxel,
            // reuse the converged small-system GPP screening
            {
                let (c, _) = testkit::small_context();
                c.gpp.clone()
            },
            &setup.vsqrt,
            &sigma_bands,
            // q0 = 0: the naive G = 0 elements are exactly constant under
            // displacement (orthonormality), matching the dM construction
            0.0,
        );
        let atom = 0;
        let axis = 0;
        let pert = Perturbation::new(&setup.crystal, &setup.wfn_sph, atom, axis);
        let e_grid = UniformGrid::new(ctx.sigma_energies[0], ctx.sigma_energies[1], 2);
        let r = gwpt_for_perturbation(
            &ctx,
            &wf,
            &mtxel,
            &pert,
            &setup.vsqrt,
            &e_grid,
            GemmBackend::Blocked,
        );
        // finite difference: Sigma with displaced wavefunctions, frozen
        // energies and screening.
        let h = 2e-3;
        let sig_at = |sign: f64| -> Vec<Vec<f64>> {
            let disp = setup.crystal.with_displacement(atom, [sign * h, 0.0, 0.0]);
            let wf_d = solve_bands(&disp, &setup.wfn_sph, n_full);
            let mut ctx_d = SigmaContext::build(
                &wf_d,
                &mtxel,
                ctx.gpp.clone(),
                &setup.vsqrt,
                &sigma_bands,
                0.0,
            );
            // freeze energies at the unperturbed values (Eq. 5 keeps only
            // the dM terms)
            ctx_d.energies = ctx.energies.clone();
            ctx_d.sigma_energies = ctx.sigma_energies.clone();
            let grids: Vec<Vec<f64>> = (0..2).map(|s| vec![e_grid.points[s]]).collect();
            gpp_sigma_diag(&ctx_d, &grids, KernelVariant::Reference).sigma
        };
        let plus = sig_at(1.0);
        let minus = sig_at(-1.0);
        for s in 0..2 {
            let fd = (plus[s][0] - minus[s][0]) / (2.0 * h);
            let an = r.d_sigma[s][(s, s)].re; // grid point s equals e_grid.points[s]
            let scale = an.abs().max(fd.abs()).max(1e-3);
            assert!(
                (fd - an).abs() / scale < 0.05,
                "band {s}: FD {fd} vs GWPT {an}"
            );
        }
    }
}
