//! Static COHSEX self-energy.
//!
//! The static (`omega -> 0`) limit of the GW self-energy splits into the
//! screened-exchange and Coulomb-hole terms with no frequency dependence:
//!
//! `Sigma^SX_ll  = - sum_{n occ} sum_GG' m~_ln^* W~_GG'(0) m~_ln`
//! `Sigma^COH_ll = (1/2) sum_{n} sum_GG' m~_ln^* (W~ - I)_GG'(0) m~_ln`
//!
//! (the COH closure `sum_n |n><n| = 1` is truncated to the computed
//! bands, the standard sum-over-bands COHSEX). COHSEX is BerkeleyGW's
//! cheap static option and the natural cross-check of the GPP and
//! full-frequency kernels: all three must agree on sign and ordering of
//! the corrections, while COHSEX systematically overbinds.

use crate::epsilon::EpsilonInverse;
use crate::sigma::SigmaContext;
use bgw_num::Complex64;

/// COHSEX result per Sigma band.
#[derive(Clone, Copy, Debug)]
pub struct CohsexValue {
    /// Screened exchange (Ry), negative for occupied contributions.
    pub sx: f64,
    /// Coulomb hole (Ry), negative.
    pub coh: f64,
}

impl CohsexValue {
    /// Total static self-energy (Ry).
    pub fn total(&self) -> f64 {
        self.sx + self.coh
    }
}

/// Evaluates the static COHSEX self-energy for every band of the context.
pub fn cohsex_sigma(ctx: &SigmaContext, eps_inv: &EpsilonInverse) -> Vec<CohsexValue> {
    let w = eps_inv.static_inv();
    let ng = ctx.n_g();
    assert_eq!(w.nrows(), ng);
    let nb = ctx.n_b();
    let mut out = Vec::with_capacity(ctx.n_sigma());
    for m in &ctx.m_tilde {
        let mut sx = 0.0;
        let mut coh = 0.0;
        for n in 0..nb {
            let row = m.row(n);
            // bilinear forms row^dagger W row and row^dagger (W - I) row
            let mut w_full = Complex64::ZERO;
            let mut norm2 = 0.0;
            for (g, &mg) in row.iter().enumerate() {
                let mut inner = Complex64::ZERO;
                for (gp, &mgp) in row.iter().enumerate() {
                    inner = inner.mul_add(w[(g, gp)], mgp);
                }
                w_full = w_full.conj_mul_add(mg, inner);
                norm2 += mg.norm_sqr();
            }
            if n < ctx.n_occ {
                sx -= w_full.re;
            }
            coh += 0.5 * (w_full.re - norm2);
        }
        out.push(CohsexValue { sx, coh });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sigma::diag::{gpp_sigma_diag, KernelVariant};
    use crate::testkit;

    #[test]
    fn cohsex_has_gw_structure() {
        let (ctx, setup) = testkit::small_context();
        let vals = cohsex_sigma(&ctx, &setup.eps_inv);
        assert_eq!(vals.len(), ctx.n_sigma());
        // occupied bands: SX large and negative; COH negative for all
        let homo = vals[ctx.homo_pos()];
        let lumo = vals[ctx.lumo_pos()];
        assert!(homo.sx < 0.0, "SX_HOMO = {}", homo.sx);
        assert!(homo.coh < 0.0 && lumo.coh < 0.0, "COH must be negative");
        // empty bands have much weaker SX (only through band mixing)
        assert!(lumo.sx.abs() < homo.sx.abs());
        // gap opens: Sigma_HOMO < Sigma_LUMO
        assert!(homo.total() < lumo.total());
    }

    #[test]
    fn cohsex_tracks_gpp_at_static_level() {
        // COHSEX and GPP agree in sign and are the same order of
        // magnitude; COHSEX overbinds (|Sigma| at least as large for the
        // occupied states).
        let (ctx, setup) = testkit::small_context();
        let vals = cohsex_sigma(&ctx, &setup.eps_inv);
        let grids: Vec<Vec<f64>> = ctx.sigma_energies.iter().map(|&e| vec![e]).collect();
        let gpp = gpp_sigma_diag(&ctx, &grids, KernelVariant::Reference);
        for (s, val) in vals.iter().enumerate() {
            let c = val.total();
            let g = gpp.sigma[s][0];
            assert_eq!(c.signum(), g.signum(), "band {s}: {c} vs {g}");
            let ratio = (c / g).abs();
            assert!(
                (0.3..6.0).contains(&ratio),
                "band {s}: COHSEX {c} vs GPP {g}"
            );
        }
        let h = ctx.homo_pos();
        assert!(
            vals[h].total().abs() >= 0.8 * gpp.sigma[h][0].abs(),
            "static COHSEX should not underbind dramatically"
        );
    }

    #[test]
    fn coh_shrinks_when_screening_is_off() {
        // With eps^-1 = I (no screening), COH vanishes identically and SX
        // reduces to bare exchange.
        let (ctx, setup) = testkit::small_context();
        let mut bare = setup.eps_inv.clone();
        bare.inv[0] = bgw_linalg::CMatrix::identity(ctx.n_g());
        let vals = cohsex_sigma(&ctx, &bare);
        for v in &vals {
            assert!(v.coh.abs() < 1e-12, "COH must vanish without screening");
            assert!(v.sx < 0.0);
        }
    }
}
