//! Persistent per-host ZGEMM autotune table.
//!
//! The sweep in `bgw-bench`'s `ablation_gemm_tuning` measures every
//! registered microkernel shape x cache-tile candidate per (ISA,
//! shape-class) and persists the winners here, mirroring the paper's
//! Tensile story (Sec. 7.3): tuning happens once per machine, production
//! runs just look the answer up. `GemmBackend::Tuned` consults the table
//! at first use through a process-wide cache ([`cached`]), exactly like
//! the FFT's `cached_plan`.
//!
//! The file is versioned JSON (`bgw-autotune/1`), written atomically
//! (tmp + rename, like the checkpoint writer), and treated as *advisory*:
//! a corrupt, stale-version, foreign-host or otherwise surprising file
//! silently resolves to "no entry" and the built-in defaults apply. The
//! cache is host-specific and always safe to delete.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use crate::gemm::TileParams;
use bgw_num::simd::Isa;
use bgw_trace::report::json;

/// Format tag checked on load; bump on breaking layout changes so stale
/// tables from older builds fall back to defaults instead of misparsing.
pub const FORMAT: &str = "bgw-autotune/1";

/// Environment variable overriding the table location (used by tests and
/// the `--simd` gate to isolate runs).
pub const PATH_ENV: &str = "BGW_AUTOTUNE_PATH";

/// Coarse problem-shape bucket keyed alongside the ISA. Classified by the
/// effective cubic dimension `cbrt(m*k*n)` so skinny and square problems
/// with the same volume share tiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShapeClass {
    /// Effective dimension below 96: panel fits in L2, tiling barely
    /// matters.
    Small,
    /// Effective dimension 96..=224: the crossover region the tile sweep
    /// cares most about.
    Moderate,
    /// Effective dimension above 224: streaming regime, big `kc`/`nc`
    /// win.
    Large,
}

impl ShapeClass {
    /// Buckets an `m x k x n` problem by `cbrt(m*k*n)`.
    pub fn classify(m: usize, k: usize, n: usize) -> ShapeClass {
        let eff = ((m as f64) * (k as f64) * (n as f64)).cbrt();
        if eff < 96.0 {
            ShapeClass::Small
        } else if eff <= 224.0 {
            ShapeClass::Moderate
        } else {
            ShapeClass::Large
        }
    }

    /// Stable lowercase name used in the table file and benchmark JSON.
    pub fn name(self) -> &'static str {
        match self {
            ShapeClass::Small => "small",
            ShapeClass::Moderate => "moderate",
            ShapeClass::Large => "large",
        }
    }

    /// Inverse of [`ShapeClass::name`]; `None` for unknown strings.
    pub fn from_name(s: &str) -> Option<ShapeClass> {
        match s {
            "small" => Some(ShapeClass::Small),
            "moderate" => Some(ShapeClass::Moderate),
            "large" => Some(ShapeClass::Large),
            _ => None,
        }
    }

    /// Every class, small to large.
    pub fn all() -> [ShapeClass; 3] {
        [ShapeClass::Small, ShapeClass::Moderate, ShapeClass::Large]
    }

    /// A representative square dimension for sweeping this class.
    pub fn representative_dim(self) -> usize {
        match self {
            ShapeClass::Small => 64,
            ShapeClass::Moderate => 160,
            ShapeClass::Large => 384,
        }
    }
}

/// Winning configuration for one (ISA, shape-class) bucket.
#[derive(Clone, Debug, PartialEq)]
pub struct AutotuneEntry {
    /// Register-tile rows of the winning microkernel.
    pub mr: usize,
    /// Register-tile columns of the winning microkernel.
    pub nr: usize,
    /// Winning cache tiles.
    pub tiles: TileParams,
    /// Measured throughput of the winner, for reporting only.
    pub gflops: f64,
}

/// The persisted table: winners keyed by (ISA, shape class). `BTreeMap`
/// keeps the serialized entry order deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AutotuneTable {
    entries: BTreeMap<(Isa, ShapeClass), AutotuneEntry>,
}

impl AutotuneTable {
    /// An empty table.
    pub fn new() -> AutotuneTable {
        AutotuneTable::default()
    }

    /// Number of stored winners.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no winners are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Winner for one (ISA, shape-class) bucket.
    pub fn get(&self, isa: Isa, class: ShapeClass) -> Option<&AutotuneEntry> {
        self.entries.get(&(isa, class))
    }

    /// Records (or replaces) the winner for one bucket.
    pub fn set(&mut self, isa: Isa, class: ShapeClass, entry: AutotuneEntry) {
        self.entries.insert((isa, class), entry);
    }

    /// Iterates stored winners in deterministic key order.
    pub fn iter(&self) -> impl Iterator<Item = (&(Isa, ShapeClass), &AutotuneEntry)> {
        self.entries.iter()
    }

    /// Serializes to the versioned JSON format. Throughput is stored as
    /// integer milli-GFLOP/s (the table format, like the run reports,
    /// keeps to integer JSON numbers).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"format\": {},\n", json::quote(FORMAT)));
        out.push_str("  \"entries\": [\n");
        let mut first = true;
        for (&(isa, class), e) in &self.entries {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {{\"isa\": {}, \"class\": {}, \"mr\": {}, \"nr\": {}, \"mc\": {}, \"kc\": {}, \"nc\": {}, \"mgflops\": {}}}",
                json::quote(isa.name()),
                json::quote(class.name()),
                e.mr,
                e.nr,
                e.tiles.mc,
                e.tiles.kc,
                e.tiles.nc,
                (e.gflops * 1000.0).round().max(0.0) as u64,
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a table file. Returns `None` for anything unexpected —
    /// malformed JSON, wrong/missing format tag — and silently skips
    /// individual entries with unknown ISA/class names or implausible
    /// dimensions (a stale table must degrade to defaults, never panic).
    pub fn parse(text: &str) -> Option<AutotuneTable> {
        let doc = json::parse(text).ok()?;
        let obj = doc.as_object()?;
        if json::get(obj, "format")?.as_str()? != FORMAT {
            return None;
        }
        let mut table = AutotuneTable::new();
        for item in json::get(obj, "entries")?.as_array()? {
            let e = match item.as_object() {
                Some(e) => e,
                None => continue,
            };
            let parsed = (|| {
                let isa = Isa::from_name(json::get(e, "isa")?.as_str()?)?;
                let class = ShapeClass::from_name(json::get(e, "class")?.as_str()?)?;
                let dim = |key: &str| -> Option<usize> {
                    let v = json::get(e, key)?.as_u64()? as usize;
                    (1..=65536).contains(&v).then_some(v)
                };
                let entry = AutotuneEntry {
                    mr: dim("mr")?,
                    nr: dim("nr")?,
                    tiles: TileParams {
                        mc: dim("mc")?,
                        kc: dim("kc")?,
                        nc: dim("nc")?,
                    },
                    gflops: json::get(e, "mgflops")?.as_u64()? as f64 / 1000.0,
                };
                Some((isa, class, entry))
            })();
            if let Some((isa, class, entry)) = parsed {
                table.set(isa, class, entry);
            }
        }
        Some(table)
    }
}

/// Resolves the table path: [`PATH_ENV`] override, else
/// `$XDG_CACHE_HOME/bgw-autotune.json`, else `$HOME/.cache/...`, else the
/// current directory.
pub fn default_path() -> PathBuf {
    if let Ok(p) = std::env::var(PATH_ENV) {
        if !p.is_empty() {
            return PathBuf::from(p);
        }
    }
    if let Ok(cache) = std::env::var("XDG_CACHE_HOME") {
        if !cache.is_empty() {
            return Path::new(&cache).join("bgw-autotune.json");
        }
    }
    if let Ok(home) = std::env::var("HOME") {
        if !home.is_empty() {
            return Path::new(&home).join(".cache").join("bgw-autotune.json");
        }
    }
    PathBuf::from("bgw-autotune.json")
}

/// Loads a table from `path`; `None` on any read or parse problem.
pub fn load(path: &Path) -> Option<AutotuneTable> {
    AutotuneTable::parse(&std::fs::read_to_string(path).ok()?)
}

/// Atomically persists `table` to `path` (unique sibling tmp file, then
/// rename — a concurrent reader sees the old table or the new one, never
/// a torn write). Creates parent directories as needed.
pub fn save(path: &Path, table: &AutotuneTable) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, table.to_json())?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

static CACHED: OnceLock<Option<AutotuneTable>> = OnceLock::new();

/// The process-wide table loaded from [`default_path`] on first use
/// (mirroring the FFT's `cached_plan`): `None` when no valid table
/// exists. `GemmBackend::Tuned` resolves through this, so production
/// ZGEMMs never re-read the file.
pub fn cached() -> Option<&'static AutotuneTable> {
    CACHED.get_or_init(|| load(&default_path())).as_ref()
}

/// Cached winner for one (effective-ISA, shape-class) bucket.
pub fn lookup(isa: Isa, class: ShapeClass) -> Option<AutotuneEntry> {
    cached().and_then(|t| t.get(isa, class)).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AutotuneTable {
        let mut t = AutotuneTable::new();
        t.set(
            Isa::Scalar,
            ShapeClass::Moderate,
            AutotuneEntry {
                mr: 4,
                nr: 4,
                tiles: TileParams {
                    mc: 48,
                    kc: 192,
                    nc: 192,
                },
                gflops: 3.125,
            },
        );
        t.set(
            Isa::Avx512,
            ShapeClass::Large,
            AutotuneEntry {
                mr: 8,
                nr: 8,
                tiles: TileParams {
                    mc: 96,
                    kc: 384,
                    nc: 384,
                },
                gflops: 55.5,
            },
        );
        t
    }

    #[test]
    fn roundtrips_through_json() {
        let t = sample();
        let parsed = AutotuneTable::parse(&t.to_json()).expect("own output must parse");
        assert_eq!(parsed, t);
    }

    #[test]
    fn classify_buckets_by_effective_dim() {
        assert_eq!(ShapeClass::classify(64, 64, 64), ShapeClass::Small);
        assert_eq!(ShapeClass::classify(128, 128, 128), ShapeClass::Moderate);
        assert_eq!(ShapeClass::classify(512, 512, 512), ShapeClass::Large);
        // Skinny problem with moderate volume lands with its volume peers.
        assert_eq!(ShapeClass::classify(1, 128, 16384), ShapeClass::Moderate);
    }

    #[test]
    fn corrupt_and_stale_inputs_fall_back_to_none() {
        assert_eq!(AutotuneTable::parse(""), None);
        assert_eq!(AutotuneTable::parse("not json at all {"), None);
        assert_eq!(
            AutotuneTable::parse("{\"entries\": []}"),
            None,
            "missing format tag"
        );
        let stale = sample().to_json().replace(FORMAT, "bgw-autotune/0");
        assert_eq!(
            AutotuneTable::parse(&stale),
            None,
            "stale version must be rejected"
        );
    }

    #[test]
    fn unknown_entries_are_skipped_not_fatal() {
        let text = format!(
            "{{\"format\": {q}, \"entries\": [\
               {{\"isa\": \"sve\", \"class\": \"large\", \"mr\": 4, \"nr\": 4, \"mc\": 64, \"kc\": 128, \"nc\": 256, \"mgflops\": 1000}},\
               {{\"isa\": \"scalar\", \"class\": \"small\", \"mr\": 4, \"nr\": 4, \"mc\": 0, \"kc\": 128, \"nc\": 256, \"mgflops\": 1000}},\
               {{\"isa\": \"scalar\", \"class\": \"small\", \"mr\": 4, \"nr\": 4, \"mc\": 64, \"kc\": 128, \"nc\": 256, \"mgflops\": 2500}}\
             ]}}",
            q = json::quote(FORMAT)
        );
        let t = AutotuneTable::parse(&text).expect("valid envelope");
        assert_eq!(t.len(), 1, "unknown ISA and zero tile entries are dropped");
        let e = t
            .get(Isa::Scalar, ShapeClass::Small)
            .expect("good entry kept");
        assert!((e.gflops - 2.5).abs() < 1e-12);
    }

    #[test]
    fn save_load_roundtrip_is_atomic_and_creates_dirs() {
        let dir = std::env::temp_dir().join(format!("bgw-autotune-test-{}", std::process::id()));
        let path = dir.join("nested").join("table.json");
        let t = sample();
        save(&path, &t).expect("save");
        assert_eq!(load(&path), Some(t.clone()));
        // Overwrite must not leave tmp droppings behind.
        save(&path, &t).expect("re-save");
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("table.json")]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
