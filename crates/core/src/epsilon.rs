//! The Epsilon module: dielectric matrices and their inverses (Eq. 3).
//!
//! Works with the *symmetrized* dielectric matrix
//! `eps~_GG' = delta_GG' - v^{1/2}(G) chi_GG' v^{1/2}(G')`, which is
//! Hermitian at `omega = 0` and keeps the self-energy contractions in the
//! clean form `(v^{1/2} M)^dagger eps~^{-1} (v^{1/2} M)`.

use crate::coulomb::Coulomb;
use bgw_linalg::{invert, CMatrix};
use bgw_num::Complex64;
use bgw_pwdft::GSphere;

/// The inverse symmetrized dielectric matrix at a set of frequencies.
#[derive(Clone, Debug)]
pub struct EpsilonInverse {
    /// Frequencies (Ry) at which `eps~^{-1}` is stored; `omegas[0]` must be
    /// 0 for the static matrix used by GPP and the subspace construction.
    pub omegas: Vec<f64>,
    /// `eps~^{-1}(omega_i)`, same order as `omegas`.
    pub inv: Vec<CMatrix>,
    /// `sqrt(v(G))` on the sphere (for symmetrizing matrix elements).
    pub vsqrt: Vec<f64>,
}

impl EpsilonInverse {
    /// Builds `eps~(omega) = I - v^{1/2} chi(omega) v^{1/2}` and inverts it
    /// for every supplied polarizability.
    pub fn build(chis: &[CMatrix], omegas: &[f64], coulomb: &Coulomb, sph: &GSphere) -> Self {
        assert_eq!(chis.len(), omegas.len());
        assert!(!chis.is_empty(), "need at least one frequency");
        let vsqrt = coulomb.sqrt_on_sphere(sph);
        let inv = chis
            .iter()
            .map(|chi| {
                let n = chi.nrows();
                assert_eq!(n, sph.len(), "chi dimension mismatch");
                let mut eps = CMatrix::identity(n);
                for i in 0..n {
                    for j in 0..n {
                        eps[(i, j)] -= chi[(i, j)].scale(vsqrt[i] * vsqrt[j]);
                    }
                }
                invert(&eps).expect("dielectric matrix must be invertible")
            })
            .collect();
        Self {
            omegas: omegas.to_vec(),
            inv,
            vsqrt,
        }
    }

    /// Reassembles an `EpsilonInverse` from already-inverted blocks — the
    /// restart path: checkpointed `eps~^{-1}(omega_i)` matrices are loaded
    /// back without redoing the inversion.
    pub fn from_parts(omegas: Vec<f64>, inv: Vec<CMatrix>, vsqrt: Vec<f64>) -> Self {
        assert_eq!(omegas.len(), inv.len());
        Self { omegas, inv, vsqrt }
    }

    /// The static inverse (`omega = 0`).
    pub fn static_inv(&self) -> &CMatrix {
        assert_eq!(self.omegas[0], 0.0, "first frequency must be 0");
        &self.inv[0]
    }

    /// Basis size `N_G`.
    pub fn n_g(&self) -> usize {
        self.vsqrt.len()
    }

    /// Number of stored frequencies.
    pub fn n_freq(&self) -> usize {
        self.omegas.len()
    }

    /// The screening part `eps~^{-1}(omega_i) - I` (what enters the
    /// correlation self-energy).
    pub fn correlation_part(&self, i: usize) -> CMatrix {
        let mut w = self.inv[i].clone();
        for d in 0..w.nrows() {
            w[(d, d)] -= Complex64::ONE;
        }
        w
    }

    /// Macroscopic screening: `1 / eps~^{-1}_head(0)` (the effective
    /// dielectric constant of the model system).
    pub fn macroscopic_constant(&self) -> f64 {
        1.0 / self.static_inv()[(0, 0)].re
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chi::{ChiConfig, ChiEngine};
    use crate::mtxel::Mtxel;
    use bgw_pwdft::{solve_bands, Crystal, Species, Wavefunctions};

    fn setup() -> (GSphere, GSphere, Wavefunctions) {
        let c = Crystal::diamond(Species::Si, bgw_pwdft::pseudo::SI_A0);
        let wfn = GSphere::new(&c.lattice, 2.2);
        let eps = GSphere::new(&c.lattice, 1.0);
        let wf = solve_bands(&c, &wfn, 24);
        (wfn, eps, wf)
    }

    fn cell_coulomb() -> Coulomb {
        let c = Crystal::diamond(Species::Si, bgw_pwdft::pseudo::SI_A0);
        Coulomb::bulk_for_cell(c.lattice.volume())
    }

    fn build_eps(freqs: &[f64]) -> EpsilonInverse {
        let (wfn, eps_sph, wf) = setup();
        let coulomb = cell_coulomb();
        let mtxel = Mtxel::new(&wfn, &eps_sph);
        let cfg = ChiConfig {
            q0: coulomb.q0,
            ..ChiConfig::default()
        };
        let engine = ChiEngine::new(&wf, &mtxel, cfg);
        let (chis, _) = engine.chi_freqs(freqs);
        EpsilonInverse::build(&chis, freqs, &coulomb, &eps_sph)
    }

    #[test]
    fn static_inverse_is_hermitian_and_screens() {
        let e = build_eps(&[0.0]);
        let inv0 = e.static_inv();
        assert!(inv0.is_hermitian(1e-8), "err {}", inv0.hermiticity_error());
        // Screening: 0 < eps~^{-1}_00 < 1 for an insulator.
        let head = inv0[(0, 0)].re;
        assert!(head > 0.0 && head < 1.0, "head = {head}");
        let eps_macro = e.macroscopic_constant();
        assert!(eps_macro > 1.0, "macroscopic eps = {eps_macro}");
    }

    #[test]
    fn inverse_times_eps_is_identity() {
        let (wfn, eps_sph, wf) = setup();
        let coul = cell_coulomb();
        let mtxel = Mtxel::new(&wfn, &eps_sph);
        let cfg = ChiConfig {
            q0: coul.q0,
            ..ChiConfig::default()
        };
        let engine = ChiEngine::new(&wf, &mtxel, cfg);
        let chi0 = engine.chi_static();
        let e = EpsilonInverse::build(std::slice::from_ref(&chi0), &[0.0], &coul, &eps_sph);
        // rebuild eps~ and check eps~ * inv = I
        let n = chi0.nrows();
        let vs = coul.sqrt_on_sphere(&eps_sph);
        let mut eps_m = CMatrix::identity(n);
        for i in 0..n {
            for j in 0..n {
                eps_m[(i, j)] -= chi0[(i, j)].scale(vs[i] * vs[j]);
            }
        }
        let prod = bgw_linalg::matmul(
            &eps_m,
            bgw_linalg::Op::None,
            e.static_inv(),
            bgw_linalg::Op::None,
            bgw_linalg::GemmBackend::Blocked,
        );
        assert!(prod.max_abs_diff(&CMatrix::identity(n)) < 1e-8);
    }

    #[test]
    fn screening_fades_at_high_frequency() {
        // omega = 50 Ry is far beyond every transition of the small model,
        // so the response dies out: eps~^{-1} -> I.
        let e = build_eps(&[0.0, 50.0]);
        let head0 = (e.inv[0][(0, 0)] - bgw_num::c64(1.0, 0.0)).abs();
        let head50 = (e.inv[1][(0, 0)] - bgw_num::c64(1.0, 0.0)).abs();
        assert!(
            head50 < 0.2 * head0.max(0.05),
            "head50 {head50} vs head0 {head0}"
        );
        let corr = e.correlation_part(1);
        assert!(corr[(0, 0)].abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "first frequency must be 0")]
    fn static_inv_requires_zero_first() {
        let e = build_eps(&[0.0]);
        let bad = EpsilonInverse {
            omegas: vec![1.0],
            inv: e.inv.clone(),
            vsqrt: e.vsqrt.clone(),
        };
        let _ = bad.static_inv();
    }
}
