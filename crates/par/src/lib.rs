//! `bgw-par`: node-level data parallelism on a persistent worker pool.
//!
//! On the machines in the paper each MPI rank drives a GPU with thousands
//! of threads; in this reproduction a rank is a thread and the *node-level*
//! parallelism inside a rank is provided by this crate: dynamically
//! scheduled `parallel_for` / `parallel_reduce` over index ranges (the
//! software analogue of the two-level work-group decomposition of paper
//! Sec. 5.5).
//!
//! Execution runs on a lazily created, process-wide pool of parked worker
//! threads. A parallel call publishes its body once (an epoch bump on a
//! condition variable wakes the workers), every participant pulls chunks
//! from a shared atomic counter, and the caller blocks until the region
//! has quiesced. Workers then park again, so the per-call cost is a
//! wake/park cycle instead of the thread spawn/join the previous
//! implementation paid on *every* `parallel_for` — which sat on the hot
//! path of every GW kernel (CHI_SUM, GPP diag/off-diag, GWPT, ZGEMM).
//!
//! Re-entrancy rule: a parallel call made from inside a parallel region
//! (from a worker, or from the caller's own body), or while another OS
//! thread is dispatching, runs inline on the calling thread. This makes
//! nesting and concurrent callers deadlock-free by construction.
//!
//! The worker count defaults to the machine's available parallelism and
//! can be overridden with the `BGW_THREADS` environment variable or
//! [`set_num_threads`].

#![warn(missing_docs)]

pub mod dag;

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Upper bound on pool threads, a guard against absurd `BGW_THREADS`.
const MAX_POOL_WORKERS: usize = 128;

/// Sets the number of worker threads used by subsequent parallel calls.
/// A value of 0 restores the automatic default.
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n, Ordering::Relaxed);
}

/// Returns the number of worker threads parallel calls will use.
pub fn num_threads() -> usize {
    let n = NUM_THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    if let Ok(s) = std::env::var("BGW_THREADS") {
        if let Ok(v) = s.parse::<usize>() {
            if v > 0 {
                return v;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Picks a chunk size that yields a few chunks per worker for dynamic load
/// balance, with a floor of `min_chunk` to bound scheduling overhead.
///
/// The returned size is *balanced*: the raw `(n / (4 * workers))`-style
/// target is rounded to the ceil-split of `n` over the chunk count that
/// target implies, so `n` just above a multiple of `workers * min_chunk`
/// no longer strands a sliver remainder chunk on one worker (e.g.
/// `n = 65, workers = 4, min_chunk = 16` used to split `16/16/16/16/1`,
/// doubling one worker's share; it now splits `13/13/13/13/13`).
pub fn auto_chunk(n: usize, workers: usize, min_chunk: usize) -> usize {
    if n == 0 {
        return 1;
    }
    let target = workers.max(1) * 4;
    let raw = (n / target).max(min_chunk).max(1);
    let n_chunks = n.div_ceil(raw);
    n.div_ceil(n_chunks)
}

/// The balanced chunk decomposition `[lo, hi)` ranges that
/// [`parallel_for_chunked`] executes for `(n, chunk)`: `k = ceil(n /
/// chunk)` chunks whose sizes differ by at most one index (the first
/// `n mod k` chunks carry the extra element). Every chunk size is
/// `<= chunk`, so caller-side scratch sized for `chunk` stays valid.
pub fn chunk_bounds(n: usize, chunk: usize, i: usize) -> (usize, usize) {
    let chunk = chunk.max(1);
    let k = n.div_ceil(chunk).max(1);
    debug_assert!(i < k);
    let base = n / k;
    let rem = n % k;
    let lo = i * base + i.min(rem);
    let hi = lo + base + usize::from(i < rem);
    (lo, hi)
}

/// Number of chunks [`chunk_bounds`] splits `n` indices into.
pub fn chunk_count(n: usize, chunk: usize) -> usize {
    if n == 0 {
        return 0;
    }
    n.div_ceil(chunk.max(1))
}

// ---------------------------------------------------------------------------
// The persistent pool.
// ---------------------------------------------------------------------------

thread_local! {
    /// True on pool workers (always) and on a dispatcher while it runs its
    /// own share of a region; nested parallel calls check it to run inline.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
    /// Wall nanoseconds consumed by *completed* nested parallel regions at
    /// the current nesting level on this thread. Each region executor
    /// zeroes it on entry, reads it on exit to subtract nested-region time
    /// from its own, and reports its full wall to the level it restored —
    /// so every nanosecond of region time is charged to exactly one of
    /// `pool_dispatch_ns` / `pool_region_ns` / `pool_inline_ns`.
    static CHILD_PAR_NS: Cell<u64> = const { Cell::new(0) };
}

/// Times one region execution on this thread with exclusive attribution:
/// `finish()` yields `(wall_ns, exclusive_ns)` where exclusive excludes
/// nested parallel regions the body completed, and the full wall is
/// reported to the enclosing level. The drop path keeps `CHILD_PAR_NS`
/// consistent when the region body unwinds.
struct RegionTimer {
    saved: u64,
    t0: Instant,
    done: bool,
}

impl RegionTimer {
    fn start() -> Self {
        Self {
            saved: CHILD_PAR_NS.with(|c| c.replace(0)),
            t0: Instant::now(),
            done: false,
        }
    }

    fn finish(mut self) -> (u64, u64) {
        self.done = true;
        let wall = self.t0.elapsed().as_nanos() as u64;
        let child = CHILD_PAR_NS.with(|c| c.get());
        CHILD_PAR_NS.with(|c| c.set(self.saved + wall));
        (wall, wall.saturating_sub(child))
    }
}

impl Drop for RegionTimer {
    fn drop(&mut self) {
        if !self.done {
            let wall = self.t0.elapsed().as_nanos() as u64;
            CHILD_PAR_NS.with(|c| c.set(self.saved + wall));
        }
    }
}

/// Lifetime-erased pointer to a region body `Fn(slot)`.
#[derive(Clone, Copy)]
struct JobRef(*const (dyn Fn(usize) + Sync + 'static));
// SAFETY: the pointee is `Sync` and the dispatcher keeps the referent alive
// (and uniquely published) until every worker has finished the epoch.
unsafe impl Send for JobRef {}

struct PoolState {
    /// Bumped once per published region; workers sleep until it changes.
    epoch: u64,
    /// The current region body, valid for exactly one epoch.
    job: Option<JobRef>,
    /// Dispatcher's span at publish time; workers adopt it so their spans
    /// nest under the dispatching call in the trace tree.
    job_trace: Option<bgw_trace::Handle>,
    /// Workers that have not yet finished the current epoch.
    active: usize,
    /// Worker threads spawned so far (they never exit).
    spawned: usize,
    /// Set when a worker's body panicked during the current epoch.
    panicked: bool,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Workers park here waiting for the next epoch.
    work_cv: Condvar,
    /// The dispatcher parks here waiting for quiescence.
    done_cv: Condvar,
    /// Serializes dispatchers; `try_lock` failure means "run inline".
    dispatch: Mutex<()>,
}

fn lock_state(p: &'static Pool) -> MutexGuard<'static, PoolState> {
    // A panic inside a region body is caught before the state lock is
    // touched, so poisoning can only come from unwinding in this module;
    // recover the guard rather than compounding the failure.
    p.state.lock().unwrap_or_else(|e| e.into_inner())
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            epoch: 0,
            job: None,
            job_trace: None,
            active: 0,
            spawned: 0,
            panicked: false,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
        dispatch: Mutex::new(()),
    })
}

fn worker_loop(p: &'static Pool, slot: usize, mut seen: u64) {
    IN_PARALLEL.with(|c| c.set(true));
    loop {
        let (job, job_trace) = {
            let mut st = lock_state(p);
            while st.epoch == seen {
                st = p.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            seen = st.epoch;
            (st.job, st.job_trace)
        };
        let panicked = match job {
            Some(j) => {
                let _adopt = job_trace.map(bgw_trace::adopt);
                let _span = bgw_trace::span!("par.worker");
                let timer = RegionTimer::start();
                // SAFETY: the dispatcher keeps the body alive until this
                // epoch quiesces (it waits for `active == 0` below).
                let panicked = catch_unwind(AssertUnwindSafe(|| (unsafe { &*j.0 })(slot))).is_err();
                let (_wall, excl) = timer.finish();
                bgw_perf::counters::record_pool_region_ns(excl);
                // Top of the worker: drop the residue a finished region
                // reports upward so the next epoch starts clean.
                CHILD_PAR_NS.with(|c| c.set(0));
                panicked
            }
            None => false,
        };
        let mut st = lock_state(p);
        if panicked {
            st.panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            p.done_cv.notify_all();
        }
    }
}

/// Spawns workers (under the state lock) until `target` exist. Workers get
/// the current epoch so a thread born between regions never mistakes an
/// old epoch for fresh work.
fn spawn_to(st: &mut PoolState, target: usize) {
    while st.spawned < target.min(MAX_POOL_WORKERS) {
        let slot = st.spawned + 1; // slot 0 is the dispatcher
        let epoch = st.epoch;
        let spawned = std::thread::Builder::new()
            .name(format!("bgw-par-{slot}"))
            .spawn(move || worker_loop(pool(), slot, epoch))
            .is_ok();
        if !spawned {
            break; // proceed with fewer helpers
        }
        st.spawned += 1;
    }
}

/// Runs `job` on the pool with `participants` total executors (the caller
/// is slot 0). Returns `false` — without running anything — when the
/// region must run inline instead (single participant, nested call, or
/// another thread is mid-dispatch).
pub(crate) fn pool_run(participants: usize, job: &(dyn Fn(usize) + Sync)) -> bool {
    if participants <= 1 || IN_PARALLEL.with(|c| c.get()) {
        return false;
    }
    let p = pool();
    // A poisoned dispatch mutex must not read as "busy" forever: that
    // would silently demote every future parallel call to the inline
    // path after one unwind in the dispatch window. Recover the guard;
    // actual contention (WouldBlock) still falls back inline.
    let _dispatch = match p.dispatch.try_lock() {
        Ok(g) => g,
        Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
        Err(std::sync::TryLockError::WouldBlock) => return false,
    };
    let _region_span = bgw_trace::span!("par.region");
    let trace_handle = bgw_trace::current_handle();
    let region = RegionTimer::start();
    let t0 = Instant::now();
    let ptr: *const (dyn Fn(usize) + Sync) = job;
    // SAFETY: lifetime erasure only; the quiesce loop below keeps `job`
    // borrowed until no worker can still be executing it.
    let job_ref = JobRef(unsafe {
        std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync + 'static)>(
            ptr,
        )
    });
    {
        let mut st = lock_state(p);
        spawn_to(&mut st, participants - 1);
        st.job = Some(job_ref);
        st.job_trace = Some(trace_handle);
        st.active = st.spawned;
        st.epoch += 1;
        p.work_cv.notify_all();
    }
    IN_PARALLEL.with(|c| c.set(true));
    // Slot 0 (the caller) executes its share in its own exclusive-timing
    // frame: nested inline regions inside the body charge themselves and
    // are subtracted here, so `pool_region_ns` never double-counts them.
    let (body_wall, caller_result) = {
        let _body_span = bgw_trace::span!("par.body");
        let body = RegionTimer::start();
        let caller_result = catch_unwind(AssertUnwindSafe(|| job(0)));
        let (wall, excl) = body.finish();
        bgw_perf::counters::record_pool_region_ns(excl);
        (wall, caller_result)
    };
    IN_PARALLEL.with(|c| c.set(false));
    let worker_panicked = {
        let _join_span = bgw_trace::span!("par.join");
        let mut st = lock_state(p);
        while st.active > 0 {
            st = p.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.job = None;
        st.job_trace = None;
        std::mem::replace(&mut st.panicked, false)
    };
    // Everything the dispatching thread spent beyond its own body share
    // is dispatch overhead: job publish, worker wakeup, and the quiesce
    // wait for stragglers. Body execution is charged to the region
    // counters above, never here. `region.finish()` also reports the
    // whole pooled region as one nested region to the enclosing level.
    let total = t0.elapsed().as_nanos() as u64;
    bgw_perf::counters::record_pool_dispatch(total.saturating_sub(body_wall));
    let _ = region.finish();
    drop(_dispatch);
    if let Err(e) = caller_result {
        resume_unwind(e);
    }
    if worker_panicked {
        panic!("bgw-par worker panicked during a parallel region");
    }
    true
}

// ---------------------------------------------------------------------------
// Data-parallel primitives.
// ---------------------------------------------------------------------------

/// Runs `body(i)` for every `i in 0..n`, distributing chunks of indices
/// over the worker pool with dynamic (atomic counter) scheduling.
///
/// `body` must be safe to call concurrently from several threads.
pub fn parallel_for<F>(n: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_chunked(n, auto_chunk(n, num_threads(), 16), |lo, hi| {
        for i in lo..hi {
            body(i);
        }
    });
}

/// Runs `body(lo, hi)` over disjoint chunks `[lo, hi)` covering `0..n`.
///
/// This is the primitive the GW kernels use directly: a chunk corresponds
/// to a tile of the `(G', n)` loop nest and the body runs its own inner
/// loops. Chunks are the balanced [`chunk_bounds`] split: sizes differ by
/// at most one index and never exceed `chunk`, so a remainder just above
/// a chunk boundary is spread over all chunks instead of stranded as a
/// sliver on one worker.
pub fn parallel_for_chunked<F>(n: usize, chunk: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    if n == 0 {
        return;
    }
    let chunk = chunk.max(1);
    let k = chunk_count(n, chunk);
    let participants = num_threads().min(k);
    if participants > 1 {
        let counter = AtomicUsize::new(0);
        let work = |slot: usize| {
            if slot >= participants {
                return; // pool is larger than this region wants
            }
            loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= k {
                    break;
                }
                let (lo, hi) = chunk_bounds(n, chunk, i);
                body(lo, hi);
            }
        };
        if pool_run(participants, &work) {
            return;
        }
    }
    let _span = bgw_trace::span!("par.inline");
    let timer = RegionTimer::start();
    for i in 0..k {
        let (lo, hi) = chunk_bounds(n, chunk, i);
        body(lo, hi);
    }
    let (_wall, excl) = timer.finish();
    bgw_perf::counters::record_pool_inline(excl);
}

/// Parallel reduction: each participant folds its chunks into a local
/// accumulator created by `identity`, then the accumulators are merged
/// with `merge`.
///
/// The merge order is deterministic (participant slot order), so results
/// are reproducible for associative-enough `merge` operations; chunk
/// *assignment* is dynamic, as in the paper's two-stage reductions.
pub fn parallel_reduce<T, Fid, Fbody, Fmerge>(
    n: usize,
    chunk: usize,
    identity: Fid,
    body: Fbody,
    merge: Fmerge,
) -> T
where
    T: Send,
    Fid: Fn() -> T + Sync,
    Fbody: Fn(&mut T, usize, usize) + Sync,
    Fmerge: Fn(T, T) -> T,
{
    if n == 0 {
        return identity();
    }
    let chunk = chunk.max(1);
    let k = chunk_count(n, chunk);
    let participants = num_threads().min(k);
    if participants > 1 {
        let slots: Vec<Mutex<Option<T>>> = (0..participants).map(|_| Mutex::new(None)).collect();
        let counter = AtomicUsize::new(0);
        let work = |slot: usize| {
            if slot >= participants {
                return;
            }
            let mut acc = identity();
            loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= k {
                    break;
                }
                let (lo, hi) = chunk_bounds(n, chunk, i);
                body(&mut acc, lo, hi);
            }
            *slots[slot].lock().unwrap_or_else(|e| e.into_inner()) = Some(acc);
        };
        if pool_run(participants, &work) {
            let mut acc: Option<T> = None;
            for m in slots {
                // A slot stays `None` only if the pool could not field a
                // worker for it; slot 0 (the caller) always ran.
                if let Some(v) = m.into_inner().unwrap_or_else(|e| e.into_inner()) {
                    acc = Some(match acc {
                        None => v,
                        Some(a) => merge(a, v),
                    });
                }
            }
            return acc.expect("caller slot always produces a value");
        }
    }
    let _span = bgw_trace::span!("par.inline");
    let timer = RegionTimer::start();
    let mut acc = identity();
    for i in 0..k {
        let (lo, hi) = chunk_bounds(n, chunk, i);
        body(&mut acc, lo, hi);
    }
    let (_wall, excl) = timer.finish();
    bgw_perf::counters::record_pool_inline(excl);
    acc
}

/// A `Send + Sync` raw-pointer wrapper for handing disjoint regions of a
/// buffer to pool workers.
///
/// # Safety contract
/// The wrapper itself is safe to create and copy; every dereference is
/// `unsafe` and the caller must guarantee that concurrent accesses through
/// copies of the pointer touch disjoint elements.
pub struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Wraps a raw pointer.
    pub fn new(p: *mut T) -> Self {
        Self(p)
    }

    /// The wrapped pointer.
    pub fn get(self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: see the type-level contract — disjointness is the caller's
// obligation at each unsafe dereference site.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Applies `body(i, &mut slot)` to each element of `out` in parallel,
/// where `i` is the element index. This is the safe "one writer per
/// element" pattern used to fill rows of distributed matrices.
pub fn parallel_fill<T, F>(out: &mut [T], body: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = out.len();
    if n == 0 {
        return;
    }
    let chunk = auto_chunk(n, num_threads(), 1);
    let ptr = SendPtr::new(out.as_mut_ptr());
    parallel_for_chunked(n, chunk, move |lo, hi| {
        for i in lo..hi {
            // SAFETY: chunks [lo, hi) are disjoint across participants and
            // `i` is visited exactly once, so each element has one writer.
            let slot = unsafe { &mut *ptr.get().add(i) };
            body(i, slot);
        }
    });
}

/// Applies `body(r, row)` to each `row_len`-sized row of `data` in
/// parallel. `data.len()` must be a multiple of `row_len`.
///
/// This is the row-scaling / row-fill primitive behind the CHI_SUM energy
/// factors and the GPP `P`-matrix prep step.
pub fn parallel_rows<T, F>(data: &mut [T], row_len: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(
        data.len() % row_len,
        0,
        "data is not a whole number of rows"
    );
    let nrows = data.len() / row_len;
    let chunk = auto_chunk(nrows, num_threads(), 1);
    let ptr = SendPtr::new(data.as_mut_ptr());
    parallel_for_chunked(nrows, chunk, move |lo, hi| {
        for r in lo..hi {
            // SAFETY: row ranges [lo, hi) are disjoint across participants,
            // so each row slice has exactly one writer.
            let row =
                unsafe { std::slice::from_raw_parts_mut(ptr.get().add(r * row_len), row_len) };
            body(r, row);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    // Tests mutate the global thread count; serialize them (shared with
    // the `dag::tests` module, which mutates the same global).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    pub(crate) fn test_guard() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn thread_count_override() {
        let _g = test_guard();
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn auto_chunk_bounds() {
        assert_eq!(auto_chunk(0, 8, 16), 1);
        // Small n: one balanced chunk, not an oversized min_chunk sliver.
        assert_eq!(auto_chunk(10, 8, 16), 10);
        assert!(auto_chunk(10_000, 4, 16) >= 16);
        assert_eq!(auto_chunk(5, 1, 1), 1);
    }

    /// Satellite: `auto_chunk` used to strand the remainder on one worker
    /// when `n` sat just above a multiple of `workers * min_chunk`. The
    /// balanced split must cover every index exactly once with chunk sizes
    /// differing by at most one.
    #[test]
    fn chunk_coverage_property_sweep() {
        for workers in [1usize, 2, 3, 4, 8, 16] {
            for min_chunk in [1usize, 4, 16, 64] {
                let base = workers * min_chunk;
                for n in [
                    1,
                    min_chunk,
                    base,
                    base + 1, // the historical stranding case
                    base * 4,
                    base * 4 + 1,
                    base * 4 + workers,
                    1000,
                    1003,
                ] {
                    let chunk = auto_chunk(n, workers, min_chunk);
                    assert!(chunk >= 1);
                    let k = chunk_count(n, chunk);
                    let mut covered = vec![0u32; n];
                    let mut sizes = Vec::with_capacity(k);
                    let mut prev_hi = 0;
                    for i in 0..k {
                        let (lo, hi) = chunk_bounds(n, chunk, i);
                        assert_eq!(lo, prev_hi, "gap/overlap at chunk {i}");
                        assert!(hi > lo, "empty chunk {i} (n={n} chunk={chunk})");
                        assert!(hi - lo <= chunk, "chunk {i} exceeds requested size");
                        prev_hi = hi;
                        sizes.push(hi - lo);
                        for c in &mut covered[lo..hi] {
                            *c += 1;
                        }
                    }
                    assert_eq!(prev_hi, n, "chunks must cover 0..n");
                    assert!(
                        covered.iter().all(|&c| c == 1),
                        "every index exactly once (n={n} workers={workers} min={min_chunk})"
                    );
                    let max = *sizes.iter().max().unwrap();
                    let min = *sizes.iter().min().unwrap();
                    assert!(
                        max - min <= 1,
                        "chunk spread {max}-{min} > 1 (n={n} workers={workers} min={min_chunk})"
                    );
                }
            }
        }
    }

    /// The executed path: `parallel_for_chunked` on the stranding shape
    /// must hand out balanced chunks, visiting each index exactly once.
    #[test]
    fn chunked_rebalances_stranded_remainder() {
        let _g = test_guard();
        set_num_threads(4);
        let (workers, min_chunk) = (4usize, 16usize);
        let n = workers * min_chunk + 1; // 65: old split -> four 16s + one 1
        let chunk = auto_chunk(n, workers, min_chunk);
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let max_sz = AtomicU64::new(0);
        let min_sz = AtomicU64::new(u64::MAX);
        parallel_for_chunked(n, chunk, |lo, hi| {
            max_sz.fetch_max((hi - lo) as u64, Ordering::Relaxed);
            min_sz.fetch_min((hi - lo) as u64, Ordering::Relaxed);
            for h in &hits[lo..hi] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert!(max_sz.load(Ordering::Relaxed) - min_sz.load(Ordering::Relaxed) <= 1);
        set_num_threads(0);
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let _g = test_guard();
        for &threads in &[1usize, 2, 5] {
            set_num_threads(threads);
            let n = 1000;
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            parallel_for(n, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}, threads {threads}");
            }
        }
        set_num_threads(0);
    }

    #[test]
    fn chunked_covers_range_with_disjoint_chunks() {
        let _g = test_guard();
        set_num_threads(4);
        let n = 103;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for_chunked(n, 10, |lo, hi| {
            assert!(lo < hi && hi <= n);
            for h in &hits[lo..hi] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        set_num_threads(0);
    }

    #[test]
    fn reduce_sums_match_serial() {
        let _g = test_guard();
        for &threads in &[1usize, 2, 7] {
            set_num_threads(threads);
            let n = 12_345usize;
            let total = parallel_reduce(
                n,
                64,
                || 0u64,
                |acc, lo, hi| {
                    for i in lo..hi {
                        *acc += i as u64;
                    }
                },
                |a, b| a + b,
            );
            assert_eq!(total, (n as u64 - 1) * n as u64 / 2, "threads {threads}");
        }
        set_num_threads(0);
    }

    #[test]
    fn reduce_empty_returns_identity() {
        let v = parallel_reduce(0, 8, || 42i32, |_, _, _| unreachable!(), |a, _| a);
        assert_eq!(v, 42);
    }

    #[test]
    fn parallel_fill_writes_each_slot() {
        let _g = test_guard();
        set_num_threads(4);
        let mut out = vec![0usize; 517];
        parallel_fill(&mut out, |i, slot| *slot = i * i);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
        set_num_threads(0);
    }

    #[test]
    fn parallel_fill_empty_is_noop() {
        let mut out: Vec<u8> = vec![];
        parallel_fill(&mut out, |_, _| panic!("must not run"));
    }

    #[test]
    fn parallel_rows_scales_disjoint_rows() {
        let _g = test_guard();
        set_num_threads(4);
        let nrows = 37;
        let row_len = 11;
        let mut data = vec![1.0f64; nrows * row_len];
        parallel_rows(&mut data, row_len, |r, row| {
            for x in row {
                *x *= (r + 1) as f64;
            }
        });
        for r in 0..nrows {
            for j in 0..row_len {
                assert_eq!(data[r * row_len + j], (r + 1) as f64, "row {r}");
            }
        }
        set_num_threads(0);
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let _g = test_guard();
        set_num_threads(2);
        let acc = AtomicU64::new(0);
        parallel_for(4, |_| {
            parallel_for(8, |_| {
                acc.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(acc.load(Ordering::Relaxed), 32);
        set_num_threads(0);
    }

    #[test]
    fn deeply_nested_calls_run_inline() {
        let _g = test_guard();
        set_num_threads(3);
        let acc = AtomicU64::new(0);
        parallel_for(2, |_| {
            parallel_for(2, |_| {
                parallel_reduce(
                    4,
                    1,
                    || 0u64,
                    |a, lo, hi| *a += (hi - lo) as u64,
                    |a, b| a + b,
                );
                acc.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(acc.load(Ordering::Relaxed), 4);
        set_num_threads(0);
    }

    #[test]
    fn concurrent_callers_from_two_os_threads() {
        let _g = test_guard();
        set_num_threads(4);
        // Two OS threads issue parallel calls at once: one wins the pool,
        // the other must fall back inline; both must compute correctly.
        let results = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|t| {
                    s.spawn(move || {
                        let mut totals = Vec::new();
                        for round in 0..20 {
                            let n = 500 + 37 * t + round;
                            let total = parallel_reduce(
                                n,
                                16,
                                || 0u64,
                                |acc, lo, hi| {
                                    for i in lo..hi {
                                        *acc += i as u64;
                                    }
                                },
                                |a, b| a + b,
                            );
                            totals.push((n, total));
                        }
                        totals
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        for totals in results {
            for (n, total) in totals {
                assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
            }
        }
        set_num_threads(0);
    }

    #[test]
    fn thread_count_changes_between_calls() {
        let _g = test_guard();
        // Shrinking and growing the pool between calls must stay correct:
        // the pool keeps its largest size but gates participation.
        for &threads in &[1usize, 6, 2, 5, 1, 3] {
            set_num_threads(threads);
            let n = 777;
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            parallel_for(n, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads {threads}"
            );
        }
        set_num_threads(0);
    }

    #[test]
    fn pool_dispatch_counter_advances() {
        let _g = test_guard();
        set_num_threads(4);
        let before = bgw_perf::counters::snapshot();
        parallel_for(10_000, |_| {});
        let after = bgw_perf::counters::snapshot();
        let d = before.delta(&after);
        assert!(
            d.pool_dispatches >= 1 || d.pool_inline_runs >= 1,
            "a parallel call must be accounted somewhere"
        );
        set_num_threads(0);
    }

    #[test]
    fn nested_regions_attribute_exclusive_time() {
        // Regression for the dispatch-attribution bug: the old code
        // charged the *entire* region (publish + every body + join) to
        // `record_pool_dispatch`, and nested inline regions were counted
        // both by themselves and inside their parent. The sleeps give
        // each participant a body of >= 25 ms (15 ms own work + 10 ms
        // nested inline region), so dispatch overhead — now total minus
        // the dispatcher's own body — must sit well below the wall
        // clock, while region/inline time carries the body.
        let _g = test_guard();
        set_num_threads(2);
        parallel_for(64, |_| {}); // warm the pool (spawn + first wakeup)
        let before = bgw_perf::counters::snapshot();
        let t0 = Instant::now();
        let mut rows = vec![0u8; 2];
        parallel_rows(&mut rows, 1, |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(15));
            let mut inner = vec![0u8; 2];
            parallel_rows(&mut inner, 1, |_, _| {
                std::thread::sleep(std::time::Duration::from_millis(5));
            });
        });
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let d = before.delta(&bgw_perf::counters::snapshot());
        assert_eq!(d.pool_dispatches, 1, "outer region must use the pool");
        assert_eq!(d.pool_inline_runs, 2, "one nested inline per participant");
        // Dispatch overhead excludes the dispatcher's 25 ms body by
        // construction (overhead = total - body), so this bound holds
        // deterministically; the old accounting set dispatch ~= wall.
        assert!(
            d.pool_dispatch_ns <= wall_ns.saturating_sub(24_000_000),
            "dispatch {} ns must exclude body time (wall {} ns)",
            d.pool_dispatch_ns,
            wall_ns
        );
        // Each participant's exclusive body is >= 15 ms of own sleep.
        assert!(
            d.pool_region_ns >= 28_000_000,
            "region time {} ns must carry both participants' own work",
            d.pool_region_ns
        );
        // Nested inline regions charge themselves (>= 10 ms each)...
        assert!(
            d.pool_inline_ns >= 18_000_000,
            "inline time {} ns must carry the nested regions",
            d.pool_inline_ns
        );
        // ...and exactly once: all three counters together can't exceed
        // what two participants plus a dispatcher could physically spend.
        assert!(
            d.pool_dispatch_ns + d.pool_region_ns + d.pool_inline_ns <= 3 * wall_ns,
            "attribution must not double-count (d={} r={} i={} wall={})",
            d.pool_dispatch_ns,
            d.pool_region_ns,
            d.pool_inline_ns,
            wall_ns
        );
        set_num_threads(0);
    }

    #[cfg(feature = "spans")]
    #[test]
    fn span_tree_sibling_exclusive_times_bounded_by_parent() {
        // Single-threaded, every region runs inline on one stack, so the
        // span-tree invariant is exact: children's inclusive time fits
        // inside the parent, and the parent's exclusive time is its
        // inclusive minus its children.
        let _g = test_guard();
        let _c = bgw_perf::counters::exclusive_test_guard();
        set_num_threads(1);
        bgw_trace::reset();
        bgw_trace::set_enabled(true);
        {
            let _t = bgw_trace::span!("t.par.tree");
            let mut rows = vec![0u8; 4];
            parallel_rows(&mut rows, 1, |_, _| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                let mut inner = vec![0u8; 2];
                parallel_rows(&mut inner, 1, |_, _| {});
            });
        }
        bgw_trace::set_enabled(false);
        let rep = bgw_trace::report();
        fn check(node: &bgw_trace::SpanNode) {
            let child_sum: u64 = node.children.iter().map(|c| c.incl_ns).sum();
            assert!(
                child_sum <= node.incl_ns,
                "{}: children {} ns exceed parent {} ns",
                node.name,
                child_sum,
                node.incl_ns
            );
            assert!(
                node.excl_ns + child_sum <= node.incl_ns + 100_000,
                "{}: exclusive {} + children {} must not exceed inclusive {}",
                node.name,
                node.excl_ns,
                child_sum,
                node.incl_ns
            );
            for c in &node.children {
                check(c);
            }
        }
        let root = rep.find("t.par.tree").expect("traced root span");
        assert!(
            root.children.iter().any(|c| c.name == "par.inline"),
            "inline region must appear under the caller's span"
        );
        let outer = root
            .children
            .iter()
            .find(|c| c.name == "par.inline")
            .unwrap();
        assert!(
            outer.children.iter().any(|c| c.name == "par.inline"),
            "nested inline region must nest, not flatten"
        );
        check(root);
        bgw_trace::reset();
        set_num_threads(0);
    }

    #[cfg(feature = "spans")]
    #[test]
    fn pooled_worker_spans_adopt_dispatcher_parent() {
        let _g = test_guard();
        let _c = bgw_perf::counters::exclusive_test_guard();
        set_num_threads(4);
        parallel_for(64, |_| {}); // warm the pool before tracing
        bgw_trace::reset();
        bgw_trace::set_enabled(true);
        {
            let _t = bgw_trace::span!("t.par.pooled");
            parallel_for(4096, |_| {
                std::hint::black_box(());
            });
        }
        bgw_trace::set_enabled(false);
        let rep = bgw_trace::report();
        let region = rep
            .find("t.par.pooled/par.region")
            .expect("pooled region span under caller");
        assert!(
            region.children.iter().any(|c| c.name == "par.body"),
            "dispatcher body span missing"
        );
        assert!(
            region.children.iter().any(|c| c.name == "par.join"),
            "join span missing"
        );
        assert!(
            region.children.iter().any(|c| c.name == "par.worker"),
            "worker spans must adopt the dispatcher's span as parent"
        );
        bgw_trace::reset();
        set_num_threads(0);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let _g = test_guard();
        set_num_threads(4);
        let r = catch_unwind(AssertUnwindSafe(|| {
            parallel_for(64, |i| {
                if i == 13 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err(), "panic in a region body must propagate");
        // The pool must still be usable afterwards.
        let hits = AtomicU64::new(0);
        parallel_for(100, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        set_num_threads(0);
    }

    #[test]
    fn pool_still_dispatches_after_region_panic() {
        // Reuse after a panic must mean *pooled* reuse: a wedge that
        // silently demoted every later call to the inline path would
        // still compute correct results, so check the dispatch counter,
        // not just the sums.
        let _g = test_guard();
        set_num_threads(4);
        for round in 0..3 {
            let r = catch_unwind(AssertUnwindSafe(|| {
                parallel_for_chunked(256, 8, |lo, _| {
                    if lo == 64 {
                        panic!("boom in round {round}");
                    }
                });
            }));
            assert!(r.is_err(), "round {round}: panic must propagate");
            let before = bgw_perf::counters::snapshot();
            let hits = AtomicU64::new(0);
            parallel_for_chunked(256, 8, |lo, hi| {
                hits.fetch_add((hi - lo) as u64, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 256, "round {round}");
            let d = before.delta(&bgw_perf::counters::snapshot());
            assert!(
                d.pool_dispatches >= 1,
                "round {round}: the next region must run on the pool, \
                 not fall back inline (dispatches {}, inline {})",
                d.pool_dispatches,
                d.pool_inline_runs
            );
        }
        set_num_threads(0);
    }

    #[test]
    fn caller_slot_panic_leaves_pool_usable() {
        // Panic specifically in the dispatcher's own share (slot 0): the
        // dispatch guard unwinds through pool_run's epilogue and must not
        // poison the next dispatch.
        let _g = test_guard();
        set_num_threads(3);
        let r = catch_unwind(AssertUnwindSafe(|| {
            parallel_reduce(
                64,
                4,
                || 0u64,
                |_, lo, _| {
                    if lo < 64 {
                        panic!("dispatcher-side boom");
                    }
                },
                |a, b| a + b,
            );
        }));
        assert!(r.is_err());
        let total = parallel_reduce(
            100,
            4,
            || 0u64,
            |acc, lo, hi| *acc += (lo..hi).map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(total, 4950);
        set_num_threads(0);
    }
}
