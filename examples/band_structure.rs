//! Band structure of the silicon model along L-Gamma-X, printed as an
//! ASCII plot — a validation that the Cohen-Bergstresser-interpolated
//! pseudopotential reproduces silicon's band topology (indirect gap,
//! valence maximum at Gamma) before it is fed to GW.
//!
//! Run with: `cargo run --release --example band_structure`

use berkeleygw_rs::num::RYDBERG_EV;
use berkeleygw_rs::pwdft::kpoints::{band_structure, fcc_path_vertices, indirect_gap, kpath};
use berkeleygw_rs::pwdft::{Crystal, GSphere, Species};

fn main() {
    let a0 = berkeleygw_rs::pwdft::pseudo::SI_A0;
    let crystal = Crystal::diamond_primitive(Species::Si, a0);
    let sph = GSphere::new(&crystal.lattice, 6.5);
    let path = kpath(&fcc_path_vertices(a0), 12);
    let n_bands = 8;
    let bands = band_structure(&crystal, &sph, &path, n_bands);
    let nv = crystal.n_valence_bands();

    // reference zero: valence-band maximum
    let vbm = bands
        .iter()
        .map(|b| b[nv - 1])
        .fold(f64::NEG_INFINITY, f64::max);

    // ASCII plot: energy rows (eV), k columns.
    let (e_lo, e_hi) = (-13.0f64, 8.0f64);
    let rows = 36;
    let mut grid_chars = vec![vec![' '; bands.len()]; rows];
    for (ik, b) in bands.iter().enumerate() {
        for (n, &e) in b.iter().enumerate() {
            let ev = (e - vbm) * RYDBERG_EV;
            if ev < e_lo || ev > e_hi {
                continue;
            }
            let r = ((e_hi - ev) / (e_hi - e_lo) * (rows - 1) as f64).round() as usize;
            grid_chars[r][ik] = if n < nv { 'o' } else { '*' };
        }
    }
    println!("Si model bands along L - Gamma - X  (o = valence, * = conduction)");
    println!("energy zero = VBM; vertical span {e_lo}..{e_hi} eV\n");
    for (r, row) in grid_chars.iter().enumerate() {
        let ev = e_hi - (e_hi - e_lo) * r as f64 / (rows - 1) as f64;
        let line: String = row.iter().collect();
        println!("{ev:>6.1} | {line}");
    }
    let mut marker = vec![' '; bands.len()];
    for (idx, label) in &path.labels {
        marker[*idx] = label.chars().next().unwrap();
    }
    println!("        {}", marker.iter().collect::<String>());

    let gap = indirect_gap(&bands, nv) * RYDBERG_EV;
    let gamma_gap = {
        let g = path
            .kpoints
            .iter()
            .position(|k| k.iter().all(|&x| x.abs() < 1e-12))
            .unwrap();
        (bands[g][nv] - bands[g][nv - 1]) * RYDBERG_EV
    };
    println!(
        "\nindirect gap: {gap:.2} eV   direct gap at Gamma: {gamma_gap:.2} eV\n\
         (experimental silicon: 1.17 eV indirect, 3.4 eV direct —\n\
          the model reproduces the topology; GW then corrects the sizes)"
    );
    assert!(gap > 0.0 && gamma_gap > gap);
}
