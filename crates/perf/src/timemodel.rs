//! Time and scaling model for the Sigma kernels on the modeled machines.
//!
//! This is the documented substitution for not owning Frontier/Aurora
//! (DESIGN.md Sec. 2): the *decomposition* is the paper's — self-energy
//! pools over `N_Sigma`, the `G'` sum split across the ranks of a pool
//! (Sec. 5.5), `(n, E)` ZGEMM pairs across ranks for the off-diag kernel
//! (Sec. 5.6) — and the model charges
//!
//! `T = max_rank_flops / (efficiency * per_gpu_peak)
//!      + allreduce(bytes) + latency * log2(P) [+ io_bytes / io_bw]`.
//!
//! Load imbalance comes from the integer `ceil` splits of the real
//! decomposition, communication volume from the actual reduction sizes;
//! only the per-unit rates (sustained fraction of peak, network, I/O) are
//! calibrated constants, anchored to the paper's own measured full-machine
//! numbers in [`Efficiencies::paper_anchored`].

use crate::flopmodel::{gpp_diag_flops, gpp_offdiag_flops};
use crate::machine::Machine;

/// A GPP Sigma workload (sizes in paper Table 1 notation).
#[derive(Clone, Copy, Debug)]
pub struct SigmaWorkload {
    /// `N_Sigma`.
    pub n_sigma: usize,
    /// `N_b`.
    pub n_b: usize,
    /// `N_G`.
    pub n_g: usize,
    /// `N_E`.
    pub n_e: usize,
    /// Diag-kernel FLOP prefactor `alpha` (Eq. 7).
    pub alpha: f64,
}

impl SigmaWorkload {
    /// Total diag-kernel FLOPs (Eq. 7).
    pub fn diag_flops(&self) -> f64 {
        gpp_diag_flops(self.alpha, self.n_sigma, self.n_b, self.n_g, self.n_e)
    }

    /// Total off-diag ZGEMM FLOPs (Eq. 8).
    pub fn offdiag_flops(&self) -> f64 {
        gpp_offdiag_flops(self.n_b, self.n_e, self.n_sigma, self.n_g)
    }

    /// Bytes of wavefunction + dielectric input the Sigma module reads
    /// (the dominant I/O for the "incl. I/O" rows): `N_b x N_G^psi`
    /// complex wavefunctions plus the `N_G^2` dielectric matrix. `n_g_psi`
    /// defaults to `3 * n_g` when unknown (the Table 2 Si-series ratio
    /// N_G^psi / N_G ~ 2.8).
    pub fn io_bytes(&self, n_g_psi: Option<usize>) -> f64 {
        let ngp = n_g_psi.unwrap_or(3 * self.n_g) as f64;
        16.0 * (self.n_b as f64 * ngp + (self.n_g as f64).powi(2))
    }
}

/// Which kernel a prediction is for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// The diag. kernel (matrix-vector-like, on-the-fly `P`).
    Diag,
    /// The off-diag. kernel (ZGEMM-recast).
    Offdiag,
}

/// Sustained fractions of *attainable* per-GPU peak for each machine and
/// kernel class.
#[derive(Clone, Copy, Debug)]
pub struct Efficiencies {
    /// diag kernel on (Frontier, Aurora, Perlmutter).
    pub diag: (f64, f64, f64),
    /// off-diag kernel on (Frontier, Aurora, Perlmutter).
    pub offdiag: (f64, f64, f64),
}

impl Efficiencies {
    /// Single-GPU sustained fractions calibrated so that the modeled
    /// full-machine throughput (after the model's communication and
    /// imbalance losses) reproduces the paper's Table 5 percentages:
    /// diag 31.04% (F) / 39.39% (A), off-diag 59.45% (F) / 48.79% (A);
    /// Perlmutter diag anchored to the ~34% single-GPU fraction of ref 8.
    pub fn paper_anchored() -> Self {
        Efficiencies {
            diag: (0.313, 0.398, 0.345),
            offdiag: (0.598, 0.545, 0.600),
        }
    }

    /// Fraction for a kernel on a machine.
    pub fn get(&self, kernel: Kernel, machine: &Machine) -> f64 {
        let t = match kernel {
            Kernel::Diag => self.diag,
            Kernel::Offdiag => self.offdiag,
        };
        match machine.name {
            "Frontier" => t.0,
            "Aurora" => t.1,
            _ => t.2,
        }
    }
}

/// Predicted time breakdown of one kernel invocation.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimeBreakdown {
    /// Compute seconds on the critical-path rank.
    pub compute_s: f64,
    /// Communication seconds (reductions).
    pub comm_s: f64,
    /// I/O seconds (0 when excluded).
    pub io_s: f64,
}

impl TimeBreakdown {
    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.compute_s + self.comm_s + self.io_s
    }
}

/// A point of a scaling/throughput series.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Node count.
    pub nodes: usize,
    /// Predicted kernel seconds.
    pub seconds: f64,
    /// Achieved PFLOP/s.
    pub pflops: f64,
    /// Percent of the machine's peak (attainable for Aurora, theoretical
    /// otherwise — the paper's convention).
    pub pct_peak: f64,
}

fn div_ceil_f(a: usize, b: usize) -> f64 {
    a.div_ceil(b.max(1)) as f64
}

/// Allreduce cost model: ring allreduce of `bytes` over `p` ranks.
fn allreduce_s(machine: &Machine, p: usize, bytes: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let bw = machine.net_gb_per_gpu * 1e9;
    2.0 * bytes * (p as f64 - 1.0) / p as f64 / bw
        + (p as f64).log2().ceil() * machine.latency_us * 1e-6
}

/// Predicts the GPP kernel time on `nodes` nodes of `machine`.
///
/// `pools`: number of self-energy pools (`None` picks `min(N_Sigma,
/// gpus)`). `include_io`: adds the input-read time for "incl. I/O" rows.
pub fn sigma_time(
    machine: &Machine,
    nodes: usize,
    w: &SigmaWorkload,
    kernel: Kernel,
    eff: &Efficiencies,
    pools: Option<usize>,
    include_io: bool,
) -> TimeBreakdown {
    let gpus = machine.gpus(nodes).max(1);
    let sustained = eff.get(kernel, machine) * machine.attainable_tflops_per_gpu * 1e12;
    let mut t = TimeBreakdown::default();
    match kernel {
        Kernel::Diag => {
            // pools over N_Sigma; ranks of a pool split the G' sum.
            let pools = pools.unwrap_or_else(|| w.n_sigma.min(gpus)).clamp(1, gpus);
            let ranks_per_pool = (gpus / pools).max(1);
            let per_rank_flops = w.alpha
                * div_ceil_f(w.n_sigma, pools)
                * w.n_b as f64
                * w.n_g as f64
                * div_ceil_f(w.n_g, ranks_per_pool)
                * w.n_e as f64;
            t.compute_s = per_rank_flops / sustained;
            // Two-stage reduction of this pool's Sigma values, once per
            // band loop chunk; the dominant reduction is the final one of
            // N_Sigma/pools * N_E complex numbers over the pool.
            let bytes = 16.0 * div_ceil_f(w.n_sigma, pools) * w.n_e as f64;
            t.comm_s = allreduce_s(machine, ranks_per_pool, bytes);
        }
        Kernel::Offdiag => {
            // (n, E) ZGEMM pairs distributed over all GPUs.
            let pairs = w.n_b * w.n_e;
            let per_pair = w.offdiag_flops() / pairs as f64;
            let per_rank_flops = div_ceil_f(pairs, gpus) * per_pair;
            t.compute_s = per_rank_flops / sustained;
            // allreduce of the accumulated N_Sigma^2 x N_E matrices.
            let bytes = 16.0 * (w.n_sigma as f64).powi(2) * w.n_e as f64;
            t.comm_s = allreduce_s(machine, gpus, bytes);
        }
    }
    if include_io {
        t.io_s = w.io_bytes(None) / (machine.io_gb_per_s * 1e9);
    }
    t
}

/// Builds a strong-scaling series over `node_counts`.
pub fn strong_scaling(
    machine: &Machine,
    node_counts: &[usize],
    w: &SigmaWorkload,
    kernel: Kernel,
    eff: &Efficiencies,
    include_io: bool,
) -> Vec<ScalingPoint> {
    let flops = match kernel {
        Kernel::Diag => w.diag_flops(),
        Kernel::Offdiag => w.offdiag_flops(),
    };
    node_counts
        .iter()
        .map(|&nodes| {
            let t = sigma_time(machine, nodes, w, kernel, eff, None, include_io);
            let secs = t.total();
            let pflops = flops / secs / 1e15;
            let peak = machine.attainable_flops(nodes);
            ScalingPoint {
                nodes,
                seconds: secs,
                pflops,
                pct_peak: 100.0 * flops / secs / peak,
            }
        })
        .collect()
}

/// Builds a weak-scaling series: the workload is scaled with the node
/// count by `scale(base, nodes) -> workload`.
pub fn weak_scaling<F: Fn(usize) -> SigmaWorkload>(
    machine: &Machine,
    node_counts: &[usize],
    scale: F,
    kernel: Kernel,
    eff: &Efficiencies,
) -> Vec<ScalingPoint> {
    node_counts
        .iter()
        .map(|&nodes| {
            let w = scale(nodes);
            let flops = match kernel {
                Kernel::Diag => w.diag_flops(),
                Kernel::Offdiag => w.offdiag_flops(),
            };
            let t = sigma_time(machine, nodes, &w, kernel, eff, None, false);
            let secs = t.total();
            ScalingPoint {
                nodes,
                seconds: secs,
                pflops: flops / secs / 1e15,
                pct_peak: 100.0 * flops / secs / machine.attainable_flops(nodes),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Si998-a configuration (Fig. 7 caption):
    /// N_E = 200, N_b = 28,224, N_G = 51,627, N_Sigma = 512.
    fn si998a() -> SigmaWorkload {
        SigmaWorkload {
            n_sigma: 512,
            n_b: 28_224,
            n_g: 51_627,
            n_e: 200,
            alpha: crate::flopmodel::ALPHA_FRONTIER,
        }
    }

    #[test]
    fn offdiag_full_frontier_reproduces_table5_throughput() {
        // Table 5: Si998-a off-diag, 9,408 nodes, 116.4 s, 1069.36 PF/s,
        // 59.45% of peak.
        let m = Machine::frontier();
        let eff = Efficiencies::paper_anchored();
        let w = si998a();
        let t = sigma_time(&m, 9_408, &w, Kernel::Offdiag, &eff, None, false);
        let pf = w.offdiag_flops() / t.total() / 1e15;
        let pct = 100.0 * pf * 1e15 / m.peak_flops(9_408);
        assert!(
            (pct - 59.45).abs() < 6.0,
            "modeled {pct}% vs paper 59.45% ({} s, {pf} PF/s)",
            t.total()
        );
        // and the runtime lands in the right ballpark (paper: 116.4 s)
        assert!(t.total() > 60.0 && t.total() < 240.0, "{} s", t.total());
    }

    #[test]
    fn diag_full_frontier_lands_near_31_pct() {
        // BN867: N_Sigma such that the diag kernel hits ~558 PF (31%).
        // Use Si2742-like sizes: N_Sigma = 128, N_b = 80,695, N_G =
        // 141,505, N_E = 3 (Table 2 + typical sampling).
        let m = Machine::frontier();
        let eff = Efficiencies::paper_anchored();
        let w = SigmaWorkload {
            n_sigma: 128,
            n_b: 80_695,
            n_g: 141_505,
            n_e: 3,
            alpha: crate::flopmodel::ALPHA_FRONTIER,
        };
        let t = sigma_time(&m, 9_408, &w, Kernel::Diag, &eff, None, false);
        let pct = 100.0 * w.diag_flops() / t.total() / m.peak_flops(9_408);
        assert!((pct - 31.0).abs() < 4.0, "modeled {pct}%");
    }

    #[test]
    fn strong_scaling_is_monotone_with_saturation() {
        let m = Machine::frontier();
        let eff = Efficiencies::paper_anchored();
        let w = si998a();
        let nodes = [128usize, 256, 512, 1024, 2048, 4096, 9408];
        let series = strong_scaling(&m, &nodes, &w, Kernel::Offdiag, &eff, false);
        for win in series.windows(2) {
            assert!(win[1].seconds < win[0].seconds, "time must drop");
            let speedup = win[0].seconds / win[1].seconds;
            let ideal = win[1].nodes as f64 / win[0].nodes as f64;
            // integer ceil splits allow marginally superlinear steps
            assert!(speedup <= ideal * 1.02, "superlinear? {speedup} vs {ideal}");
        }
        // efficiency declines with scale
        assert!(series.last().unwrap().pct_peak <= series[0].pct_peak + 1e-9);
    }

    #[test]
    fn weak_scaling_time_is_flat() {
        let m = Machine::aurora();
        let eff = Efficiencies::paper_anchored();
        let nodes = [64usize, 128, 256, 512, 1024];
        let series = weak_scaling(
            &m,
            &nodes,
            |n| SigmaWorkload {
                // scale N_Sigma with nodes: per Eq. 7, flops ~ nodes
                n_sigma: 8 * n,
                n_b: 15_000,
                n_g: 26_529,
                n_e: 3,
                alpha: crate::flopmodel::ALPHA_AURORA,
            },
            Kernel::Diag,
            &eff,
        );
        let t0 = series[0].seconds;
        for p in &series {
            assert!(
                (p.seconds - t0).abs() / t0 < 0.15,
                "weak scaling not flat: {} vs {t0}",
                p.seconds
            );
        }
    }

    #[test]
    fn io_adds_cost_like_table5() {
        // Si998-b: kernel 303 s, incl. I/O 605 s -> I/O roughly doubles.
        let m = Machine::frontier();
        let eff = Efficiencies::paper_anchored();
        let w = SigmaWorkload {
            n_e: 512,
            ..si998a()
        };
        let no_io = sigma_time(&m, 9_408, &w, Kernel::Offdiag, &eff, None, false);
        let with_io = sigma_time(&m, 9_408, &w, Kernel::Offdiag, &eff, None, true);
        assert!(with_io.io_s > 0.0);
        let ratio = with_io.total() / no_io.total();
        // paper: 605 s / 391 s ~ 1.55 for the whole app; the kernel-only
        // ratio here just needs to show a substantial I/O cost
        assert!(ratio > 1.3, "I/O must cost something: {ratio}");
        // absolute I/O time lands near the paper's ~214 s delta
        assert!(
            with_io.io_s > 100.0 && with_io.io_s < 400.0,
            "io_s {}",
            with_io.io_s
        );
    }

    #[test]
    fn single_node_has_no_comm() {
        let m = Machine::perlmutter();
        let eff = Efficiencies::paper_anchored();
        let w = SigmaWorkload {
            n_sigma: 4,
            n_b: 100,
            n_g: 200,
            n_e: 3,
            alpha: 20.0,
        };
        // pools = gpus -> ranks_per_pool = 1 -> zero comm
        let t = sigma_time(&m, 1, &w, Kernel::Diag, &eff, Some(4), false);
        assert_eq!(t.comm_s, 0.0);
        assert!(t.compute_s > 0.0);
    }
}
