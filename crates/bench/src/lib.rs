//! `bgw-bench`: the benchmark harness.
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md
//! Sec. 5 for the index), plus criterion micro-benchmarks of the kernels.
//! This library holds the shared plumbing: scaled-system construction, GW
//! setup assembly, local throughput calibration, and timing helpers.

#![warn(missing_docs)]

use bgw_core::chi::{ChiConfig, ChiEngine};
use bgw_core::coulomb::Coulomb;
use bgw_core::epsilon::EpsilonInverse;
use bgw_core::gpp::GppModel;
use bgw_core::mtxel::Mtxel;
use bgw_core::sigma::SigmaContext;
use bgw_linalg::CMatrix;
use bgw_pwdft::{charge_density_g, solve_bands, GSphere, ModelSystem, Wavefunctions};
use std::time::Instant;

/// A fully assembled GW setup for benchmarking kernels on a model system.
pub struct BenchSetup {
    /// The model system used.
    pub system: ModelSystem,
    /// Wavefunction sphere.
    pub wfn_sph: GSphere,
    /// Epsilon sphere.
    pub eps_sph: GSphere,
    /// Mean-field bands.
    pub wf: Wavefunctions,
    /// Static polarizability.
    pub chi0: CMatrix,
    /// Coulomb interaction (miniBZ q0).
    pub coulomb: Coulomb,
    /// `sqrt(v)` on the epsilon sphere.
    pub vsqrt: Vec<f64>,
    /// Static inverse dielectric matrix.
    pub eps_inv: EpsilonInverse,
    /// Sigma context with `n_sigma` bands around the gap.
    pub ctx: SigmaContext,
}

/// Builds the full pipeline up to a [`SigmaContext`] with `n_sigma` bands
/// centered on the gap.
pub fn build_setup(system: ModelSystem, n_sigma: usize) -> BenchSetup {
    let wfn_sph = system.wfn_sphere();
    let eps_sph = system.eps_sphere();
    let n_bands = system.n_bands.min(wfn_sph.len());
    let wf = solve_bands(&system.crystal, &wfn_sph, n_bands);
    let coulomb = Coulomb::bulk_for_cell(system.crystal.lattice.volume());
    let mtxel = Mtxel::new(&wfn_sph, &eps_sph);
    let cfg = ChiConfig {
        q0: coulomb.q0,
        ..ChiConfig::default()
    };
    let engine = ChiEngine::new(&wf, &mtxel, cfg);
    let chi0 = engine.chi_static();
    let eps_inv = EpsilonInverse::build(std::slice::from_ref(&chi0), &[0.0], &coulomb, &eps_sph)
        .expect("dielectric matrix must be invertible");
    let rho = charge_density_g(&wf, &wfn_sph);
    let gpp = GppModel::new(
        &eps_inv,
        &eps_sph,
        &wfn_sph,
        &rho,
        system.crystal.lattice.volume(),
    );
    let vsqrt = coulomb.sqrt_on_sphere(&eps_sph);
    let nv = wf.n_valence;
    let half = (n_sigma / 2).max(1);
    let lo = nv.saturating_sub(half);
    let hi = (lo + n_sigma).min(wf.n_bands());
    let sigma_bands: Vec<usize> = (lo..hi).collect();
    let ctx = SigmaContext::build(&wf, &mtxel, gpp, &vsqrt, &sigma_bands, coulomb.q0);
    BenchSetup {
        system,
        wfn_sph,
        eps_sph,
        wf,
        chi0,
        coulomb,
        vsqrt,
        eps_inv,
        ctx,
    }
}

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Locally measured sustained throughput (FLOP/s) of the optimized GPP
/// diag kernel on this host, used to put the "local node" on the same
/// axis as the modeled machines.
pub fn calibrate_local_diag(setup: &BenchSetup) -> f64 {
    let grids: Vec<Vec<f64>> = setup.ctx.sigma_energies.iter().map(|&e| vec![e]).collect();
    let r = bgw_core::sigma::diag::gpp_sigma_diag(
        &setup.ctx,
        &grids,
        bgw_core::sigma::diag::KernelVariant::Optimized,
    );
    r.flops as f64 / r.seconds.max(1e-9)
}

/// Locally measured ZGEMM throughput (FLOP/s) at a given square size.
pub fn calibrate_local_zgemm(n: usize) -> f64 {
    let a = CMatrix::random(n, n, 1);
    let b = CMatrix::random(n, n, 2);
    // warm-up
    let _ = bgw_linalg::matmul(
        &a,
        bgw_linalg::Op::None,
        &b,
        bgw_linalg::Op::None,
        bgw_linalg::GemmBackend::Parallel,
    );
    let (_, secs) = timed(|| {
        bgw_linalg::matmul(
            &a,
            bgw_linalg::Op::None,
            &b,
            bgw_linalg::Op::None,
            bgw_linalg::GemmBackend::Parallel,
        )
    });
    bgw_linalg::zgemm_flops(n, n, n) as f64 / secs.max(1e-9)
}

/// The scaled benchmark roster: `(paper name, scaled system, N_Sigma)`.
/// Cutoffs are sized for minutes-not-hours runtimes on one node.
pub fn bench_roster() -> Vec<(&'static str, ModelSystem, usize)> {
    let mut si510 = bgw_pwdft::si_divacancy(2, 2.6);
    // cap N_b so full-workflow benches stay in the seconds range
    si510.n_bands = si510.n_valence() + 76;
    vec![
        ("Si214", bgw_pwdft::si_divacancy(1, 4.2), 8),
        ("Si510", si510, 8),
        ("LiH998", bgw_pwdft::lih_defect(1, 4.0), 6),
        ("BN867", bgw_pwdft::bn_defect_sheet(2, 12.0, 5.0), 6),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_builds_on_smallest_system() {
        let sys = bgw_pwdft::si_bulk(1, 2.2);
        let mut sys = sys;
        sys.n_bands = 24;
        let s = build_setup(sys, 4);
        assert_eq!(s.ctx.n_sigma(), 4);
        assert!(s.ctx.n_g() > 4);
        assert!(s.eps_inv.macroscopic_constant() > 1.0);
    }

    #[test]
    fn calibration_returns_positive_rates() {
        let mut sys = bgw_pwdft::si_bulk(1, 2.0);
        sys.n_bands = 20;
        let s = build_setup(sys, 2);
        assert!(calibrate_local_diag(&s) > 0.0);
        assert!(calibrate_local_zgemm(32) > 0.0);
    }

    #[test]
    fn roster_has_table2_shape() {
        for (name, sys, n_sigma) in bench_roster() {
            assert!(!name.is_empty());
            assert!(sys.n_bands > sys.n_valence(), "{name}");
            assert!(n_sigma >= 2);
        }
    }
}
