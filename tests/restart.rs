//! Checkpoint/restart integration tests: a GW run killed at any
//! checkpoint boundary and resumed must reproduce the uninterrupted run's
//! quasiparticle energies to 1e-10, and corrupt checkpoint residue must
//! be skipped, not resumed from.

use berkeleygw_rs::core::chi::{ChiConfig, ChiEngine, ChiTimings};
use berkeleygw_rs::core::mtxel::Mtxel;
use berkeleygw_rs::core::restart::{
    run_evgw_checkpointed, run_gpp_gw_checkpointed, CheckpointPolicy, RestartError,
};
use berkeleygw_rs::core::sigma::fullfreq::ff_sigma_diag_subspace;
use berkeleygw_rs::core::subspace::{symmetrize, Subspace};
use berkeleygw_rs::core::testkit;
use berkeleygw_rs::core::workflow::{run_evgw, run_gpp_gw, GwConfig, GwResults};
use berkeleygw_rs::core::EpsilonInverse;
use berkeleygw_rs::io::{read_checkpoint_file, write_checkpoint, Checkpoint};
use berkeleygw_rs::linalg::CMatrix;
use berkeleygw_rs::pwdft::{si_bulk, ModelSystem};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bgw_restart_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn small_system() -> ModelSystem {
    let mut sys = si_bulk(1, 2.2);
    sys.n_bands = 24;
    sys
}

fn assert_qp_match(a: &GwResults, b: &GwResults, tol: f64, label: &str) {
    assert_eq!(a.sigma_bands, b.sigma_bands, "{label}: band sets differ");
    for (x, y) in a.states.iter().zip(&b.states) {
        assert!(
            (x.e_qp - y.e_qp).abs() < tol,
            "{label}: QP energy {} vs {}",
            x.e_qp,
            y.e_qp
        );
    }
    assert!((a.gap_qp_ry - b.gap_qp_ry).abs() < tol, "{label}: gap");
    assert!(
        (a.eps_macro - b.eps_macro).abs() < tol,
        "{label}: eps_macro"
    );
}

#[test]
fn checkpointed_gpp_matches_plain_driver_and_restarts_cleanly() {
    let sys = small_system();
    let cfg = GwConfig::default();
    let plain = run_gpp_gw(&sys, &cfg);

    // Uninterrupted checkpointed run: same physics as the plain driver.
    let dir = tmpdir("gpp_clean");
    let uninterrupted = run_gpp_gw_checkpointed(&sys, &cfg, &CheckpointPolicy::new(&dir)).unwrap();
    assert_qp_match(&uninterrupted, &plain, 1e-10, "uninterrupted vs plain");
    assert_eq!(uninterrupted.sigma_flops, plain.sigma_flops);
    assert!(uninterrupted.timings.t_checkpoint > 0.0);
    std::fs::remove_dir_all(&dir).ok();

    // Kill the run after every possible number of checkpoint writes and
    // resume: the restart must land on the uninterrupted numbers.
    for kill_after in [1usize, 2, 3, 5] {
        let dir = tmpdir(&format!("gpp_kill{kill_after}"));
        let killer = CheckpointPolicy {
            dir: dir.clone(),
            chi_stride: None,
            abort_after_writes: Some(kill_after),
        };
        match run_gpp_gw_checkpointed(&sys, &cfg, &killer) {
            Err(RestartError::Aborted { writes }) => assert_eq!(writes, kill_after),
            other => panic!("kill switch did not fire: {other:?}"),
        }
        let resumed = run_gpp_gw_checkpointed(&sys, &cfg, &CheckpointPolicy::new(&dir)).unwrap();
        assert_qp_match(
            &resumed,
            &uninterrupted,
            1e-10,
            &format!("resume after {kill_after} writes"),
        );
        assert_eq!(resumed.sigma_flops, uninterrupted.sigma_flops);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn corrupt_latest_checkpoint_is_skipped_on_restart() {
    let sys = small_system();
    let cfg = GwConfig::default();
    let dir = tmpdir("gpp_corrupt");
    let oracle_dir = tmpdir("gpp_corrupt_oracle");
    let oracle = run_gpp_gw_checkpointed(&sys, &cfg, &CheckpointPolicy::new(&oracle_dir)).unwrap();
    std::fs::remove_dir_all(&oracle_dir).ok();

    let killer = CheckpointPolicy {
        dir: dir.clone(),
        chi_stride: None,
        abort_after_writes: Some(3),
    };
    assert!(run_gpp_gw_checkpointed(&sys, &cfg, &killer).is_err());
    // Corrupt the newest checkpoint — the torn-write residue of a crash.
    let newest = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .max()
        .unwrap();
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&newest, &bytes).unwrap();

    let resumed = run_gpp_gw_checkpointed(&sys, &cfg, &CheckpointPolicy::new(&dir)).unwrap();
    assert_qp_match(&resumed, &oracle, 1e-10, "resume past corrupt checkpoint");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evgw_restart_matches_uninterrupted() {
    let sys = small_system();
    let cfg = GwConfig::default();
    let oracle = run_evgw(&sys, &cfg, 40, 1e-5);

    let dir = tmpdir("evgw_clean");
    let clean = run_evgw_checkpointed(&sys, &cfg, 40, 1e-5, &CheckpointPolicy::new(&dir)).unwrap();
    assert_eq!(clean.iterations, oracle.iterations);
    assert!((clean.gap_ry - oracle.gap_ry).abs() < 1e-12);
    std::fs::remove_dir_all(&dir).ok();

    let dir = tmpdir("evgw_kill");
    let killer = CheckpointPolicy {
        dir: dir.clone(),
        chi_stride: None,
        abort_after_writes: Some(2),
    };
    match run_evgw_checkpointed(&sys, &cfg, 40, 1e-5, &killer) {
        Err(RestartError::Aborted { writes }) => assert_eq!(writes, 2),
        other => panic!("kill switch did not fire: {other:?}"),
    }
    let resumed =
        run_evgw_checkpointed(&sys, &cfg, 40, 1e-5, &CheckpointPolicy::new(&dir)).unwrap();
    assert_eq!(resumed.iterations, oracle.iterations, "iteration count");
    for (a, b) in resumed.e_qp.iter().zip(&oracle.e_qp) {
        assert!((a - b).abs() < 1e-10, "QP energy {a} vs {b}");
    }
    assert!((resumed.gap_ry - oracle.gap_ry).abs() < 1e-10);
    assert_eq!(resumed.gap_history.len(), oracle.gap_history.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_gpp_checkpoints_are_typed_errors_not_panics() {
    // Records that decode cleanly (checksums pass) but whose payload does
    // not fit this run — missing matrices, wrong G-sphere, truncated sigma
    // tables, impossible step counts — must surface as
    // RestartError::Malformed, never as an index-out-of-bounds panic.
    let sys = small_system();
    let cfg = GwConfig::default();
    // Learn the run's actual G-sphere size from a real checkpoint, so the
    // deeper checks (step counts, sigma table lengths) are what trip on
    // the correctly-shaped cases rather than the shape guard.
    let probe_dir = tmpdir("gpp_malformed_probe");
    let killer = CheckpointPolicy {
        dir: probe_dir.clone(),
        chi_stride: None,
        abort_after_writes: Some(1),
    };
    assert!(run_gpp_gw_checkpointed(&sys, &cfg, &killer).is_err());
    let ng = read_checkpoint_file(&berkeleygw_rs::io::checkpoint_path(&probe_dir, 0))
        .unwrap()
        .matrices[0]
        .nrows();
    std::fs::remove_dir_all(&probe_dir).ok();
    let cases: Vec<(&str, Checkpoint)> = vec![
        (
            "chi record with no accumulator matrix",
            Checkpoint {
                stage: 1, // ChiPartial
                step: 1,
                meta: vec![],
                matrices: vec![],
            },
        ),
        (
            "chi accumulator from a different G-sphere",
            Checkpoint {
                stage: 1,
                step: 1,
                meta: vec![],
                matrices: vec![CMatrix::zeros(3, 3)],
            },
        ),
        (
            "chi step count beyond this run's chunk total",
            Checkpoint {
                stage: 1,
                step: 10_000,
                meta: vec![],
                matrices: vec![CMatrix::zeros(ng, ng)],
            },
        ),
        (
            "epsilon record with no inverse matrix",
            Checkpoint {
                stage: 2, // EpsilonDone
                step: 0,
                meta: vec![],
                matrices: vec![],
            },
        ),
        (
            "sigma record with a truncated metadata header",
            Checkpoint {
                stage: 3, // SigmaPartial
                step: 1,
                meta: vec![3.0],
                matrices: vec![CMatrix::zeros(ng, ng)],
            },
        ),
        (
            "sigma table shorter than the claimed band count",
            Checkpoint {
                stage: 3,
                step: 4,
                meta: vec![3.0, 0.0, 1.0, 2.0],
                matrices: vec![CMatrix::zeros(ng, ng)],
            },
        ),
    ];
    for (label, ck) in cases {
        let dir = tmpdir("gpp_malformed");
        write_checkpoint(&dir, 0, &ck).unwrap();
        match run_gpp_gw_checkpointed(&sys, &cfg, &CheckpointPolicy::new(&dir)) {
            Err(RestartError::Malformed { stage, reason }) => {
                assert!(!reason.is_empty(), "{label}: empty reason");
                assert!(
                    ["chi", "epsilon", "sigma"].contains(&stage),
                    "{label}: unexpected stage {stage}"
                );
            }
            other => panic!("{label}: expected Malformed, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn malformed_evgw_iterate_is_a_typed_error() {
    // An evGW iterate whose meta length disagrees with its step count (a
    // record from a different band set, or a half-rewritten one) must be
    // rejected typed, and non-finite resumed QP energies likewise.
    let sys = small_system();
    let cfg = GwConfig::default();

    let dir = tmpdir("evgw_malformed_len");
    write_checkpoint(
        &dir,
        0,
        &Checkpoint {
            stage: 4, // EvGwIter
            step: 2,
            meta: vec![0.5], // needs n_sigma + 2 values
            matrices: vec![],
        },
    )
    .unwrap();
    match run_evgw_checkpointed(&sys, &cfg, 10, 1e-5, &CheckpointPolicy::new(&dir)) {
        Err(RestartError::Malformed { stage: "evgw", .. }) => {}
        other => panic!("short evGW meta: expected Malformed, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();

    // Learn the real n_sigma from a clean run so the length check passes
    // and the finiteness check is what trips.
    let probe_dir = tmpdir("evgw_malformed_probe");
    let probe = run_evgw_checkpointed(&sys, &cfg, 2, 1e-12, &CheckpointPolicy::new(&probe_dir))
        .expect("probe run succeeds");
    std::fs::remove_dir_all(&probe_dir).ok();
    let n_sigma = probe.e_qp.len();

    let dir = tmpdir("evgw_malformed_nan");
    let mut meta = vec![f64::NAN; n_sigma];
    meta.push(0.1); // gap history, one entry for step = 1
    write_checkpoint(
        &dir,
        0,
        &Checkpoint {
            stage: 4,
            step: 1,
            meta,
            matrices: vec![],
        },
    )
    .unwrap();
    match run_evgw_checkpointed(&sys, &cfg, 10, 1e-5, &CheckpointPolicy::new(&dir)) {
        Err(RestartError::Malformed {
            stage: "evgw",
            reason,
        }) => {
            assert!(reason.contains("non-finite"), "wrong reason: {reason}");
        }
        other => panic!("NaN evGW iterate: expected Malformed, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn subspace_ff_sigma_is_invariant_under_chi_checkpoint_roundtrip() {
    // Recovery invariant: accumulating CHI in chunks, parking the partial
    // sum in a checkpoint, and resuming from disk must leave the static
    // subspace and the full-frequency Sigma built on it unchanged.
    let (ctx, setup) = testkit::small_context();
    let mtxel = Mtxel::new(&setup.wfn_sph, &setup.eps_sph);
    let cfg = ChiConfig {
        q0: setup.coulomb.q0,
        ..ChiConfig::default()
    };
    let engine = ChiEngine::new(&setup.wf, &mtxel, cfg);
    let valence: Vec<usize> = (0..setup.wf.n_valence).collect();
    let chunks: Vec<&[usize]> = valence.chunks(cfg.nv_block).collect();
    let ng = engine.n_g();

    // Uninterrupted chunked accumulation (the oracle).
    let mut t = ChiTimings::default();
    let mut chi_oracle = CMatrix::zeros(ng, ng);
    for chunk in &chunks {
        let p = engine
            .chi_freqs_subset(&[0.0], Some(chunk), &mut t)
            .pop()
            .unwrap();
        for (a, b) in chi_oracle.as_mut_slice().iter_mut().zip(p.as_slice()) {
            *a += *b;
        }
    }

    // Interrupted: first chunk, checkpoint to disk, "crash", resume from
    // the file, finish the remaining chunks.
    let dir = tmpdir("ff_subspace");
    let mut chi_acc = CMatrix::zeros(ng, ng);
    let p = engine
        .chi_freqs_subset(&[0.0], Some(chunks[0]), &mut t)
        .pop()
        .unwrap();
    for (a, b) in chi_acc.as_mut_slice().iter_mut().zip(p.as_slice()) {
        *a += *b;
    }
    write_checkpoint(
        &dir,
        0,
        &Checkpoint {
            stage: 1,
            step: 1,
            meta: vec![],
            matrices: vec![chi_acc],
        },
    )
    .unwrap();
    let mut chi_restarted = read_checkpoint_file(&berkeleygw_rs::io::checkpoint_path(&dir, 0))
        .unwrap()
        .matrices
        .pop()
        .unwrap();
    for chunk in &chunks[1..] {
        let p = engine
            .chi_freqs_subset(&[0.0], Some(chunk), &mut t)
            .pop()
            .unwrap();
        for (a, b) in chi_restarted.as_mut_slice().iter_mut().zip(p.as_slice()) {
            *a += *b;
        }
    }
    // The checkpoint roundtrip is bit-exact, so the accumulators agree.
    assert_eq!(chi_restarted.max_abs_diff(&chi_oracle), 0.0);

    // Subspace + full-frequency Sigma from both paths.
    let n_eig = (ng / 2).max(2);
    let (nodes, weights) = berkeleygw_rs::num::grid::semi_infinite_quadrature(8, 2.0);
    let (chis_ff, _) = engine.chi_freqs(&nodes);
    let eps_ff = EpsilonInverse::build(&chis_ff, &nodes, &setup.coulomb, &setup.eps_sph)
        .expect("dielectric matrix must be invertible");
    let grids: Vec<Vec<f64>> = ctx.sigma_energies.iter().map(|&e| vec![e]).collect();
    let sigma_of = |chi0: &CMatrix| {
        let sub = Subspace::from_chi0_sym(&symmetrize(chi0, &setup.vsqrt), n_eig);
        ff_sigma_diag_subspace(&ctx, &eps_ff, &weights, &grids, 0.05, &sub)
    };
    let oracle = sigma_of(&chi_oracle);
    let restarted = sigma_of(&chi_restarted);
    for s in 0..ctx.n_sigma() {
        let d = (oracle.sigma[s][0] - restarted.sigma[s][0]).abs();
        assert!(
            d < 1e-10,
            "band {s}: FF Sigma drifted by {d} across restart"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
