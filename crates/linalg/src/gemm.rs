//! ZGEMM: complex double-precision general matrix multiply.
//!
//! The paper's off-diagonal GPP kernel (Sec. 5.6) recasts the self-energy
//! contraction into two dense ZGEMM calls per `(n, E)` pair and leans on
//! vendor libraries (rocBLAS + Tensile on Frontier, oneMKL on Aurora,
//! cuBLAS on Perlmutter). This module is that substrate: a correct
//! reference implementation, a cache-blocked implementation, and a
//! thread-parallel blocked implementation, plus tunable tile parameters
//! standing in for the Tensile size-specific autotuning the paper evaluates
//! (Sec. 7.3).

use crate::matrix::CMatrix;
use bgw_num::Complex64;

/// How an operand enters the product.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Use the matrix as stored.
    None,
    /// Use the plain transpose.
    Trans,
    /// Use the conjugate transpose.
    Adj,
}

impl Op {
    /// Shape of `op(A)` given the stored shape of `A`.
    pub fn shape(self, (r, c): (usize, usize)) -> (usize, usize) {
        match self {
            Op::None => (r, c),
            Op::Trans | Op::Adj => (c, r),
        }
    }
}

/// Backend selection for [`zgemm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmBackend {
    /// Triple loop with on-the-fly operand indexing; the correctness oracle.
    Naive,
    /// Cache-blocked single-thread kernel with packed operands.
    Blocked,
    /// Cache-blocked kernel with row-panel thread parallelism.
    Parallel,
    /// Blocked kernel with caller-supplied tile sizes (the "Tensile" knob).
    Tuned(TileParams),
}

/// Cache-tile sizes for the blocked kernels: `C` is processed in `mc x nc`
/// panels accumulating over `kc`-deep strips.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileParams {
    /// Rows of the `C` panel held hot.
    pub mc: usize,
    /// Depth of the accumulation strip.
    pub kc: usize,
    /// Columns of the `C` panel.
    pub nc: usize,
}

impl Default for TileParams {
    fn default() -> Self {
        // Sized for ~256 KiB L2 working sets with 16-byte elements.
        Self { mc: 64, kc: 128, nc: 128 }
    }
}

/// Computes `C = alpha * op(A) * op(B) + beta * C`.
///
/// Shapes must satisfy `op(A): m x k`, `op(B): k x n`, `C: m x n`.
pub fn zgemm(
    alpha: Complex64,
    a: &CMatrix,
    opa: Op,
    b: &CMatrix,
    opb: Op,
    beta: Complex64,
    c: &mut CMatrix,
    backend: GemmBackend,
) {
    let (m, k) = opa.shape(a.shape());
    let (kb, n) = opb.shape(b.shape());
    assert_eq!(k, kb, "inner dimensions disagree: {k} vs {kb}");
    assert_eq!(c.shape(), (m, n), "output shape mismatch");
    match backend {
        GemmBackend::Naive => zgemm_naive(alpha, a, opa, b, opb, beta, c),
        GemmBackend::Blocked => {
            zgemm_blocked(alpha, a, opa, b, opb, beta, c, TileParams::default(), false)
        }
        GemmBackend::Parallel => {
            zgemm_blocked(alpha, a, opa, b, opb, beta, c, TileParams::default(), true)
        }
        GemmBackend::Tuned(tiles) => zgemm_blocked(alpha, a, opa, b, opb, beta, c, tiles, true),
    }
}

/// Convenience product `op(A) * op(B)` with a fresh output matrix.
pub fn matmul(a: &CMatrix, opa: Op, b: &CMatrix, opb: Op, backend: GemmBackend) -> CMatrix {
    let (m, _) = opa.shape(a.shape());
    let (_, n) = opb.shape(b.shape());
    let mut c = CMatrix::zeros(m, n);
    zgemm(Complex64::ONE, a, opa, b, opb, Complex64::ZERO, &mut c, backend);
    c
}

/// FLOP count of one `m x k x n` complex GEMM using the standard `8 m k n`
/// convention the paper applies in Eq. 8.
pub fn zgemm_flops(m: usize, k: usize, n: usize) -> u64 {
    8 * m as u64 * k as u64 * n as u64
}

#[inline(always)]
fn fetch(a: &CMatrix, op: Op, i: usize, j: usize) -> Complex64 {
    match op {
        Op::None => a[(i, j)],
        Op::Trans => a[(j, i)],
        Op::Adj => a[(j, i)].conj(),
    }
}

fn zgemm_naive(
    alpha: Complex64,
    a: &CMatrix,
    opa: Op,
    b: &CMatrix,
    opb: Op,
    beta: Complex64,
    c: &mut CMatrix,
) {
    let (m, k) = opa.shape(a.shape());
    let n = c.ncols();
    for i in 0..m {
        for j in 0..n {
            let mut acc = Complex64::ZERO;
            for p in 0..k {
                acc += fetch(a, opa, i, p) * fetch(b, opb, p, j);
            }
            let old = c[(i, j)];
            c[(i, j)] = alpha * acc + beta * old;
        }
    }
}

/// Packs `op(A)` rows `i0..i1`, cols `p0..p1` into a row-major panel.
fn pack_panel(a: &CMatrix, op: Op, i0: usize, i1: usize, p0: usize, p1: usize) -> Vec<Complex64> {
    let rows = i1 - i0;
    let cols = p1 - p0;
    let mut out = Vec::with_capacity(rows * cols);
    match op {
        Op::None => {
            for i in i0..i1 {
                out.extend_from_slice(&a.row(i)[p0..p1]);
            }
        }
        Op::Trans => {
            for i in i0..i1 {
                for p in p0..p1 {
                    out.push(a[(p, i)]);
                }
            }
        }
        Op::Adj => {
            for i in i0..i1 {
                for p in p0..p1 {
                    out.push(a[(p, i)].conj());
                }
            }
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn zgemm_blocked(
    alpha: Complex64,
    a: &CMatrix,
    opa: Op,
    b: &CMatrix,
    opb: Op,
    beta: Complex64,
    c: &mut CMatrix,
    tiles: TileParams,
    parallel: bool,
) {
    let (m, k) = opa.shape(a.shape());
    let n = c.ncols();
    // beta-scale once up front.
    if beta != Complex64::ONE {
        if beta == Complex64::ZERO {
            c.as_mut_slice().fill(Complex64::ZERO);
        } else {
            c.scale_inplace(beta);
        }
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let mc = tiles.mc.max(1);
    let kc = tiles.kc.max(1);
    let ncols = c.ncols();

    // Row panels of C are independent: parallelize over them.
    let row_panels: Vec<(usize, usize)> = (0..m)
        .step_by(mc)
        .map(|i0| (i0, (i0 + mc).min(m)))
        .collect();

    let body = |(i0, i1): (usize, usize), c_panel: &mut [Complex64]| {
        // c_panel covers rows i0..i1 of C, full width.
        for p0 in (0..k).step_by(kc) {
            let p1 = (p0 + kc).min(k);
            let a_pack = pack_panel(a, opa, i0, i1, p0, p1);
            let b_pack = pack_panel(b, opb, p0, p1, 0, n);
            let kk = p1 - p0;
            // i-k-j loop: contiguous access on b_pack rows and C rows.
            for (ii, c_row) in c_panel.chunks_exact_mut(ncols).enumerate() {
                let a_row = &a_pack[ii * kk..(ii + 1) * kk];
                for (pp, &aip) in a_row.iter().enumerate() {
                    let factor = alpha * aip;
                    let b_row = &b_pack[pp * n..(pp + 1) * n];
                    for (cj, &bpj) in c_row.iter_mut().zip(b_row) {
                        *cj = cj.mul_add(factor, bpj);
                    }
                }
            }
        }
    };

    if parallel && row_panels.len() > 1 && bgw_par::num_threads() > 1 {
        // Split C's storage into disjoint row panels and process them
        // concurrently.
        let mut panels: Vec<((usize, usize), &mut [Complex64])> = Vec::new();
        let mut rest = c.as_mut_slice();
        let mut consumed = 0usize;
        for &(i0, i1) in &row_panels {
            let take = (i1 - i0) * ncols;
            let (head, tail) = rest.split_at_mut(take);
            panels.push(((i0, i1), head));
            consumed += take;
            rest = tail;
        }
        debug_assert_eq!(consumed, m * ncols);
        let queue = parking_lot::Mutex::new(panels);
        std::thread::scope(|s| {
            for _ in 0..bgw_par::num_threads().min(row_panels.len()) {
                s.spawn(|| loop {
                    let item = queue.lock().pop();
                    match item {
                        Some((range, slice)) => body(range, slice),
                        None => break,
                    }
                });
            }
        });
    } else {
        for &(i0, i1) in &row_panels {
            let start = i0 * ncols;
            let end = i1 * ncols;
            // Non-overlapping borrow of this panel.
            let panel = &mut c.as_mut_slice()[start..end];
            body((i0, i1), panel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgw_num::c64;

    fn backends() -> Vec<GemmBackend> {
        vec![
            GemmBackend::Naive,
            GemmBackend::Blocked,
            GemmBackend::Parallel,
            GemmBackend::Tuned(TileParams { mc: 3, kc: 5, nc: 7 }),
        ]
    }

    #[test]
    fn op_shapes() {
        assert_eq!(Op::None.shape((2, 3)), (2, 3));
        assert_eq!(Op::Trans.shape((2, 3)), (3, 2));
        assert_eq!(Op::Adj.shape((2, 3)), (3, 2));
    }

    #[test]
    fn all_backends_agree_with_naive() {
        let a = CMatrix::random(7, 5, 1);
        let b = CMatrix::random(5, 9, 2);
        let reference = matmul(&a, Op::None, &b, Op::None, GemmBackend::Naive);
        for be in backends() {
            let c = matmul(&a, Op::None, &b, Op::None, be);
            assert!(
                c.max_abs_diff(&reference) < 1e-12,
                "backend {be:?} disagrees"
            );
        }
    }

    #[test]
    fn transpose_and_adjoint_ops() {
        let a = CMatrix::random(6, 4, 3);
        let b = CMatrix::random(6, 5, 4);
        // A^T B : (4x6)(6x5)
        let expect_t = matmul(&a.transpose(), Op::None, &b, Op::None, GemmBackend::Naive);
        let expect_h = matmul(&a.adjoint(), Op::None, &b, Op::None, GemmBackend::Naive);
        for be in backends() {
            let ct = matmul(&a, Op::Trans, &b, Op::None, be);
            let ch = matmul(&a, Op::Adj, &b, Op::None, be);
            assert!(ct.max_abs_diff(&expect_t) < 1e-12, "{be:?} trans");
            assert!(ch.max_abs_diff(&expect_h) < 1e-12, "{be:?} adj");
        }
        // B with ops on the right side too: A * B^H : (6x4)->need B: 5x4
        let b2 = CMatrix::random(5, 4, 5);
        let expect = matmul(&a, Op::None, &b2.adjoint(), Op::None, GemmBackend::Naive);
        for be in backends() {
            let c = matmul(&a, Op::None, &b2, Op::Adj, be);
            assert!(c.max_abs_diff(&expect) < 1e-12, "{be:?} right adj");
        }
    }

    #[test]
    fn alpha_beta_accumulation() {
        let a = CMatrix::random(4, 4, 6);
        let b = CMatrix::random(4, 4, 7);
        let c0 = CMatrix::random(4, 4, 8);
        let alpha = c64(0.5, -1.0);
        let beta = c64(2.0, 0.25);
        let mut expect = c0.clone();
        zgemm(alpha, &a, Op::None, &b, Op::None, beta, &mut expect, GemmBackend::Naive);
        for be in backends().into_iter().skip(1) {
            let mut c = c0.clone();
            zgemm(alpha, &a, Op::None, &b, Op::None, beta, &mut c, be);
            assert!(c.max_abs_diff(&expect) < 1e-12, "{be:?}");
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = CMatrix::random(5, 5, 9);
        let i5 = CMatrix::identity(5);
        for be in backends() {
            let c = matmul(&a, Op::None, &i5, Op::None, be);
            assert!(c.max_abs_diff(&a) < 1e-13, "{be:?}");
            let c = matmul(&i5, Op::None, &a, Op::None, be);
            assert!(c.max_abs_diff(&a) < 1e-13, "{be:?}");
        }
    }

    #[test]
    fn associativity_within_tolerance() {
        let a = CMatrix::random(4, 6, 10);
        let b = CMatrix::random(6, 3, 11);
        let c = CMatrix::random(3, 5, 12);
        let ab_c = matmul(
            &matmul(&a, Op::None, &b, Op::None, GemmBackend::Parallel),
            Op::None,
            &c,
            Op::None,
            GemmBackend::Parallel,
        );
        let a_bc = matmul(
            &a,
            Op::None,
            &matmul(&b, Op::None, &c, Op::None, GemmBackend::Parallel),
            Op::None,
            GemmBackend::Parallel,
        );
        assert!(ab_c.max_abs_diff(&a_bc) < 1e-12);
    }

    #[test]
    fn degenerate_dimensions() {
        let a = CMatrix::zeros(0, 3);
        let b = CMatrix::zeros(3, 4);
        let c = matmul(&a, Op::None, &b, Op::None, GemmBackend::Blocked);
        assert_eq!(c.shape(), (0, 4));
        // k = 0: C = beta*C only
        let a = CMatrix::zeros(2, 0);
        let b = CMatrix::zeros(0, 2);
        let mut c = CMatrix::identity(2);
        zgemm(Complex64::ONE, &a, Op::None, &b, Op::None, c64(3.0, 0.0), &mut c, GemmBackend::Blocked);
        assert_eq!(c[(0, 0)], c64(3.0, 0.0));
    }

    #[test]
    fn flop_count_convention() {
        assert_eq!(zgemm_flops(2, 3, 4), 8 * 24);
        assert_eq!(zgemm_flops(0, 3, 4), 0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn dimension_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(4, 2);
        let _ = matmul(&a, Op::None, &b, Op::None, GemmBackend::Naive);
    }

    #[test]
    fn large_blocked_matches_naive() {
        let a = CMatrix::random(150, 70, 21);
        let b = CMatrix::random(70, 90, 22);
        let r = matmul(&a, Op::None, &b, Op::None, GemmBackend::Naive);
        let c = matmul(&a, Op::None, &b, Op::None, GemmBackend::Parallel);
        // errors scale with k; keep a sane bound
        assert!(c.max_abs_diff(&r) < 1e-10);
    }
}
