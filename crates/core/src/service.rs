//! Request-shaped entry points for the serving layer (`bgw-serve`).
//!
//! The one-shot drivers in [`workflow`](crate::workflow) recompute the
//! expensive screening prefix — CHI, the dielectric inversion, the GPP
//! model — on every invocation, even though requests that differ only in
//! which Sigma diagonals or evaluation energies they ask for share it
//! verbatim. This module splits the pipeline at the W boundary:
//!
//! * [`build_screening`] computes everything up to and including
//!   `eps~^{-1}` (static, and optionally full-frequency on the quadrature
//!   nodes) exactly as [`run_gpp_gw`](crate::workflow::run_gpp_gw) /
//!   `ff_sigma` would, and packages it as a [`Screening`];
//! * [`screening_to_checkpoint`] / [`screening_from_checkpoint`] encode a
//!   `Screening` as a checksummed BGWR [`Checkpoint`] record (stage
//!   [`GwStage::WScreening`]) — the serve artifact store's unit, so a
//!   cache hit *is* a restart: the cheap deterministic prefix (bands,
//!   MTXEL, charge density) is recomputed and the stored `eps~^{-1}`
//!   blocks are re-adopted via [`EpsilonInverse::from_parts`], mirroring
//!   [`restart`](crate::restart)'s `EpsilonDone` resume path;
//! * [`gpp_eval_preemptible`] / [`ff_eval`] evaluate Sigma for an explicit
//!   band list against a `Screening`. The GPP path walks one
//!   [`band_slice`](crate::restart::band_slice) at a time and can yield
//!   between bands, returning a [`GppPartial`] that round-trips through a
//!   `SigmaPartial` checkpoint — the serving loop's preemption unit.
//!
//! Parity contract (enforced by `tests/serve.rs`): evaluating any band
//! subset through this module reproduces the corresponding one-shot
//! driver's Sigma values to 1e-12.

use crate::chi::{ChiConfig, ChiEngine};
use crate::coulomb::Coulomb;
use crate::dyson::{solve_qp_diag, QpState};
use crate::epsilon::{EpsilonError, EpsilonInverse};
use crate::gpp::GppModel;
use crate::mtxel::Mtxel;
use crate::restart::{band_slice, GwStage};
use crate::sigma::diag::{gpp_sigma_diag, KernelVariant, SigmaDiagResult};
use crate::sigma::fullfreq::ff_sigma_diag;
use crate::sigma::SigmaContext;
use crate::workflow::GwConfig;
use bgw_io::Checkpoint;
use bgw_num::grid::semi_infinite_quadrature;
use bgw_num::Complex64;
use bgw_pwdft::{charge_density_g, solve_bands, GSphere, ModelSystem, Wavefunctions};

/// Full-frequency screening request: build `eps~^{-1}` on the
/// semi-infinite quadrature (scale 2.0 Ry, matching the `ff_smoke`
/// harness) in addition to the static matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FfSpec {
    /// Quadrature nodes on the positive frequency axis.
    pub n_quad: usize,
}

/// The reusable (and cacheable) screening state shared by every Sigma
/// request against one structure: the W boundary of the GW pipeline.
pub struct Screening {
    /// Mean-field bands (cheap deterministic prefix, never stored).
    pub wf: Wavefunctions,
    /// Wavefunction G-sphere.
    pub wfn_sph: GSphere,
    /// Epsilon/Sigma G-sphere.
    pub eps_sph: GSphere,
    /// Bare Coulomb interaction for this cell.
    pub coulomb: Coulomb,
    /// MTXEL engine (FFT plan + scatter tables), reused across requests.
    pub mtxel: Mtxel,
    /// `sqrt(v(G))` on the epsilon sphere.
    pub vsqrt: Vec<f64>,
    /// Static `eps~^{-1}` (omegas = [0.0]).
    pub eps_inv: EpsilonInverse,
    /// Full-frequency `eps~^{-1}` on the quadrature nodes, with the
    /// quadrature weights; `None` for GPP-only screenings.
    pub ff: Option<(EpsilonInverse, Vec<f64>)>,
    /// Macroscopic dielectric constant.
    pub eps_macro: f64,
    /// Plasmon-pole model derived from the static inverse.
    pub gpp: GppModel,
}

impl Screening {
    /// Decoded in-memory footprint of this screening, in bytes: the
    /// currency a cost-aware cache charges against its budget. Full
    /// frequency blocks dominate — an FF screening carries one
    /// `eps~^{-1}` matrix per quadrature node on top of the static one —
    /// so this is deliberately *not* an entry count. The estimate covers
    /// the large arrays (matrices, coefficient tables, spheres); small
    /// scalar fields are ignored.
    pub fn approx_bytes(&self) -> u64 {
        const C64: u64 = std::mem::size_of::<Complex64>() as u64;
        const F64: u64 = std::mem::size_of::<f64>() as u64;
        let mat = |m: &bgw_linalg::CMatrix| (m.nrows() * m.ncols()) as u64 * C64;
        let eps = |e: &EpsilonInverse| {
            e.inv.iter().map(&mat).sum::<u64>() + (e.omegas.len() + e.vsqrt.len()) as u64 * F64
        };
        let sphere = |s: &GSphere| {
            // miller [i32;3] + cart [f64;3] + norm2 f64 per G-vector.
            s.len() as u64 * (12 + 24 + 8)
        };
        let mut total = 0u64;
        total += mat(&self.wf.coeffs) + self.wf.energies.len() as u64 * F64;
        total += sphere(&self.wfn_sph) + sphere(&self.eps_sph);
        total += self.vsqrt.len() as u64 * F64;
        total += eps(&self.eps_inv);
        if let Some((ff, weights)) = &self.ff {
            total += eps(ff) + weights.len() as u64 * F64;
        }
        total += (self.gpp.pole_strength.len() + self.gpp.mode_freq.len()) as u64 * F64;
        // MTXEL scatter/gather tables: one usize per box point per table
        // plus the wavefunction cartesian list.
        total += (self.wfn_sph.len() * (8 + 8 + 24)) as u64;
        total
    }
}

/// The deterministic cheap prefix shared by build and restore.
struct Prefix {
    wfn_sph: GSphere,
    eps_sph: GSphere,
    wf: Wavefunctions,
    coulomb: Coulomb,
    mtxel: Mtxel,
    vsqrt: Vec<f64>,
    volume: f64,
}

fn prefix(system: &ModelSystem, cfg: &GwConfig) -> Prefix {
    let wfn_sph = system.wfn_sphere();
    let eps_sph = system.eps_sphere();
    let wf = solve_bands(&system.crystal, &wfn_sph, system.n_bands.min(wfn_sph.len()));
    let volume = system.crystal.lattice.volume();
    let coulomb = if cfg.slab {
        Coulomb::slab(system.crystal.lattice.a[2][2], volume)
    } else {
        Coulomb::bulk_for_cell(volume)
    };
    let mtxel = Mtxel::new(&wfn_sph, &eps_sph);
    let vsqrt = coulomb.sqrt_on_sphere(&eps_sph);
    Prefix {
        wfn_sph,
        eps_sph,
        wf,
        coulomb,
        mtxel,
        vsqrt,
        volume,
    }
}

fn finish_screening(
    p: Prefix,
    eps_inv: EpsilonInverse,
    ff: Option<(EpsilonInverse, Vec<f64>)>,
) -> Screening {
    let eps_macro = eps_inv.macroscopic_constant();
    let rho = charge_density_g(&p.wf, &p.wfn_sph);
    let gpp = GppModel::new(&eps_inv, &p.eps_sph, &p.wfn_sph, &rho, p.volume);
    Screening {
        wf: p.wf,
        wfn_sph: p.wfn_sph,
        eps_sph: p.eps_sph,
        coulomb: p.coulomb,
        mtxel: p.mtxel,
        vsqrt: p.vsqrt,
        eps_inv,
        ff,
        eps_macro,
        gpp,
    }
}

/// Computes the full screening state for a structure: CHI, the static
/// dielectric inversion (and the full-frequency inversions when `ff` is
/// set), and the GPP model — the exact arithmetic of the one-shot
/// drivers, so downstream Sigma evaluations match them bitwise.
pub fn build_screening(
    system: &ModelSystem,
    cfg: &GwConfig,
    ff: Option<FfSpec>,
) -> Result<Screening, EpsilonError> {
    let _s = bgw_trace::span!("serve.screening.build");
    let p = prefix(system, cfg);
    let chi_cfg = ChiConfig {
        q0: p.coulomb.q0,
        ..cfg.chi
    };
    let engine = ChiEngine::new(&p.wf, &p.mtxel, chi_cfg);
    let chi0 = {
        let _s = bgw_trace::span!("serve.screening.chi");
        engine.chi_static()
    };
    let eps_inv = {
        let _s = bgw_trace::span!("serve.screening.epsilon");
        EpsilonInverse::build(&[chi0], &[0.0], &p.coulomb, &p.eps_sph)?
    };
    let ff_built = match ff {
        None => None,
        Some(spec) => {
            let _s = bgw_trace::span!("serve.screening.ff");
            let (nodes, weights) = semi_infinite_quadrature(spec.n_quad, 2.0);
            let (chis, _) = engine.chi_freqs(&nodes);
            let eps = EpsilonInverse::build(&chis, &nodes, &p.coulomb, &p.eps_sph)?;
            Some((eps, weights))
        }
    };
    Ok(finish_screening(p, eps_inv, ff_built))
}

/// Encodes a screening as a BGWR checkpoint record (stage
/// [`GwStage::WScreening`]): matrix 0 = static `eps~^{-1}`, matrices 1..
/// = the full-frequency blocks, meta = `[n_ff, nodes..., weights...]`,
/// `step` = `n_ff`. Only the expensive O(N^3) state is stored; the cheap
/// prefix is recomputed on restore.
pub fn screening_to_checkpoint(s: &Screening) -> Checkpoint {
    let mut matrices = vec![s.eps_inv.inv[0].clone()];
    let mut meta = Vec::new();
    let n_ff = s.ff.as_ref().map_or(0, |(e, _)| e.n_freq());
    meta.push(n_ff as f64);
    if let Some((eps, weights)) = &s.ff {
        matrices.extend(eps.inv.iter().cloned());
        meta.extend_from_slice(&eps.omegas);
        meta.extend_from_slice(weights);
    }
    Checkpoint {
        stage: GwStage::WScreening as u64,
        step: n_ff as u64,
        meta,
        matrices,
    }
}

/// Restores a screening from a [`screening_to_checkpoint`] record: the
/// serve cache-hit path, which *is* a restart. The cheap prefix is
/// recomputed from `system`/`cfg` and the stored `eps~^{-1}` blocks are
/// re-adopted via [`EpsilonInverse::from_parts`]. Returns `None` when the
/// record does not validate against this structure (wrong stage, shape
/// mismatch, non-finite payload, inconsistent meta) — the caller must
/// degrade to a recompute, never serve a wrong hit.
pub fn screening_from_checkpoint(
    system: &ModelSystem,
    cfg: &GwConfig,
    ck: &Checkpoint,
) -> Option<Screening> {
    let _s = bgw_trace::span!("serve.screening.restore");
    if ck.stage != GwStage::WScreening as u64 {
        return None;
    }
    let n_ff = ck.step as usize;
    if ck.matrices.len() != 1 + n_ff || ck.meta.len() != 1 + 2 * n_ff {
        return None;
    }
    if ck.meta[0] as usize != n_ff {
        return None;
    }
    let p = prefix(system, cfg);
    let ng = p.eps_sph.len();
    for m in &ck.matrices {
        if m.nrows() != ng || m.ncols() != ng {
            return None;
        }
        if m.as_slice()
            .iter()
            .any(|z| !z.re.is_finite() || !z.im.is_finite())
        {
            return None;
        }
    }
    let nodes = ck.meta[1..1 + n_ff].to_vec();
    let weights = ck.meta[1 + n_ff..].to_vec();
    if nodes.iter().chain(&weights).any(|x| !x.is_finite()) {
        return None;
    }
    let eps_inv =
        EpsilonInverse::from_parts(vec![0.0], vec![ck.matrices[0].clone()], p.vsqrt.clone());
    let ff = if n_ff > 0 {
        let eps = EpsilonInverse::from_parts(nodes, ck.matrices[1..].to_vec(), p.vsqrt.clone());
        Some((eps, weights))
    } else {
        None
    };
    Some(finish_screening(p, eps_inv, ff))
}

/// Builds the Sigma context for an explicit band list against a
/// screening. Kept separate from the evaluators so a coalesced batch pays
/// the matrix-element cost once for its union band set.
pub fn sigma_context(s: &Screening, bands: &[usize]) -> SigmaContext {
    let _s2 = bgw_trace::span!("serve.sigma.mtxel");
    SigmaContext::build(
        &s.wf,
        &s.mtxel,
        s.gpp.clone(),
        &s.vsqrt,
        bands,
        s.coulomb.q0,
    )
}

/// A multi-band view of a context: the bands at `positions` of `ctx`'s
/// band list, in that order. Like [`band_slice`], evaluating a subset
/// view reproduces the directly-built context exactly (each band's
/// matrix-element block and energy row are independent) — the coalescing
/// path uses this to serve one member of a batch from the union context.
pub fn band_subset(ctx: &SigmaContext, positions: &[usize]) -> SigmaContext {
    SigmaContext {
        m_tilde: positions.iter().map(|&p| ctx.m_tilde[p].clone()).collect(),
        energies: ctx.energies.clone(),
        n_occ: ctx.n_occ,
        gpp: ctx.gpp.clone(),
        sigma_bands: positions.iter().map(|&p| ctx.sigma_bands[p]).collect(),
        sigma_energies: positions.iter().map(|&p| ctx.sigma_energies[p]).collect(),
    }
}

/// Per-band Sigma state carried across a preemption: the first
/// `sigma.len()` bands of the request's band list are done.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GppPartial {
    /// Completed per-band Sigma rows (each `n_grid` long).
    pub sigma: Vec<Vec<f64>>,
    /// Kernel FLOPs accumulated so far.
    pub flops: u64,
}

/// Result of a completed preemptible GPP evaluation.
#[derive(Clone, Debug)]
pub struct GppEvalResult {
    /// Band indices evaluated (the request's list, in order).
    pub bands: Vec<usize>,
    /// Mean-field energies of those bands (Ry).
    pub sigma_energies: Vec<f64>,
    /// Occupied-band count (for locating HOMO/LUMO in `bands`).
    pub n_occ: usize,
    /// Quasiparticle solutions, aligned with `bands`.
    pub states: Vec<QpState>,
    /// Kernel FLOPs.
    pub flops: u64,
}

/// Outcome of [`gpp_eval_preemptible`]: finished, or yielded between
/// bands with resumable state.
pub enum GppOutcome {
    /// All bands evaluated and the QP equation solved.
    Done(GppEvalResult),
    /// The yield hook fired; `partial` resumes the evaluation where it
    /// stopped (`partial.sigma.len()` bands done).
    Yielded(GppPartial),
}

/// Evaluates GPP Sigma diagonals for `ctx` one band slice at a time —
/// identical arithmetic to the full-context kernel, per the
/// [`band_slice`] contract — calling `should_yield(bands_done)` between
/// bands. Pass a previous [`GppPartial`] to resume after a preemption.
pub fn gpp_eval_preemptible(
    ctx: &SigmaContext,
    delta_ry: f64,
    variant: KernelVariant,
    resume: Option<GppPartial>,
    mut should_yield: impl FnMut(usize) -> bool,
) -> GppOutcome {
    let _s = bgw_trace::span!("serve.sigma.gpp");
    let grids: Vec<Vec<f64>> = ctx
        .sigma_energies
        .iter()
        .map(|&e| vec![e - delta_ry, e, e + delta_ry])
        .collect();
    let mut partial = resume.unwrap_or_default();
    assert!(
        partial.sigma.len() <= ctx.n_sigma(),
        "resume state has more bands than the context"
    );
    for s in partial.sigma.len()..ctx.n_sigma() {
        let one = band_slice(ctx, s);
        let r = gpp_sigma_diag(&one, &grids[s..s + 1], variant);
        partial.sigma.push(r.sigma.into_iter().next().unwrap());
        partial.flops += r.flops;
        if partial.sigma.len() < ctx.n_sigma() && should_yield(partial.sigma.len()) {
            return GppOutcome::Yielded(partial);
        }
    }
    let diag = SigmaDiagResult {
        sigma: partial.sigma,
        e_grids: grids,
        seconds: 0.0,
        flops: partial.flops,
    };
    let states = solve_qp_diag(&ctx.sigma_energies, &diag);
    GppOutcome::Done(GppEvalResult {
        bands: ctx.sigma_bands.clone(),
        sigma_energies: ctx.sigma_energies.clone(),
        n_occ: ctx.n_occ,
        states,
        flops: diag.flops,
    })
}

/// Encodes a [`GppPartial`] as a `SigmaPartial`-stage checkpoint (meta =
/// `[n_grid, flops, sigma rows band-major]`, `step` = bands done) so a
/// preempted request survives a server restart through the same
/// checksummed store as the screening artifacts.
pub fn gpp_partial_to_checkpoint(p: &GppPartial, n_grid: usize) -> Checkpoint {
    let mut meta = vec![n_grid as f64, p.flops as f64];
    for band in &p.sigma {
        assert_eq!(band.len(), n_grid, "partial row width mismatch");
        meta.extend_from_slice(band);
    }
    Checkpoint {
        stage: GwStage::SigmaPartial as u64,
        step: p.sigma.len() as u64,
        meta,
        matrices: vec![],
    }
}

/// Decodes a [`gpp_partial_to_checkpoint`] record; `None` when the record
/// is not a consistent `SigmaPartial` (degrade to evaluating from band 0).
pub fn gpp_partial_from_checkpoint(ck: &Checkpoint) -> Option<GppPartial> {
    if ck.stage != GwStage::SigmaPartial as u64 || ck.meta.len() < 2 {
        return None;
    }
    let n_grid = ck.meta[0] as usize;
    let bands_done = ck.step as usize;
    if n_grid == 0 || ck.meta.len() != 2 + n_grid * bands_done {
        return None;
    }
    let flops = ck.meta[1] as u64;
    let sigma: Vec<Vec<f64>> = ck.meta[2..]
        .chunks_exact(n_grid)
        .map(|c| c.to_vec())
        .collect();
    if sigma.iter().flatten().any(|x| !x.is_finite()) {
        return None;
    }
    Some(GppPartial { sigma, flops })
}

/// Result of a full-frequency Sigma evaluation through the service path.
#[derive(Clone, Debug)]
pub struct FfEvalResult {
    /// Band indices evaluated.
    pub bands: Vec<usize>,
    /// Mean-field energies of those bands (Ry).
    pub sigma_energies: Vec<f64>,
    /// `sigma[s][e]` (complex, Ry) on the 3-point grids.
    pub sigma: Vec<Vec<Complex64>>,
    /// Kernel FLOPs.
    pub flops: u64,
}

/// Evaluates full-frequency Sigma diagonals for `ctx` against a
/// screening's quadrature blocks. Returns `None` when the screening was
/// built without [`FfSpec`].
pub fn ff_eval(
    s: &Screening,
    ctx: &SigmaContext,
    delta_ry: f64,
    eta_ry: f64,
) -> Option<FfEvalResult> {
    let (eps_ff, weights) = s.ff.as_ref()?;
    let _sp = bgw_trace::span!("serve.sigma.ff");
    let grids: Vec<Vec<f64>> = ctx
        .sigma_energies
        .iter()
        .map(|&e| vec![e - delta_ry, e, e + delta_ry])
        .collect();
    let r = ff_sigma_diag(ctx, eps_ff, weights, &grids, eta_ry);
    Some(FfEvalResult {
        bands: ctx.sigma_bands.clone(),
        sigma_energies: ctx.sigma_energies.clone(),
        sigma: r.sigma,
        flops: r.flops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::run_gpp_gw;
    use bgw_pwdft::si_bulk;

    fn small_system() -> ModelSystem {
        let mut sys = si_bulk(1, 2.2);
        sys.n_bands = 24;
        sys
    }

    #[test]
    fn screening_checkpoint_roundtrip_preserves_matrices() {
        let sys = small_system();
        let cfg = GwConfig::default();
        let s = build_screening(&sys, &cfg, Some(FfSpec { n_quad: 6 })).expect("build");
        let ck = screening_to_checkpoint(&s);
        assert_eq!(ck.stage, GwStage::WScreening as u64);
        assert_eq!(ck.matrices.len(), 7);
        let back = screening_from_checkpoint(&sys, &cfg, &ck).expect("restore");
        assert_eq!(
            s.eps_inv.inv[0].as_slice(),
            back.eps_inv.inv[0].as_slice(),
            "static inverse must round-trip bitwise"
        );
        let (ff_a, w_a) = s.ff.as_ref().unwrap();
        let (ff_b, w_b) = back.ff.as_ref().unwrap();
        assert_eq!(ff_a.omegas, ff_b.omegas);
        assert_eq!(w_a, w_b);
        for (a, b) in ff_a.inv.iter().zip(&ff_b.inv) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        assert_eq!(s.eps_macro, back.eps_macro);
    }

    #[test]
    fn restore_rejects_malformed_records() {
        let sys = small_system();
        let cfg = GwConfig::default();
        let s = build_screening(&sys, &cfg, None).expect("build");
        let good = screening_to_checkpoint(&s);
        assert!(screening_from_checkpoint(&sys, &cfg, &good).is_some());
        // Wrong stage.
        let mut bad = good.clone();
        bad.stage = GwStage::EpsilonDone as u64;
        assert!(screening_from_checkpoint(&sys, &cfg, &bad).is_none());
        // Shape mismatch (record for a different sphere).
        let mut bad = good.clone();
        bad.matrices[0] = bgw_linalg::CMatrix::zeros(3, 3);
        assert!(screening_from_checkpoint(&sys, &cfg, &bad).is_none());
        // Non-finite payload.
        let mut bad = good.clone();
        bad.matrices[0][(0, 0)] = bgw_num::c64(f64::NAN, 0.0);
        assert!(screening_from_checkpoint(&sys, &cfg, &bad).is_none());
        // Inconsistent meta.
        let mut bad = good;
        bad.meta[0] = 5.0;
        assert!(screening_from_checkpoint(&sys, &cfg, &bad).is_none());
    }

    #[test]
    fn preemptible_eval_matches_oneshot_driver_exactly() {
        let sys = small_system();
        let cfg = GwConfig::default();
        let oracle = run_gpp_gw(&sys, &cfg);
        let s = build_screening(&sys, &cfg, None).expect("build");
        let ctx = sigma_context(&s, &oracle.sigma_bands);

        // Uninterrupted.
        let done =
            match gpp_eval_preemptible(&ctx, cfg.sampling_delta_ry, cfg.variant, None, |_| false) {
                GppOutcome::Done(r) => r,
                GppOutcome::Yielded(_) => panic!("must not yield"),
            };
        assert_eq!(done.bands, oracle.sigma_bands);
        for (a, b) in done.states.iter().zip(&oracle.states) {
            assert!(
                (a.e_qp - b.e_qp).abs() < 1e-12,
                "served {} vs oracle {}",
                a.e_qp,
                b.e_qp
            );
            assert!((a.z - b.z).abs() < 1e-12);
        }

        // Yield after every band, round-tripping the partial through a
        // checkpoint record each time, and still match at 1e-12.
        let mut partial: Option<GppPartial> = None;
        let resumed = loop {
            match gpp_eval_preemptible(
                &ctx,
                cfg.sampling_delta_ry,
                cfg.variant,
                partial.take(),
                |_| true,
            ) {
                GppOutcome::Done(r) => break r,
                GppOutcome::Yielded(p) => {
                    let ck = gpp_partial_to_checkpoint(&p, 3);
                    partial = Some(gpp_partial_from_checkpoint(&ck).expect("partial roundtrip"));
                }
            }
        };
        for (a, b) in resumed.states.iter().zip(&oracle.states) {
            assert!((a.e_qp - b.e_qp).abs() < 1e-12);
        }
    }

    #[test]
    fn union_context_band_slices_match_per_request_contexts() {
        // Coalescing contract: a band evaluated through the union context
        // of a batch equals the same band through a request-sized context.
        let sys = small_system();
        let cfg = GwConfig::default();
        let s = build_screening(&sys, &cfg, None).expect("build");
        let nv = s.wf.n_valence;
        let narrow: Vec<usize> = vec![nv - 1, nv];
        let wide: Vec<usize> = (nv - 2..nv + 2).collect();
        let ctx_n = sigma_context(&s, &narrow);
        let ctx_w = sigma_context(&s, &wide);
        let eval = |ctx: &SigmaContext| match gpp_eval_preemptible(
            ctx,
            cfg.sampling_delta_ry,
            cfg.variant,
            None,
            |_| false,
        ) {
            GppOutcome::Done(r) => r,
            GppOutcome::Yielded(_) => unreachable!(),
        };
        let rn = eval(&ctx_n);
        let rw = eval(&ctx_w);
        for (i, band) in narrow.iter().enumerate() {
            let j = wide.iter().position(|b| b == band).unwrap();
            assert_eq!(
                rn.states[i].e_qp, rw.states[j].e_qp,
                "band {band} differs between narrow and union contexts"
            );
        }
    }

    #[test]
    fn partial_checkpoint_rejects_inconsistent_records() {
        let p = GppPartial {
            sigma: vec![vec![1.0, 2.0, 3.0]],
            flops: 42,
        };
        let ck = gpp_partial_to_checkpoint(&p, 3);
        assert_eq!(gpp_partial_from_checkpoint(&ck).unwrap(), p);
        let mut bad = ck.clone();
        bad.step = 2; // claims more bands than the meta holds
        assert!(gpp_partial_from_checkpoint(&bad).is_none());
        let mut bad = ck.clone();
        bad.meta[2] = f64::NAN;
        assert!(gpp_partial_from_checkpoint(&bad).is_none());
        let mut bad = ck;
        bad.stage = GwStage::ChiPartial as u64;
        assert!(gpp_partial_from_checkpoint(&bad).is_none());
    }
}
