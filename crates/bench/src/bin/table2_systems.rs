//! Regenerates paper Table 2 (application systems and computation sizes)
//! at laptop scale: the same defect constructions (Si divacancy, LiH
//! defect, BN sheet defect) with scaled-down cutoffs, printed next to the
//! paper's production sizes so the `N_v : N_c : N_G : N_G^psi` ratios can
//! be compared directly.

use bgw_perf::Table;

struct PaperRow {
    name: &'static str,
    n_g_psi: usize,
    n_g: usize,
    n_b: usize,
    n_v: usize,
}

fn paper_rows() -> Vec<PaperRow> {
    // Table 2 of the paper (minimum N_b variants).
    vec![
        PaperRow {
            name: "Si214",
            n_g_psi: 31_463,
            n_g: 11_075,
            n_b: 5_500,
            n_v: 428,
        },
        PaperRow {
            name: "Si510",
            n_g_psi: 74_653,
            n_g: 26_529,
            n_b: 15_000,
            n_v: 1_020,
        },
        PaperRow {
            name: "Si998",
            n_g_psi: 145_837,
            n_g: 51_627,
            n_b: 28_000,
            n_v: 1_996,
        },
        PaperRow {
            name: "Si2742",
            n_g_psi: 363_477,
            n_g: 141_505,
            n_b: 80_695,
            n_v: 5_484,
        },
        PaperRow {
            name: "LiH998",
            n_g_psi: 81_313,
            n_g: 52_923,
            n_b: 3_100,
            n_v: 499,
        },
        PaperRow {
            name: "LiH17574",
            n_g_psi: 506_991,
            n_g: 362_733,
            n_b: 49_920,
            n_v: 8_787,
        },
        PaperRow {
            name: "BN867",
            n_g_psi: 439_769,
            n_g: 84_585,
            n_b: 49_920,
            n_v: 1_734,
        },
    ]
}

fn main() {
    let mut t = Table::new(
        "Table 2 (paper, production scale)",
        &["System", "N_G^psi", "N_G", "N_b", "N_v", "N_c", "N_v/atom"],
    );
    for r in paper_rows() {
        let atoms: f64 = r
            .name
            .trim_start_matches(|c: char| c.is_alphabetic())
            .parse()
            .unwrap();
        t.row(&[
            r.name.to_string(),
            r.n_g_psi.to_string(),
            r.n_g.to_string(),
            r.n_b.to_string(),
            r.n_v.to_string(),
            (r.n_b - r.n_v).to_string(),
            format!("{:.2}", r.n_v as f64 / atoms),
        ]);
    }
    print!("{}", t.render());

    let mut t = Table::new(
        "Table 2 (this reproduction, scaled)",
        &[
            "System", "Atoms", "N_G^psi", "N_G", "N_b", "N_v", "N_c", "N_v/atom",
        ],
    );
    for (paper_name, sys, _) in bgw_bench::bench_roster() {
        let wfn = sys.wfn_sphere();
        let eps = sys.eps_sphere();
        let nv = sys.n_valence();
        let nb = sys.n_bands.min(wfn.len());
        t.row(&[
            format!("{} ({})", sys.name, paper_name),
            sys.crystal.n_atoms().to_string(),
            wfn.len().to_string(),
            eps.len().to_string(),
            nb.to_string(),
            nv.to_string(),
            (nb - nv).to_string(),
            format!("{:.2}", nv as f64 / sys.crystal.n_atoms() as f64),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nThe per-atom valence counts match the paper exactly (2/atom for Si\n\
         and BN systems, 0.5/atom for LiH); basis sizes are scaled by the\n\
         reduced cutoffs, preserving N_G^psi > N_G and N_c >> N_v."
    );
}
