#!/usr/bin/env sh
# Offline CI gate: release build, full test suite, formatting, lints.
# The workspace has zero external crates, so everything here must pass
# with the network disabled — CARGO_NET_OFFLINE makes any accidental
# registry access a hard error instead of a hang.
set -eu

cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench smoke: bench_fft_mtxel --smoke (oracle gates at 1e-10)"
# The bench asserts the pooled FFT against the serial kernel and cached
# MTXEL pairs against the direct convolution before timing anything; any
# mismatch > 1e-10 aborts with a nonzero exit. Run in a temp dir so the
# smoke-sized JSON never clobbers the committed full-size numbers.
root=$(pwd)
smokedir=$(mktemp -d)
(cd "$smokedir" && "$root/target/release/bench_fft_mtxel" --smoke)
rm -rf "$smokedir"

echo "==> all checks passed"
