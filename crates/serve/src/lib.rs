//! `bgw-serve`: GW-as-a-service — a resident in-process server over the
//! one-shot GW pipeline.
//!
//! Every driver in the tree used to be a one-shot CLI run, recomputing
//! the expensive screening artifacts (`eps~^{-1}` / W, the GPP model,
//! MTXEL caches) per invocation even though requests differing only in
//! which Sigma diagonals or energies they ask for share them verbatim.
//! This crate turns that path into a long-lived service:
//!
//! * a bounded job queue of [`GwRequest`]s ([`ServeCore`] synchronous
//!   engine; [`Server`] threaded daemon wrapper);
//! * a content-hash-keyed [`ArtifactStore`] layered on the checksummed
//!   BGWR checkpoint format — a cache hit *is* a restart through
//!   `bgw_core::service::screening_from_checkpoint`, plus an in-memory
//!   LRU of decoded screenings;
//! * request coalescing: queued requests sharing a W artifact key are
//!   batched into one pass — the screening is acquired once, the Sigma
//!   context is built once over the union band set, and each distinct
//!   `(band, delta)` diagonal is evaluated once;
//! * preemption/cancellation between band slices, with the partial state
//!   checkpointed (`SigmaPartial` records) and resumed — and deleted
//!   once the last request interested in its W retires, so
//!   preempt-heavy traffic cannot leak store disk;
//! * dispatcher sharding: [`Server`] spawns `n_shards` dispatcher
//!   threads and routes each request to shard `w_key % n_shards`, so
//!   distinct screenings build concurrently while coalescing stays
//!   per-shard; cache eviction is cost-aware (decoded byte footprints
//!   against byte budgets) and the shared store is garbage-collected
//!   oldest-access-first under a size budget, never touching entries
//!   pinned by an in-flight batch;
//! * per-request `bgw-trace` span-tree reports returned as response
//!   telemetry, extracted with `RunReport::delta`;
//! * a seeded deterministic fault model (`bgw_comm::FaultPlan`) threaded
//!   through the serving loop for the adversarial test battery.
//!
//! Every served result is pinned to the corresponding one-shot oracle
//! (`run_gpp_gw` / `ff_sigma_diag`) at 1e-12 by `tests/serve.rs` and the
//! `serve_smoke` bench gate.

#![warn(missing_docs)]

pub mod core;
pub mod key;
pub mod request;
pub mod server;
pub mod store;
pub mod traffic;

pub use crate::core::{
    CacheStatus, FfPayload, GppPayload, Payload, RequestId, ServeConfig, ServeCore, ServeError,
    ServeEvent, ServeOk, ServeTelemetry,
};
pub use key::{ArtifactKey, KeySpec};
pub use request::{GwRequest, RequestKind, StructureSpec};
pub use server::{Server, Ticket};
pub use store::{ArtifactStore, GcReport, StorePin};
pub use traffic::{zipf_stream, TrafficConfig};
