//! Pseudobands: compressing the band sum (paper Sec. 5.3).
//!
//! Demonstrates the mixed stochastic-deterministic method end to end:
//! compress a band set with exponentially growing energy slices, compare
//! the GPP self-energy from compressed vs exact band sums, and show the
//! Chebyshev-Jackson construction of a slice state without
//! diagonalization.
//!
//! Run with: `cargo run --release --example pseudobands_scaling`

use berkeleygw_rs::core::pseudobands::{chebyshev_pseudoband, compress, PseudobandsConfig};
use berkeleygw_rs::core::sigma::diag::{gpp_sigma_diag, KernelVariant};
use berkeleygw_rs::core::sigma::SigmaContext;
use berkeleygw_rs::core::{mtxel::Mtxel, testkit};
use berkeleygw_rs::num::RYDBERG_EV;
use berkeleygw_rs::pwdft::Hamiltonian;

fn main() {
    let (ctx, setup) = testkit::small_context();
    // Solve the full spectrum so there is a deep tail worth compressing.
    let wf =
        &berkeleygw_rs::pwdft::solve_bands(&setup.crystal, &setup.wfn_sph, setup.wfn_sph.len());
    let mtxel = Mtxel::new(&setup.wfn_sph, &setup.eps_sph);
    let grids: Vec<Vec<f64>> = ctx.sigma_energies.iter().map(|&e| vec![e]).collect();
    let full_ctx = SigmaContext::build(
        wf,
        &mtxel,
        ctx.gpp.clone(),
        &setup.vsqrt,
        &ctx.sigma_bands,
        setup.coulomb.q0,
    );
    let exact = gpp_sigma_diag(&full_ctx, &grids, KernelVariant::Optimized);

    println!("exact band set: N_b = {}", wf.n_bands());
    println!("\nN_xi  N_b(compressed)  compression  Sigma_HOMO err (meV)");
    for n_xi in [1usize, 2, 4] {
        let cfg = PseudobandsConfig {
            protection_ry: 0.2,
            n_xi,
            first_slice_ry: 0.4,
            growth: 1.6,
            seed: 42,
        };
        let pb = compress(wf, &cfg);
        let pctx = SigmaContext::build(
            &pb.wf,
            &mtxel,
            ctx.gpp.clone(),
            &setup.vsqrt,
            &ctx.sigma_bands,
            setup.coulomb.q0,
        );
        let r = gpp_sigma_diag(&pctx, &grids, KernelVariant::Optimized);
        let h = full_ctx.homo_pos();
        let err = (r.sigma[h][0] - exact.sigma[h][0]).abs();
        println!(
            "{n_xi:>4}  {:>15}  {:>10.2}x  {:>19.1}",
            pb.wf.n_bands(),
            pb.compression(),
            err * RYDBERG_EV * 1000.0
        );
    }

    // Chebyshev-Jackson slice construction, no diagonalization.
    let h = Hamiltonian::new(&setup.crystal, &setup.wfn_sph);
    let (lo, hi) = h.spectral_bounds();
    let xi = chebyshev_pseudoband(&h, 0.8, 1.4, (lo, hi), 400, 7);
    let norm: f64 = xi.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
    println!(
        "\nChebyshev-Jackson slice state for [0.8, 1.4] Ry built from a\n\
         random vector with {} matrix-vector products (norm {:.3});\n\
         construction scales as O(N)-O(N^2) instead of the O(N^3) full\n\
         diagonalization (paper Sec. 5.3).",
        400, norm
    );
}
