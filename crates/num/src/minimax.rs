//! Imaginary-time/imaginary-frequency grids and fitted cosine/sine
//! transform weights for the space-time polarizability (ROADMAP open
//! item 1; Liu et al. arXiv:1607.02859, Wilhelm et al. arXiv:2104.09857).
//!
//! The space-time path evaluates chi0 on a small imaginary-time grid
//! `{tau_j}` and moves to the imaginary-frequency nodes `{omega_k}` of the
//! Sigma quadrature with a weighted sum: every particle-hole pair with
//! transition energy `a = e_c - e_v > 0` contributes `e^{-a tau}` in time
//! and the Lorentzian `K_cos(a, omega) = 2a / (a^2 + omega^2)` in
//! frequency, so a weight table `gamma[k][j]` with
//!
//! ```text
//!   sum_j gamma[k][j] e^{-a tau_j}  ~=  K_cos(a, omega_k)
//! ```
//!
//! uniformly over the transition-energy range `[e_min, e_max]` transforms
//! *any* chi0(i tau) to chi0(i omega) with a relative error bounded by the
//! fit residual. True minimax (Remez) grids optimize the sup-norm
//! directly; this module reaches the same few-digits-per-point regime with
//! geometric tau nodes and discrete least-squares fits in relative error,
//! and — crucially for an honest gate — *reports* the achieved sup-norm
//! residual so consumers can assert against it instead of a wished-for
//! constant. The sine companion `K_sin(a, omega) = 2 omega / (a^2 +
//! omega^2)` (the odd part used by Green's-function transforms) and the
//! reverse omega -> tau fits are provided for round-trip validation.

/// A fitted time/frequency transform: `weights[k][j]` maps values on the
/// input grid (index `j`) to output node `k`, and `residual` is the
/// achieved sup-norm *relative* fit error over the transition-energy
/// range — the number cross-validation gates should be scaled by.
#[derive(Clone, Debug)]
pub struct TransformFit {
    /// `weights[k][j]`: contribution of input node `j` to output node `k`.
    pub weights: Vec<Vec<f64>>,
    /// Max over output nodes of the relative sup-norm fit error.
    pub residual: f64,
}

impl TransformFit {
    /// Applies the transform to per-node scalar samples (used by the
    /// round-trip tests; matrix-valued consumers accumulate with the raw
    /// weight table).
    pub fn apply(&self, input: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .map(|row| {
                assert_eq!(row.len(), input.len(), "transform input length");
                row.iter().zip(input).map(|(w, v)| w * v).sum()
            })
            .collect()
    }
}

/// Frequency-domain image of a decaying exponential under the cosine
/// transform: `2 int_0^inf cos(w t) e^{-a t} dt = 2a / (a^2 + w^2)`.
/// This is exactly the imaginary-axis energy denominator
/// `-2 de / (de^2 + w^2)` of the dense polarizability with `a = -de`.
pub fn cos_kernel(a: f64, omega: f64) -> f64 {
    2.0 * a / (a * a + omega * omega)
}

/// Sine-transform companion: `2 int_0^inf sin(w t) e^{-a t} dt =
/// 2 w / (a^2 + w^2)` (odd part; Green's-function transforms).
pub fn sin_kernel(a: f64, omega: f64) -> f64 {
    2.0 * omega / (a * a + omega * omega)
}

/// Geometric imaginary-time grid covering the decay scales of
/// `e^{-a tau}` for `a` in `[e_min, e_max]`: from well inside the fastest
/// decay (`0.4 / e_max`) to deep into the slowest (`8 / e_min`). The
/// constants were swept against the cosine-fit sup-norm residual; wider
/// ranges look richer but produce wildly oscillating LS weights that
/// *hurt* the off-sample error.
pub fn tau_grid(n: usize, e_min: f64, e_max: f64) -> Vec<f64> {
    assert!(n >= 2, "tau grid needs at least two points");
    assert!(
        e_min > 0.0 && e_max >= e_min,
        "transition-energy range must be positive and ordered"
    );
    let lo = 0.4 / e_max;
    let hi = 8.0 / e_min;
    geometric(lo, hi.max(lo * 1.0001), n)
}

/// Geometric imaginary-frequency grid over the transition-energy range
/// (default output nodes when the caller has no quadrature of its own).
pub fn omega_grid(n: usize, e_min: f64, e_max: f64) -> Vec<f64> {
    assert!(n >= 2, "omega grid needs at least two points");
    assert!(
        e_min > 0.0 && e_max >= e_min,
        "transition-energy range must be positive and ordered"
    );
    let lo = 0.5 * e_min;
    let hi = 4.0 * e_max;
    geometric(lo, hi.max(lo * 1.0001), n)
}

fn geometric(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    let ratio = (hi / lo).ln();
    (0..n)
        .map(|j| lo * (ratio * j as f64 / (n - 1) as f64).exp())
        .collect()
}

/// Knobs for the weight fits and the optional tau-node optimization.
#[derive(Clone, Debug)]
pub struct FitOptions {
    /// Log-spaced transition-energy samples the fits are scored on.
    pub n_samples: usize,
    /// Ridge scale (relative to the largest basis column norm) keeping
    /// fitted weights from oscillating wildly when the exponential basis
    /// is over-resolved — wild weights would amplify the FP noise of the
    /// per-tau chi0 matrices they multiply.
    pub ridge: f64,
    /// Coordinate-descent passes refining the tau nodes against the
    /// cosine-fit sup-norm residual (0 = keep the geometric grid). A few
    /// passes typically buy 5-10x over geometric placement.
    pub optimize_passes: usize,
}

impl Default for FitOptions {
    fn default() -> Self {
        Self {
            n_samples: 256,
            ridge: 1e-9,
            optimize_passes: 8,
        }
    }
}

/// Fits cosine-transform weights `gamma[k][j]` such that
/// `sum_j gamma[k][j] e^{-a tau_j} ~= cos_kernel(a, omega_k)` in relative
/// sup norm over `a` in `[e_min, e_max]`.
pub fn fit_cos_tau_to_omega(taus: &[f64], omegas: &[f64], e_min: f64, e_max: f64) -> TransformFit {
    let opt = FitOptions::default();
    fit_transform(
        taus,
        omegas,
        e_min,
        e_max,
        BasisSide::Time,
        cos_kernel,
        &opt,
    )
}

/// Reverse fit: `sum_k eta[j][k] cos_kernel(a, omega_k) ~= e^{-a tau_j}`.
pub fn fit_cos_omega_to_tau(omegas: &[f64], taus: &[f64], e_min: f64, e_max: f64) -> TransformFit {
    let opt = FitOptions::default();
    fit_transform(
        omegas,
        taus,
        e_min,
        e_max,
        BasisSide::Frequency,
        cos_kernel,
        &opt,
    )
}

/// Sine-transform weights `lambda[k][j]` such that
/// `sum_j lambda[k][j] e^{-a tau_j} ~= sin_kernel(a, omega_k)`.
pub fn fit_sin_tau_to_omega(taus: &[f64], omegas: &[f64], e_min: f64, e_max: f64) -> TransformFit {
    let opt = FitOptions::default();
    fit_transform(
        taus,
        omegas,
        e_min,
        e_max,
        BasisSide::Time,
        sin_kernel,
        &opt,
    )
}

/// A complete grid set for one spectral range: the tau nodes, the caller's
/// omega nodes, and the fitted transforms between them.
#[derive(Clone, Debug)]
pub struct MinimaxGrid {
    /// Smallest transition energy covered (the gap, for chi0).
    pub e_min: f64,
    /// Largest transition energy covered.
    pub e_max: f64,
    /// Imaginary-time nodes.
    pub taus: Vec<f64>,
    /// Imaginary-frequency output nodes (caller-supplied quadrature).
    pub omegas: Vec<f64>,
    /// Even (cosine) transform tau -> omega: the chi0 transform.
    pub cos_tw: TransformFit,
    /// Even (cosine) transform omega -> tau (round-trip / W pullback).
    pub cos_wt: TransformFit,
    /// Odd (sine) transform tau -> omega.
    pub sin_tw: TransformFit,
}

impl MinimaxGrid {
    /// Builds the tau grid and fits all transforms against the caller's
    /// `omegas` (e.g. the `semi_infinite_quadrature` nodes of the
    /// imaginary-axis Sigma path; `omega = 0` is allowed and fits the
    /// static limit `2/a`) with default [`FitOptions`].
    pub fn build(n_tau: usize, omegas: &[f64], e_min: f64, e_max: f64) -> Self {
        Self::build_with(n_tau, omegas, e_min, e_max, &FitOptions::default())
    }

    /// [`MinimaxGrid::build`] with explicit fit options (tests and debug
    /// builds pass `optimize_passes: 0` for speed; the reported residual
    /// stays the honest gate either way).
    pub fn build_with(
        n_tau: usize,
        omegas: &[f64],
        e_min: f64,
        e_max: f64,
        opt: &FitOptions,
    ) -> Self {
        assert!(!omegas.is_empty(), "minimax grid needs output nodes");
        let mut taus = tau_grid(n_tau, e_min, e_max);
        if opt.optimize_passes > 0 {
            optimize_tau_nodes(&mut taus, omegas, e_min, e_max, opt);
        }
        let cos_tw = fit_transform(
            &taus,
            omegas,
            e_min,
            e_max,
            BasisSide::Time,
            cos_kernel,
            opt,
        );
        let cos_wt = fit_transform(
            omegas,
            &taus,
            e_min,
            e_max,
            BasisSide::Frequency,
            cos_kernel,
            opt,
        );
        let sin_tw = fit_transform(
            &taus,
            omegas,
            e_min,
            e_max,
            BasisSide::Time,
            sin_kernel,
            opt,
        );
        Self {
            e_min,
            e_max,
            taus,
            omegas: omegas.to_vec(),
            cos_tw,
            cos_wt,
            sin_tw,
        }
    }

    /// Worst fitted residual across the transforms held here.
    pub fn max_residual(&self) -> f64 {
        self.cos_tw
            .residual
            .max(self.cos_wt.residual)
            .max(self.sin_tw.residual)
    }
}

#[derive(Clone, Copy)]
enum BasisSide {
    /// Basis functions are `e^{-a tau_j}`; targets are kernel values.
    Time,
    /// Basis functions are kernel values at `omega_k`; targets `e^{-a tau_j}`.
    Frequency,
}

/// Refines the tau nodes by coordinate descent on the cosine-fit
/// sup-norm residual: each node is nudged by a shrinking multiplicative
/// step (ordering preserved) and the move is kept only if the worst
/// residual over the output nodes drops. Scored on a thinned sample set
/// for speed; the final fits re-score on the full set.
fn optimize_tau_nodes(taus: &mut [f64], omegas: &[f64], e_min: f64, e_max: f64, opt: &FitOptions) {
    let coarse = FitOptions {
        n_samples: opt.n_samples.min(96),
        ..opt.clone()
    };
    let score = |t: &[f64]| {
        fit_transform(
            t,
            omegas,
            e_min,
            e_max,
            BasisSide::Time,
            cos_kernel,
            &coarse,
        )
        .residual
    };
    let n = taus.len();
    let mut best = score(taus);
    let mut step: f64 = 1.35;
    for _ in 0..opt.optimize_passes {
        let mut improved = false;
        for j in 0..n {
            for f in [step, 1.0 / step] {
                let old = taus[j];
                let cand = old * f;
                let lo = if j > 0 { taus[j - 1] * 1.02 } else { 0.0 };
                let hi = if j + 1 < n {
                    taus[j + 1] / 1.02
                } else {
                    f64::INFINITY
                };
                if cand <= lo || cand >= hi {
                    continue;
                }
                taus[j] = cand;
                let r = score(taus);
                if r < best {
                    best = r;
                    improved = true;
                } else {
                    taus[j] = old;
                }
            }
        }
        if !improved {
            step = step.sqrt();
            if step < 1.01 {
                break;
            }
        }
    }
}

fn fit_transform(
    in_nodes: &[f64],
    out_nodes: &[f64],
    e_min: f64,
    e_max: f64,
    side: BasisSide,
    kernel: fn(f64, f64) -> f64,
    opt: &FitOptions,
) -> TransformFit {
    assert!(!in_nodes.is_empty() && !out_nodes.is_empty());
    assert!(
        e_min > 0.0 && e_max >= e_min,
        "transition-energy range must be positive and ordered"
    );
    let samples = geometric(e_min, e_max.max(e_min * (1.0 + 1e-12)), opt.n_samples);
    let n = in_nodes.len();
    let m = samples.len();
    // Basis matrix over the sample points, column-major (shared by every
    // output node; the QR could be shared too, but n is tiny).
    let basis: Vec<f64> = (0..n)
        .flat_map(|j| {
            let node = in_nodes[j];
            samples.iter().map(move |&a| match side {
                BasisSide::Time => (-a * node).exp(),
                BasisSide::Frequency => kernel(a, node),
            })
        })
        .collect();
    let mut weights = Vec::with_capacity(out_nodes.len());
    let mut residual = 0.0f64;
    for &out in out_nodes {
        let target: Vec<f64> = samples
            .iter()
            .map(|&a| match side {
                BasisSide::Time => kernel(a, out),
                BasisSide::Frequency => (-a * out).exp(),
            })
            .collect();
        let scale = target.iter().fold(0.0f64, |s, t| s.max(t.abs()));
        if scale == 0.0 {
            // Identically-zero target (sin kernel at omega = 0).
            weights.push(vec![0.0; n]);
            continue;
        }
        // Relative-error weighting: scale each sample row by 1/|target|
        // (floored so deep Lorentzian tails cannot dominate the fit), so
        // the reported residual is a *relative* sup-norm bound.
        let floor = scale * 1e-8;
        let rows = m + n; // ridge-augmented
        let mut a = vec![0.0; rows * n];
        let mut b = vec![0.0; rows];
        for s in 0..m {
            let w = 1.0 / target[s].abs().max(floor);
            for j in 0..n {
                a[j * rows + s] = basis[j * m + s] * w;
            }
            b[s] = target[s] * w;
        }
        let colnorm_max = (0..n)
            .map(|j| {
                (0..m)
                    .map(|s| a[j * rows + s] * a[j * rows + s])
                    .sum::<f64>()
                    .sqrt()
            })
            .fold(0.0f64, f64::max);
        for j in 0..n {
            a[j * rows + m + j] = opt.ridge * colnorm_max;
        }
        let w = lstsq_householder(&mut a, rows, n, &mut b);
        // Score the fit on the (un-augmented) samples.
        let mut worst = 0.0f64;
        for s in 0..m {
            let fit: f64 = (0..n).map(|j| w[j] * basis[j * m + s]).sum();
            let err = (fit - target[s]).abs() / target[s].abs().max(floor);
            worst = worst.max(err);
        }
        residual = residual.max(worst);
        weights.push(w);
    }
    TransformFit { weights, residual }
}

/// Solves `min_w ||A w - b||_2` for a dense column-major `m x n` (`m >= n`)
/// matrix by Householder QR; near-zero `R` diagonals are truncated (their
/// solution component is set to 0) so rank-deficient bases degrade
/// gracefully instead of blowing up.
fn lstsq_householder(a: &mut [f64], m: usize, n: usize, b: &mut [f64]) -> Vec<f64> {
    assert!(m >= n && a.len() == m * n && b.len() == m);
    let mut diag = vec![0.0; n];
    for k in 0..n {
        let ck = k * m;
        let norm2: f64 = (k..m).map(|i| a[ck + i] * a[ck + i]).sum();
        let norm = norm2.sqrt();
        if norm == 0.0 {
            diag[k] = 0.0;
            continue;
        }
        let alpha = if a[ck + k] >= 0.0 { -norm } else { norm };
        a[ck + k] -= alpha; // column k rows k..m now hold the Householder v
        diag[k] = alpha;
        let vnorm2 = -2.0 * alpha * a[ck + k]; // ||v||^2 = 2 alpha (alpha - x_k)
        if vnorm2 == 0.0 {
            continue;
        }
        for j in (k + 1)..n {
            let cj = j * m;
            let dot: f64 = (k..m).map(|i| a[ck + i] * a[cj + i]).sum();
            let f = 2.0 * dot / vnorm2;
            for i in k..m {
                a[cj + i] -= f * a[ck + i];
            }
        }
        let dot: f64 = (k..m).map(|i| a[ck + i] * b[i]).sum();
        let f = 2.0 * dot / vnorm2;
        for i in k..m {
            b[i] -= f * a[ck + i];
        }
    }
    let dmax = diag.iter().fold(0.0f64, |s, d| s.max(d.abs()));
    let tol = dmax * 1e-13;
    let mut w = vec![0.0; n];
    for k in (0..n).rev() {
        if diag[k].abs() <= tol {
            continue;
        }
        let mut s = b[k];
        for (j, wj) in w.iter().enumerate().take(n).skip(k + 1) {
            s -= a[j * m + k] * wj;
        }
        w[k] = s / diag[k];
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn off_sample_energies(e_min: f64, e_max: f64, n: usize) -> Vec<f64> {
        // Deliberately *not* the fit's own log-spaced samples: jittered
        // geometric points so the residual claim is tested off-grid.
        let ratio = (e_max / e_min).ln();
        (0..n)
            .map(|i| {
                let t = (i as f64 + 0.37) / n as f64;
                e_min * (ratio * t).exp()
            })
            .collect()
    }

    #[test]
    fn lstsq_recovers_exact_solution() {
        // 4x2 system with an exact solution in the column space.
        let m = 4;
        let n = 2;
        // columns: [1,1,1,1], [1,2,3,4]; w = (3, -2) => b = 3 - 2*j
        let mut a = vec![1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 3.0, 4.0];
        let mut b: Vec<f64> = (1..=4).map(|j| 3.0 - 2.0 * j as f64).collect();
        let w = lstsq_householder(&mut a, m, n, &mut b);
        assert!((w[0] - 3.0).abs() < 1e-12 && (w[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn lstsq_truncates_rank_deficiency() {
        // Two identical columns: solution must stay finite.
        let m = 3;
        let n = 2;
        let mut a = vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0];
        let mut b = vec![2.0, 4.0, 6.0];
        let w = lstsq_householder(&mut a, m, n, &mut b);
        assert!(w.iter().all(|x| x.is_finite()));
        // b lies in the (rank-1) column space; the truncated solution must
        // still reproduce it.
        for i in 0..m {
            let fit = (w[0] + w[1]) * (i + 1) as f64;
            assert!((fit - 2.0 * (i + 1) as f64).abs() < 1e-10);
        }
    }

    #[test]
    fn cos_fit_reproduces_kernel_off_sample() {
        let (e_min, e_max) = (0.5, 25.0);
        let taus = tau_grid(14, e_min, e_max);
        let omegas = omega_grid(10, e_min, e_max);
        let fit = fit_cos_tau_to_omega(&taus, &omegas, e_min, e_max);
        assert!(fit.residual < 5e-4, "cos residual {}", fit.residual);
        for &a in &off_sample_energies(e_min, e_max, 33) {
            let time: Vec<f64> = taus.iter().map(|&t| (-a * t).exp()).collect();
            let freq = fit.apply(&time);
            for (k, &w) in omegas.iter().enumerate() {
                let exact = cos_kernel(a, w);
                let rel = (freq[k] - exact).abs() / exact.abs();
                assert!(
                    rel < 10.0 * fit.residual + 1e-12,
                    "a={a} w={w}: rel {rel} vs residual {}",
                    fit.residual
                );
            }
        }
    }

    #[test]
    fn sin_fit_reproduces_kernel_off_sample() {
        let (e_min, e_max) = (0.8, 40.0);
        let taus = tau_grid(16, e_min, e_max);
        let omegas = omega_grid(10, e_min, e_max);
        let fit = fit_sin_tau_to_omega(&taus, &omegas, e_min, e_max);
        assert!(fit.residual < 1e-3, "sin residual {}", fit.residual);
        for &a in &off_sample_energies(e_min, e_max, 21) {
            let time: Vec<f64> = taus.iter().map(|&t| (-a * t).exp()).collect();
            let freq = fit.apply(&time);
            for (k, &w) in omegas.iter().enumerate() {
                let exact = sin_kernel(a, w);
                let rel = (freq[k] - exact).abs() / exact.abs();
                assert!(rel < 10.0 * fit.residual + 1e-12, "a={a} w={w}: {rel}");
            }
        }
    }

    #[test]
    fn round_trip_tau_omega_tau_across_grid_sizes() {
        // tau -> omega -> tau must close within the *composed* fit
        // tolerance: the forward error is amplified by the l1 norm of the
        // backward weights, so the honest bound is
        // res_wt + res_tw * max_j ||eta_j||_1 (both reported numbers).
        let (e_min, e_max) = (0.4, 20.0);
        for n_tau in [8usize, 12, 16] {
            let omegas = omega_grid(n_tau + 2, e_min, e_max);
            let g = MinimaxGrid::build_with(
                n_tau,
                &omegas,
                e_min,
                e_max,
                &FitOptions {
                    optimize_passes: 0,
                    ..FitOptions::default()
                },
            );
            let l1_back = g
                .cos_wt
                .weights
                .iter()
                .map(|row| row.iter().map(|w| w.abs()).sum::<f64>())
                .fold(0.0f64, f64::max);
            let tol = 5.0 * (g.cos_wt.residual + g.cos_tw.residual * l1_back) + 1e-10;
            for &a in &off_sample_energies(e_min, e_max, 17) {
                let time: Vec<f64> = g.taus.iter().map(|&t| (-a * t).exp()).collect();
                let back = g.cos_wt.apply(&g.cos_tw.apply(&time));
                for (j, &orig) in time.iter().enumerate() {
                    // Error relative to the vector scale (max component 1),
                    // not per-component: deep tails are below the fit floor.
                    let rel = (back[j] - orig).abs();
                    assert!(
                        rel < tol,
                        "n_tau={n_tau} a={a} tau_j={}: round-trip err {rel} vs tol {tol}",
                        g.taus[j]
                    );
                }
            }
        }
    }

    #[test]
    fn static_limit_omega_zero_is_fit() {
        let (e_min, e_max) = (1.0, 12.0);
        let taus = tau_grid(12, e_min, e_max);
        let fit = fit_cos_tau_to_omega(&taus, &[0.0], e_min, e_max);
        assert!(fit.residual < 1e-4, "static residual {}", fit.residual);
        for &a in &off_sample_energies(e_min, e_max, 11) {
            let time: Vec<f64> = taus.iter().map(|&t| (-a * t).exp()).collect();
            let v = fit.apply(&time)[0];
            let rel = (v - 2.0 / a).abs() / (2.0 / a);
            assert!(rel < 10.0 * fit.residual + 1e-12, "a={a}: {rel}");
        }
    }

    #[test]
    fn node_optimization_improves_residual() {
        let (e_min, e_max) = (0.5, 25.0);
        let omegas = omega_grid(8, e_min, e_max);
        let cheap = FitOptions {
            optimize_passes: 0,
            n_samples: 96,
            ..FitOptions::default()
        };
        let geo = MinimaxGrid::build_with(10, &omegas, e_min, e_max, &cheap);
        let opt = MinimaxGrid::build_with(
            10,
            &omegas,
            e_min,
            e_max,
            &FitOptions {
                optimize_passes: 4,
                ..cheap
            },
        );
        assert!(
            opt.cos_tw.residual < 0.9 * geo.cos_tw.residual,
            "optimized {} vs geometric {}",
            opt.cos_tw.residual,
            geo.cos_tw.residual
        );
        assert!(opt.taus.windows(2).all(|p| p[1] > p[0]));
    }

    #[test]
    fn sin_kernel_at_zero_frequency_gives_zero_weights() {
        let taus = tau_grid(8, 1.0, 4.0);
        let fit = fit_sin_tau_to_omega(&taus, &[0.0, 2.0], 1.0, 4.0);
        assert!(fit.weights[0].iter().all(|&w| w == 0.0));
        assert!(fit.weights[1].iter().any(|&w| w != 0.0));
    }

    #[test]
    fn narrow_spectral_range_degrades_gracefully() {
        // e_min == e_max: a single transition energy; the fit is trivially
        // exact and must not produce NaNs from the degenerate log range.
        let taus = tau_grid(4, 3.0, 3.0);
        let fit = fit_cos_tau_to_omega(&taus, &[1.0, 5.0], 3.0, 3.0);
        assert!(fit.residual < 1e-10, "residual {}", fit.residual);
        assert!(fit.weights.iter().flatten().all(|w| w.is_finite()));
    }

    #[test]
    fn grid_helpers_are_ordered_and_positive() {
        let t = tau_grid(9, 0.3, 11.0);
        let w = omega_grid(7, 0.3, 11.0);
        assert!(t.windows(2).all(|p| p[1] > p[0] && p[0] > 0.0));
        assert!(w.windows(2).all(|p| p[1] > p[0] && p[0] > 0.0));
        assert_eq!(t.len(), 9);
        assert_eq!(w.len(), 7);
    }
}
