//! `bgw-num`: numerical foundations for the BerkeleyGW reproduction.
//!
//! Provides the scalar complex type every GW kernel is built on, accurate
//! summation for the large reduction sums in the self-energy (Eq. 2 of the
//! paper), Chebyshev-Jackson expansions for the pseudobands spectral
//! projectors (Sec. 5.3), frequency/energy grids (Secs. 5.2 and 5.6), and
//! small statistics utilities for the stochastic-error analysis and the
//! benchmark harness.

#![warn(missing_docs)]

pub mod chebyshev;
pub mod complex;
pub mod grid;
pub mod minimax;
pub mod pade;
pub mod rng;
pub mod simd;
pub mod stats;
pub mod sum;

pub use chebyshev::{ChebyshevJackson, SpectralMap};
pub use complex::{c64, Complex64};
pub use grid::UniformGrid;
pub use minimax::{MinimaxGrid, TransformFit};
pub use pade::{continue_to_real, PadeApproximant, PadeError};
pub use rng::{SplitMix64, Xoshiro256StarStar};
pub use stats::RunningStats;
pub use sum::{KahanC64, KahanF64};

/// Hartree atomic unit of energy expressed in electron-volts.
pub const HARTREE_EV: f64 = 27.211386245988;

/// Rydberg expressed in electron-volts.
pub const RYDBERG_EV: f64 = HARTREE_EV / 2.0;

/// Bohr radius expressed in angstroms.
pub const BOHR_ANGSTROM: f64 = 0.529177210903;
