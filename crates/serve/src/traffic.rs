//! Seeded synthetic traffic: a zipf-distributed request stream over a
//! small structure catalog, shared by the replay tests and the
//! `serve_smoke` bench so both drive the engine with the same shapes.
//!
//! The stream is a pure function of [`TrafficConfig`]: same config, same
//! byte-identical `Vec<GwRequest>`. Structure popularity follows
//! `p(i) ~ 1/(i+1)^s` over the catalog, so low-index structures repeat
//! heavily (cache hits, coalescing) while the tail stays cold (misses).

use crate::request::{GwRequest, RequestKind, StructureSpec};
use bgw_num::Xoshiro256StarStar;

/// Seeded traffic-stream parameters.
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// RNG seed; the stream is a pure function of this config.
    pub seed: u64,
    /// Requests to generate.
    pub n_requests: usize,
    /// Zipf exponent over the structure catalog (larger = more skew).
    pub zipf_exponent: f64,
    /// Structure catalog, most-popular first.
    pub structures: Vec<StructureSpec>,
    /// Probability a request is full-frequency instead of GPP.
    pub ff_fraction: f64,
    /// Probability a request carries elevated priority (preemption
    /// pressure in the replay battery).
    pub high_priority_fraction: f64,
}

impl TrafficConfig {
    /// A small default catalog: three structures, popularity-ordered.
    pub fn small(seed: u64, n_requests: usize) -> Self {
        Self {
            seed,
            n_requests,
            zipf_exponent: 1.1,
            structures: vec![
                StructureSpec::SiBulk {
                    m: 1,
                    ecut_centi_ry: 220,
                    n_bands: 24,
                },
                StructureSpec::SiDivacancy {
                    m: 1,
                    ecut_centi_ry: 200,
                    n_bands: 24,
                },
                StructureSpec::LihDefect {
                    m: 1,
                    ecut_centi_ry: 240,
                    n_bands: 20,
                },
            ],
            ff_fraction: 0.2,
            high_priority_fraction: 0.1,
        }
    }
}

/// Generates the deterministic zipf request stream for `cfg`.
pub fn zipf_stream(cfg: &TrafficConfig) -> Vec<GwRequest> {
    assert!(!cfg.structures.is_empty(), "empty structure catalog");
    let mut rng = Xoshiro256StarStar::seed_from_u64(cfg.seed);
    // Zipf CDF over the catalog.
    let weights: Vec<f64> = (0..cfg.structures.len())
        .map(|i| 1.0 / ((i + 1) as f64).powf(cfg.zipf_exponent))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }

    let mut out = Vec::with_capacity(cfg.n_requests);
    for _ in 0..cfg.n_requests {
        let u = rng.next_f64();
        let idx = cdf.iter().position(|&c| u < c).unwrap_or(cdf.len() - 1);
        let structure = cfg.structures[idx];
        // A few discrete Sigma shapes so identical-W requests still
        // exercise distinct request keys and (band, delta) rows.
        let bands_around_gap = 1 + (rng.next_u64() % 2) as usize;
        let delta_milli_ry = [40u32, 50][(rng.next_u64() % 2) as usize];
        let kind = if rng.next_f64() < cfg.ff_fraction {
            RequestKind::FullFreq {
                bands_around_gap,
                n_quad: 6,
                eta_milli_ry: 50,
                delta_milli_ry,
            }
        } else {
            RequestKind::GppDiag {
                bands_around_gap,
                delta_milli_ry,
            }
        };
        let priority = if rng.next_f64() < cfg.high_priority_fraction {
            3
        } else {
            0
        };
        out.push(GwRequest {
            structure,
            kind,
            priority,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_zipf_skewed() {
        let cfg = TrafficConfig::small(7, 400);
        let a = zipf_stream(&cfg);
        let b = zipf_stream(&cfg);
        assert_eq!(a, b, "same config must give the identical stream");
        assert_eq!(a.len(), 400);
        let head = cfg.structures[0];
        let n_head = a.iter().filter(|r| r.structure == head).count();
        let tail = cfg.structures[cfg.structures.len() - 1];
        let n_tail = a.iter().filter(|r| r.structure == tail).count();
        assert!(
            n_head > n_tail,
            "zipf skew: head {n_head} should beat tail {n_tail}"
        );
        assert!(a
            .iter()
            .any(|r| matches!(r.kind, RequestKind::FullFreq { .. })));
        assert!(a.iter().any(|r| r.priority > 0));
    }

    #[test]
    fn different_seed_changes_the_stream() {
        let a = zipf_stream(&TrafficConfig::small(1, 100));
        let b = zipf_stream(&TrafficConfig::small(2, 100));
        assert_ne!(a, b);
    }
}
