//! Plain-text table formatting for the benchmark binaries.

/// A simple fixed-width table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience row from displayable items.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for i in 0..ncol {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }
}

/// Formats seconds with sensible precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.1}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.4}")
    }
}

/// Formats a FLOP/s value as PFLOP/s.
pub fn fmt_pflops(f: f64) -> String {
    format!("{:.2}", f / 1e15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["a", "long_header", "c"]);
        t.row(&["1".into(), "2".into(), "3".into()]);
        t.row(&["10".into(), "2000000".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long_header"));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(123.456), "123.5");
        assert_eq!(fmt_secs(1.234), "1.23");
        assert_eq!(fmt_secs(0.01234), "0.0123");
        assert_eq!(fmt_pflops(1.06936e18), "1069.36");
    }
}
