//! CHI_SUM: the RPA polarizability (paper Eq. 4) with the NV-Block
//! algorithm.
//!
//! `chi_GG'(omega) = 2 sum_vc M_vc^{G*} Delta_vc(omega) M_vc^{G'}`.
//!
//! The naive implementation stores all `N_v N_c` matrix-element rows at
//! once — the O(N^3) memory bottleneck of Sec. 5.2. The NV-Block algorithm
//! processes the valence bands in blocks: each block's `M` panel is built
//! (MTXEL), contracted into `chi` via ZGEMM (CHI_SUM), and discarded. The
//! result is exactly independent of the block size, which the tests check.
//!
//! Frequencies reuse the same `M` panels: the zero-frequency pass (CHI-0)
//! and the finite-frequency passes (CHI-Freq) differ only in the energy
//! denominator `Delta_vc(omega)`.

use crate::epsilon::is_static_freq;
use crate::mtxel::Mtxel;
use bgw_linalg::{zgemm, CMatrix, GemmBackend, Op};
use bgw_num::{c64, Complex64};
use bgw_pwdft::Wavefunctions;
use std::time::Instant;

/// Configuration for the polarizability build.
#[derive(Clone, Copy, Debug)]
pub struct ChiConfig {
    /// Valence bands per NV block.
    pub nv_block: usize,
    /// Lorentzian broadening (Ry) for finite real frequencies.
    pub eta_ry: f64,
    /// GEMM backend for the CHI_SUM contraction.
    pub backend: GemmBackend,
    /// Momentum magnitude (bohr^-1) for the k.p head of the `G = 0`
    /// matrix elements; use the `q0` of the Coulomb interaction so that
    /// the screening head is consistent. `0` disables the correction.
    pub q0: f64,
}

impl Default for ChiConfig {
    fn default() -> Self {
        Self {
            nv_block: 4,
            eta_ry: 0.05,
            backend: GemmBackend::Parallel,
            q0: 0.2,
        }
    }
}

/// Timing/work breakdown of one polarizability build, keyed to the kernel
/// names of paper Fig. 3.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChiTimings {
    /// Seconds in the MTXEL kernel (FFT matrix elements).
    pub t_mtxel: f64,
    /// Seconds in the zero-frequency contraction (CHI-0).
    pub t_chi0: f64,
    /// Seconds in the finite-frequency contractions (CHI-Freq).
    pub t_chifreq: f64,
    /// ZGEMM FLOPs executed.
    pub flops: u64,
}

/// The energy factor `Delta_vc(omega)` of Eq. 4 (time-ordered RPA with
/// broadening `eta`): `1/(E_v - E_c - w - i eta) + 1/(E_v - E_c + w + i eta)`.
pub fn delta_vc(e_v: f64, e_c: f64, omega: f64, eta: f64) -> Complex64 {
    let de = e_v - e_c; // negative
    let a = c64(de - omega, -eta).inv();
    let b = c64(de + omega, eta).inv();
    a + b
}

/// The energy factor on the *imaginary* frequency axis, `omega -> i u`:
/// `1/(de - iu) + 1/(de + iu) = 2 de / (de^2 + u^2)` — purely real, no
/// broadening needed (there are no poles on the imaginary axis). This is
/// `-cos_kernel(a, u)` of `bgw_num::minimax` with `a = -de`, which is what
/// ties the dense oracle to the space-time cosine transform.
pub fn delta_vc_imag(e_v: f64, e_c: f64, u: f64) -> f64 {
    let de = e_v - e_c; // negative
    2.0 * de / (de * de + u * u)
}

/// Which frequency axis the energy denominators live on.
#[derive(Clone, Copy, Debug)]
enum FreqAxis {
    /// Real frequencies with `eta` broadening (zero at the static point).
    Real,
    /// Imaginary frequencies `i u`: real denominators, no broadening.
    Imag,
}

/// Polarizability engine holding cached conduction-band amplitudes.
pub struct ChiEngine<'a> {
    wf: &'a Wavefunctions,
    mtxel: &'a Mtxel,
    /// Real-space amplitudes of all conduction bands (index by `c`).
    cond_real: Vec<Vec<Complex64>>,
    cfg: ChiConfig,
}

impl<'a> ChiEngine<'a> {
    /// Builds the engine, caching all conduction-band FFTs once.
    pub fn new(wf: &'a Wavefunctions, mtxel: &'a Mtxel, cfg: ChiConfig) -> Self {
        let nv = wf.n_valence;
        let nc = wf.n_conduction();
        assert!(nc > 0, "no conduction bands");
        let cond_bands: Vec<usize> = (0..nc).map(|c| nv + c).collect();
        let cond_real = mtxel.to_real_space_many(wf, &cond_bands);
        Self {
            wf,
            mtxel,
            cond_real,
            cfg,
        }
    }

    /// Number of output G-vectors.
    pub fn n_g(&self) -> usize {
        self.mtxel.n_out()
    }

    /// Builds the `M` panel for valence bands `v0..v1`: row `(v - v0) * N_c
    /// + c` holds `M_vc^G` over the output sphere.
    pub fn m_panel(&self, v0: usize, v1: usize) -> CMatrix {
        let nc = self.wf.n_conduction();
        let ng = self.n_g();
        let mut panel = CMatrix::zeros((v1 - v0) * nc, ng);
        let bands: Vec<usize> = (v0..v1).collect();
        let val_real = self.mtxel.to_real_space_many(self.wf, &bands);
        for v in v0..v1 {
            let psi_v = &val_real[v - v0];
            for c in 0..nc {
                let mut row = self.mtxel.pair_from_real(psi_v, &self.cond_real[c]);
                row[0] = self
                    .mtxel
                    .head_kp(self.wf, v, self.wf.n_valence + c, self.cfg.q0);
                panel.row_mut((v - v0) * nc + c).copy_from_slice(&row);
            }
        }
        panel
    }

    /// Computes `chi(omega_i)` for every requested frequency (Ry), using
    /// NV blocks over a subset of valence bands (all bands when
    /// `valence_subset` is `None`). The zero-frequency entry uses `eta = 0`
    /// so the static polarizability is exactly Hermitian.
    pub fn chi_freqs_subset(
        &self,
        omegas: &[f64],
        valence_subset: Option<&[usize]>,
        timings: &mut ChiTimings,
    ) -> Vec<CMatrix> {
        self.chi_freqs_core(omegas, FreqAxis::Real, valence_subset, None, timings)
    }

    /// Dense polarizability at *imaginary* frequencies `i u_k` over all
    /// valence bands: the oracle the space-time path
    /// (`core::spacetime`) is cross-validated against, and the input for
    /// an imaginary-axis `EpsilonInverse` feeding `sigma::imagaxis`. The
    /// denominators are exactly real (`delta_vc_imag`), so no broadening
    /// or eta trickery is involved.
    pub fn chi_imag_freqs(&self, us: &[f64], timings: &mut ChiTimings) -> Vec<CMatrix> {
        self.chi_freqs_core(us, FreqAxis::Imag, None, None, timings)
    }

    /// Shared NV-block loop behind every dense chi build: real or
    /// imaginary axis, full plane-wave or subspace-projected output.
    fn chi_freqs_core(
        &self,
        freqs: &[f64],
        axis: FreqAxis,
        valence_subset: Option<&[usize]>,
        proj: Option<(&CMatrix, &[f64])>,
        timings: &mut ChiTimings,
    ) -> Vec<CMatrix> {
        let ng = self.n_g();
        let nc = self.wf.n_conduction();
        let n_out = proj.map_or(ng, |(basis, _)| basis.ncols());
        let all: Vec<usize>;
        let vs: &[usize] = match valence_subset {
            Some(v) => v,
            None => {
                all = (0..self.wf.n_valence).collect();
                &all
            }
        };
        let mut chis = vec![CMatrix::zeros(n_out, n_out); freqs.len()];
        // NV blocks over the subset.
        for chunk in vs.chunks(self.cfg.nv_block.max(1)) {
            let t0 = Instant::now();
            // Build this block's M panel (rows: (idx within chunk, c)),
            // transforming the whole block of valence bands in one batch.
            let mut panel = CMatrix::zeros(chunk.len() * nc, ng);
            let val_real = self.mtxel.to_real_space_many(self.wf, chunk);
            for (i, &v) in chunk.iter().enumerate() {
                let psi_v = &val_real[i];
                for c in 0..nc {
                    let mut row = self.mtxel.pair_from_real(psi_v, &self.cond_real[c]);
                    row[0] = self
                        .mtxel
                        .head_kp(self.wf, v, self.wf.n_valence + c, self.cfg.q0);
                    if let Some((_, vsqrt)) = proj {
                        // Symmetrize before projecting (Eq. 6 subspace).
                        for (g, x) in row.iter_mut().enumerate() {
                            *x = x.scale(vsqrt[g]);
                        }
                    }
                    panel.row_mut(i * nc + c).copy_from_slice(&row);
                }
            }
            timings.t_mtxel += t0.elapsed().as_secs_f64();
            // Projection (the Transf-like step folded into CHI-Freq).
            let panel = match proj {
                Some((basis, _)) => {
                    let t1 = Instant::now();
                    let projected =
                        bgw_linalg::matmul(&panel, Op::None, basis, Op::None, self.cfg.backend);
                    timings.flops += bgw_linalg::zgemm_flops(panel.nrows(), ng, n_out);
                    timings.t_chifreq += t1.elapsed().as_secs_f64();
                    projected
                }
                None => panel,
            };

            // One scratch buffer per NV block, reused by every frequency
            // (the per-frequency `panel.clone()` used to dominate the
            // CHI-Freq allocation traffic).
            let mut scaled = CMatrix::zeros(panel.nrows(), n_out);
            let mut deltas = vec![Complex64::ZERO; panel.nrows()];
            for (wi, &freq) in freqs.iter().enumerate() {
                let t1 = Instant::now();
                for (i, &v) in chunk.iter().enumerate() {
                    let e_v = self.wf.energies[v];
                    for c in 0..nc {
                        let e_c = self.wf.energies[self.wf.n_valence + c];
                        deltas[i * nc + c] = match axis {
                            FreqAxis::Real => {
                                let eta = if is_static_freq(freq) {
                                    0.0
                                } else {
                                    self.cfg.eta_ry
                                };
                                delta_vc(e_v, e_c, freq, eta)
                            }
                            FreqAxis::Imag => c64(delta_vc_imag(e_v, e_c, freq), 0.0),
                        };
                    }
                }
                // scaled = Delta * M: fused copy + row scaling on the pool.
                let src = panel.as_slice();
                bgw_par::parallel_rows(scaled.as_mut_slice(), n_out, |r, row| {
                    let d = deltas[r];
                    for (z, &p) in row.iter_mut().zip(&src[r * n_out..(r + 1) * n_out]) {
                        *z = p * d;
                    }
                });
                // chi += 2 M^dagger scaled
                zgemm(
                    c64(2.0, 0.0),
                    &panel,
                    Op::Adj,
                    &scaled,
                    Op::None,
                    Complex64::ONE,
                    &mut chis[wi],
                    self.cfg.backend,
                );
                timings.flops += bgw_linalg::zgemm_flops(n_out, panel.nrows(), n_out);
                let dt = t1.elapsed().as_secs_f64();
                if matches!(axis, FreqAxis::Real) && is_static_freq(freq) {
                    timings.t_chi0 += dt;
                } else {
                    timings.t_chifreq += dt;
                }
            }
        }
        chis
    }

    /// Finite-frequency polarizability in a subspace basis (paper Eq. 6):
    /// `chi_BB'(omega) = 2 sum_vc M_vc^{B*} Delta_vc(omega) M_vc^{B'}`
    /// with `M^B = sum_G M^G C_s^{GB}`. The `basis` columns must be the
    /// subspace vectors in the *symmetrized* representation, so the `M`
    /// rows are symmetrized with `vsqrt` before projection; the returned
    /// matrices are the symmetrized subspace `chi~_BB'`.
    ///
    /// This is the CHI-Freq kernel: the full plane-wave basis is only ever
    /// touched by the projection GEMM, so each frequency costs
    /// `O(N_v N_c N_Eig^2)` instead of `O(N_v N_c N_G^2)`.
    pub fn chi_freqs_subspace(
        &self,
        omegas: &[f64],
        basis: &CMatrix,
        vsqrt: &[f64],
        timings: &mut ChiTimings,
    ) -> Vec<CMatrix> {
        assert_eq!(basis.nrows(), self.n_g(), "basis rows must match N_G");
        assert_eq!(vsqrt.len(), self.n_g());
        self.chi_freqs_core(omegas, FreqAxis::Real, None, Some((basis, vsqrt)), timings)
    }

    /// Subspace-projected polarizability at imaginary frequencies: the
    /// `chi_freqs_subspace` companion of [`ChiEngine::chi_imag_freqs`],
    /// used to cross-validate the space-time chi in the subspace basis.
    pub fn chi_imag_freqs_subspace(
        &self,
        us: &[f64],
        basis: &CMatrix,
        vsqrt: &[f64],
        timings: &mut ChiTimings,
    ) -> Vec<CMatrix> {
        assert_eq!(basis.nrows(), self.n_g(), "basis rows must match N_G");
        assert_eq!(vsqrt.len(), self.n_g());
        self.chi_freqs_core(us, FreqAxis::Imag, None, Some((basis, vsqrt)), timings)
    }

    /// The NV-block boundaries `(v0, v1)` the chi builds iterate, in
    /// order: contiguous `cfg.nv_block`-sized ranges covering the valence
    /// bands (the last block may be short). These are the natural task
    /// boundaries of the DAG-scheduled workflow — one
    /// [`chi_block_freqs`](Self::chi_block_freqs) call per entry.
    pub fn nv_blocks(&self) -> Vec<(usize, usize)> {
        let nvb = self.cfg.nv_block.max(1);
        (0..self.wf.n_valence)
            .step_by(nvb)
            .map(|v0| (v0, (v0 + nvb).min(self.wf.n_valence)))
            .collect()
    }

    /// One NV block's additive contribution to `chi(omega_i)` for valence
    /// bands `v0..v1`: `2 M_b^dagger Delta_b(omega_i) M_b`, one matrix per
    /// requested frequency. Summing the contributions of a disjoint block
    /// cover of the valence bands reproduces
    /// [`chi_freqs`](Self::chi_freqs) up to summation order (the NV-Block
    /// algorithm is exactly block-decomposable).
    ///
    /// This is the per-(block, frequency) task body of the DAG-scheduled
    /// workflow: each block builds its `M` panel once and reuses it for
    /// every frequency, exactly like the barrier-ordered loop.
    pub fn chi_block_freqs(&self, v0: usize, v1: usize, omegas: &[f64]) -> Vec<CMatrix> {
        assert!(v0 <= v1 && v1 <= self.wf.n_valence, "block out of range");
        let ng = self.n_g();
        let nc = self.wf.n_conduction();
        let panel = self.m_panel(v0, v1);
        let mut scaled = CMatrix::zeros(panel.nrows(), ng);
        let mut deltas = vec![Complex64::ZERO; panel.nrows()];
        let mut out = Vec::with_capacity(omegas.len());
        for &omega in omegas {
            let eta = if is_static_freq(omega) {
                0.0
            } else {
                self.cfg.eta_ry
            };
            for (i, v) in (v0..v1).enumerate() {
                for c in 0..nc {
                    deltas[i * nc + c] = delta_vc(
                        self.wf.energies[v],
                        self.wf.energies[self.wf.n_valence + c],
                        omega,
                        eta,
                    );
                }
            }
            let src = panel.as_slice();
            bgw_par::parallel_rows(scaled.as_mut_slice(), ng, |r, row| {
                let d = deltas[r];
                for (z, &p) in row.iter_mut().zip(&src[r * ng..(r + 1) * ng]) {
                    *z = p * d;
                }
            });
            let mut chi_b = CMatrix::zeros(ng, ng);
            zgemm(
                c64(2.0, 0.0),
                &panel,
                Op::Adj,
                &scaled,
                Op::None,
                Complex64::ZERO,
                &mut chi_b,
                self.cfg.backend,
            );
            out.push(chi_b);
        }
        out
    }

    /// Static polarizability `chi(0)`.
    pub fn chi_static(&self) -> CMatrix {
        let mut t = ChiTimings::default();
        self.chi_freqs_subset(&[0.0], None, &mut t).pop().unwrap()
    }

    /// Full-frequency set over all valence bands.
    pub fn chi_freqs(&self, omegas: &[f64]) -> (Vec<CMatrix>, ChiTimings) {
        let mut t = ChiTimings::default();
        let chis = self.chi_freqs_subset(omegas, None, &mut t);
        (chis, t)
    }
}

/// Two-level distributed full-frequency polarizability: the ranks of
/// `comm` form a `frequency-pools x band-ranks` grid — the paper's
/// "multi-layer parallelizations (including the additional level over
/// frequencies)" for GW-FF (Sec. 7.2). Each pool owns a subset of the
/// frequencies; within a pool the valence bands are split round-robin and
/// pool-allreduced. Every rank returns the full set of matrices
/// (all-gathered across pools at the end).
///
/// `n_pools` must divide into `comm.size()` sensibly; it is clamped to
/// `[1, min(n_freq, size)]`.
pub fn chi_distributed_2d(
    comm: &bgw_comm::Comm,
    wf: &Wavefunctions,
    mtxel: &Mtxel,
    cfg: ChiConfig,
    omegas: &[f64],
    n_pools: usize,
) -> Vec<CMatrix> {
    let n_pools = n_pools.clamp(1, omegas.len().min(comm.size()));
    let pool_id = comm.rank() % n_pools;
    let pool = comm.split(pool_id as u64, comm.rank() as u64);
    // frequencies owned by this pool
    let my_freqs: Vec<(usize, f64)> = omegas
        .iter()
        .cloned()
        .enumerate()
        .filter(|(i, _)| i % n_pools == pool_id)
        .collect();
    let freq_vals: Vec<f64> = my_freqs.iter().map(|&(_, w)| w).collect();
    // band split inside the pool
    let engine = ChiEngine::new(wf, mtxel, cfg);
    let mine: Vec<usize> = (0..wf.n_valence)
        .filter(|v| v % pool.size() == pool.rank())
        .collect();
    let mut t = ChiTimings::default();
    let partials = engine.chi_freqs_subset(&freq_vals, Some(&mine), &mut t);
    let ng = engine.n_g();
    let pool_results: Vec<(u64, Vec<Complex64>)> = my_freqs
        .iter()
        .zip(partials)
        .map(|(&(i, _), chi)| {
            let reduced = pool.allreduce_sum_c64(chi.as_slice().to_vec());
            (i as u64, reduced)
        })
        .collect();
    // exchange across pools via the world communicator
    let gathered = comm.allgather(pool_results);
    let mut out = vec![CMatrix::zeros(ng, ng); omegas.len()];
    for rank_items in gathered {
        for (i, flat) in rank_items {
            out[i as usize] = CMatrix::from_vec(ng, ng, flat);
        }
    }
    out
}

/// Distributed polarizability: each rank of `comm` computes the partial sum
/// over its (round-robin) share of the valence bands and the results are
/// summed with an allreduce — the parallel decomposition of the Epsilon
/// module.
pub fn chi_distributed(
    comm: &bgw_comm::Comm,
    wf: &Wavefunctions,
    mtxel: &Mtxel,
    cfg: ChiConfig,
    omegas: &[f64],
) -> Vec<CMatrix> {
    try_chi_distributed(comm, wf, mtxel, cfg, omegas).unwrap_or_else(|e| std::panic::panic_any(e))
}

/// Fallible [`chi_distributed`]: communicator faults (peer crashes,
/// exhausted retries, corruption) surface as `Err` instead of panicking,
/// so a resilient driver can shrink the communicator and retry.
pub fn try_chi_distributed(
    comm: &bgw_comm::Comm,
    wf: &Wavefunctions,
    mtxel: &Mtxel,
    cfg: ChiConfig,
    omegas: &[f64],
) -> Result<Vec<CMatrix>, bgw_comm::CommError> {
    let engine = ChiEngine::new(wf, mtxel, cfg);
    let mine: Vec<usize> = (0..wf.n_valence)
        .filter(|v| v % comm.size() == comm.rank())
        .collect();
    let mut t = ChiTimings::default();
    let partials = engine.chi_freqs_subset(omegas, Some(&mine), &mut t);
    partials
        .into_iter()
        .map(|chi| {
            let ng = chi.nrows();
            let reduced = comm.try_allreduce_sum_c64(chi.as_slice().to_vec())?;
            Ok(CMatrix::from_vec(ng, ng, reduced))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgw_pwdft::{solve_bands, Crystal, GSphere, Species};

    fn setup() -> (GSphere, GSphere, Wavefunctions) {
        let c = Crystal::diamond(Species::Si, bgw_pwdft::pseudo::SI_A0);
        let wfn = GSphere::new(&c.lattice, 2.2);
        let eps = GSphere::new(&c.lattice, 1.0);
        let wf = solve_bands(&c, &wfn, 24);
        (wfn, eps, wf)
    }

    #[test]
    fn delta_static_is_negative_real() {
        let d = delta_vc(-0.5, 0.3, 0.0, 0.0);
        assert!(d.im.abs() < 1e-15);
        assert!((d.re - 2.0 / (-0.8)).abs() < 1e-12);
    }

    #[test]
    fn negative_zero_selects_the_static_eta_path() {
        let (wfn, eps, wf) = setup();
        let mtxel = Mtxel::new(&wfn, &eps);
        let engine = ChiEngine::new(&wf, &mtxel, ChiConfig::default());
        // -0.0 is the static point: identical matrix, eta = 0 branch.
        let (chis, _) = engine.chi_freqs(&[0.0, -0.0]);
        assert_eq!(chis[0].max_abs_diff(&chis[1]), 0.0);
        // A tiny finite offset takes the broadened-eta branch, so the
        // result differs from CHI-0 (eta enters the denominator).
        let (chi_off, _) = engine.chi_freqs(&[1e-12]);
        assert!(chi_off[0].max_abs_diff(&chis[0]) > 0.0);
    }

    #[test]
    fn chi0_is_hermitian_negative_definite() {
        let (wfn, eps, wf) = setup();
        let mtxel = Mtxel::new(&wfn, &eps);
        let engine = ChiEngine::new(&wf, &mtxel, ChiConfig::default());
        let chi = engine.chi_static();
        assert!(chi.is_hermitian(1e-9), "err {}", chi.hermiticity_error());
        let eig = bgw_linalg::eigvalsh(&chi);
        assert!(
            eig.iter().all(|&w| w < 1e-9),
            "chi(0) must be negative semi-definite; max eig {}",
            eig.last().unwrap()
        );
        // head (G=0,G=0) strictly negative: the system is polarizable
        assert!(chi[(0, 0)].re < -1e-6);
    }

    #[test]
    fn block_contributions_sum_to_full_chi() {
        // The DAG task decomposition: per-block contributions summed in
        // block order must reproduce the barrier-ordered build to
        // summation-reassociation accuracy at every frequency.
        let (wfn, eps, wf) = setup();
        let mtxel = Mtxel::new(&wfn, &eps);
        let engine = ChiEngine::new(&wf, &mtxel, ChiConfig::default());
        let omegas = [0.0, 0.35];
        let (full, _) = engine.chi_freqs(&omegas);
        let blocks = engine.nv_blocks();
        assert!(blocks.len() > 1, "test system must span several blocks");
        assert_eq!(blocks.first(), Some(&(0, ChiConfig::default().nv_block)));
        assert_eq!(blocks.last().unwrap().1, wf.n_valence);
        let ng = engine.n_g();
        let mut summed = vec![CMatrix::zeros(ng, ng); omegas.len()];
        for &(v0, v1) in &blocks {
            for (wi, contrib) in engine.chi_block_freqs(v0, v1, &omegas).iter().enumerate() {
                summed[wi].axpy(Complex64::ONE, contrib);
            }
        }
        for (wi, chi) in full.iter().enumerate() {
            let d = summed[wi].max_abs_diff(chi);
            assert!(d < 1e-12, "freq {wi}: block sum drifted by {d}");
        }
    }

    #[test]
    fn nv_block_size_does_not_change_result() {
        let (wfn, eps, wf) = setup();
        let mtxel = Mtxel::new(&wfn, &eps);
        let reference = ChiEngine::new(
            &wf,
            &mtxel,
            ChiConfig {
                nv_block: 1,
                ..Default::default()
            },
        )
        .chi_static();
        for nv_block in [2usize, 3, 7, 100] {
            let chi = ChiEngine::new(
                &wf,
                &mtxel,
                ChiConfig {
                    nv_block,
                    ..Default::default()
                },
            )
            .chi_static();
            assert!(
                chi.max_abs_diff(&reference) < 1e-10,
                "nv_block = {nv_block}: {}",
                chi.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn finite_frequency_weakens_screening() {
        // |chi(0)| >= |chi(w)| head as w grows beyond the gap.
        let (wfn, eps, wf) = setup();
        let mtxel = Mtxel::new(&wfn, &eps);
        let engine = ChiEngine::new(&wf, &mtxel, ChiConfig::default());
        let (chis, timings) = engine.chi_freqs(&[0.0, 2.0, 6.0]);
        let h0 = chis[0][(0, 0)].re.abs();
        let h2 = chis[1][(0, 0)].abs();
        let h6 = chis[2][(0, 0)].abs();
        assert!(h0 > h2 * 0.9, "h0 {h0} vs h2 {h2}");
        assert!(h2 > h6, "h2 {h2} vs h6 {h6}");
        assert!(timings.t_chi0 > 0.0 && timings.t_chifreq > 0.0);
        assert!(timings.flops > 0);
    }

    #[test]
    fn subspace_chi_matches_projected_full_chi() {
        // chi~_BB'(w) from Eq. 6 must equal C^dagger (v^1/2 chi(w) v^1/2) C
        // computed the long way, exactly, for any basis.
        let (wfn, eps, wf) = setup();
        let mtxel = Mtxel::new(&wfn, &eps);
        let coulomb = crate::coulomb::Coulomb::bulk_for_cell(1080.0);
        let cfg = ChiConfig {
            q0: coulomb.q0,
            ..ChiConfig::default()
        };
        let engine = ChiEngine::new(&wf, &mtxel, cfg);
        let vsqrt = coulomb.sqrt_on_sphere(&eps);
        let freqs = [0.0, 1.2];
        let (chis, _) = engine.chi_freqs(&freqs);
        // subspace from chi(0)
        let sub = crate::subspace::Subspace::from_chi0(&chis[0], &vsqrt, eps.len() / 2);
        let mut tm = ChiTimings::default();
        let fast = engine.chi_freqs_subspace(&freqs, &sub.basis, &vsqrt, &mut tm);
        for (wi, chi_w) in chis.iter().enumerate() {
            let sym = crate::subspace::symmetrize(chi_w, &vsqrt);
            let slow = sub.project(&sym);
            assert!(
                fast[wi].max_abs_diff(&slow) < 1e-9,
                "freq {wi}: {}",
                fast[wi].max_abs_diff(&slow)
            );
        }
        assert!(tm.t_chifreq > 0.0 && tm.flops > 0);
    }

    #[test]
    fn two_level_distribution_matches_serial() {
        let (wfn, eps, wf) = setup();
        let mtxel = Mtxel::new(&wfn, &eps);
        let cfg = ChiConfig::default();
        let freqs = [0.0, 0.8, 1.6, 2.4];
        let (serial, _) = ChiEngine::new(&wf, &mtxel, cfg).chi_freqs(&freqs);
        for (world, pools) in [(4usize, 2usize), (6, 3), (4, 1), (5, 4)] {
            let (results, _) = bgw_comm::run_world(world, |comm| {
                let mtxel = Mtxel::new(&wfn, &eps);
                chi_distributed_2d(comm, &wf, &mtxel, cfg, &freqs, pools)
                    .into_iter()
                    .map(|m| m.as_slice().to_vec())
                    .collect::<Vec<_>>()
            });
            for rank_out in results {
                for (wi, flat) in rank_out.into_iter().enumerate() {
                    let chi = CMatrix::from_vec(serial[wi].nrows(), serial[wi].ncols(), flat);
                    assert!(
                        chi.max_abs_diff(&serial[wi]) < 1e-10,
                        "world {world}, pools {pools}, freq {wi}: {}",
                        chi.max_abs_diff(&serial[wi])
                    );
                }
            }
        }
    }

    #[test]
    fn distributed_matches_serial() {
        let (wfn, eps, wf) = setup();
        let mtxel = Mtxel::new(&wfn, &eps);
        let serial = ChiEngine::new(&wf, &mtxel, ChiConfig::default()).chi_static();
        let (results, _) = bgw_comm::run_world(3, |comm| {
            let mtxel = Mtxel::new(&wfn, &eps);
            let chis = chi_distributed(comm, &wf, &mtxel, ChiConfig::default(), &[0.0]);
            chis[0].as_slice().to_vec()
        });
        for r in results {
            let chi = CMatrix::from_vec(serial.nrows(), serial.ncols(), r);
            assert!(chi.max_abs_diff(&serial) < 1e-10);
        }
    }
}
