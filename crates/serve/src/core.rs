//! The synchronous serving engine.
//!
//! [`ServeCore`] owns the bounded queue, the two-level cache (in-memory
//! LRU of decoded [`Screening`]s over the on-disk [`ArtifactStore`]), and
//! the batch evaluator. It is deliberately single-threaded and
//! externally driven — [`ServeCore::step_with`] processes exactly one
//! coalesced batch per call, with a caller-supplied `peek` hook deciding
//! preemption — so the traffic-replay test battery can assert the exact
//! event sequence a seeded request stream produces. The threaded daemon
//! in [`server`](crate::server) wraps this engine verbatim; nothing about
//! scheduling lives only in the threaded path.
//!
//! A step:
//! 1. pick the highest-priority queued request (ties: arrival order) and
//!    pull every queued request sharing its W artifact key — the batch;
//! 2. acquire the screening: memory LRU → disk artifact (a cache hit *is*
//!    a restart through `screening_from_checkpoint`) → full recompute +
//!    atomic store;
//! 3. evaluate each distinct `(band, delta)` Sigma diagonal exactly once
//!    over the union context (resuming a preemption partial if one is on
//!    record), yielding between band slices when `peek` reports a higher
//!    waiting priority;
//! 4. assemble and retire per-request responses, consulting the seeded
//!    fault plan at each request's evaluation op: crashes re-enqueue only
//!    that request, transients retry with bounded backoff, corruption
//!    poisons the *stored* artifact (the checksummed reader must catch it
//!    later), delays stall.

use crate::key::ArtifactKey;
use crate::request::{GwRequest, RequestKind};
use crate::store::ArtifactStore;
use bgw_comm::{FaultKind, FaultPlan};
use bgw_core::epsilon::EpsilonError;
use bgw_core::restart::{band_slice, GwStage};
use bgw_core::service::{
    band_subset, build_screening, ff_eval, screening_from_checkpoint, screening_to_checkpoint,
    sigma_context, Screening,
};
use bgw_core::sigma::diag::{gpp_sigma_diag, SigmaDiagResult};
use bgw_core::solve_qp_diag;
use bgw_io::Checkpoint;
use bgw_num::Complex64;
use bgw_perf::counters;
use bgw_trace::RunReport;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Identifier assigned to each accepted request.
pub type RequestId = u64;

/// Serving-engine configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Artifact store directory.
    pub store_dir: PathBuf,
    /// Bounded queue capacity; excess enqueues fail with
    /// [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Byte budget for the in-memory cache of decoded screenings. Each
    /// entry is charged its decoded footprint
    /// ([`Screening::approx_bytes`], FF blocks included) — cost-aware
    /// eviction, not an entry count: a full-frequency screening (~5x a
    /// GPP one here) displaces proportionally more of the cache. The
    /// most recent entry is always kept, even over budget; `0` disables
    /// the cache entirely.
    pub mem_budget_bytes: u64,
    /// Byte budget for the on-disk artifact store; when the store
    /// exceeds it, a GC pass after each batch reclaims records
    /// oldest-access-first (never one pinned by an in-flight batch).
    /// `0` disables the size cap (orphaned partials are still cleaned
    /// up on request retirement).
    pub store_budget_bytes: u64,
    /// Dispatcher shards the threaded [`Server`](crate::server::Server)
    /// spawns; requests route to shard `w_key % n_shards`, so distinct
    /// screenings build concurrently while coalescing stays per-shard
    /// by construction. A synchronous `ServeCore` ignores this field.
    pub n_shards: usize,
    /// Seeded fault schedule, consulted once per request evaluation op
    /// (rank 0, op = the engine's monotonic evaluation counter).
    pub fault_plan: FaultPlan,
    /// Crash re-enqueue budget per request; beyond it the request retires
    /// with [`ServeError::Faulted`].
    pub max_request_retries: usize,
    /// Attach a per-request `bgw-trace` report delta to each response.
    pub collect_reports: bool,
    /// Test hook: panic the engine at this evaluation op — the
    /// dispatcher-death battery uses it to prove no ticket ever blocks
    /// forever on a dead shard.
    pub panic_at_op: Option<u64>,
}

impl ServeConfig {
    /// Defaults: queue 64, 256 MiB memory cache, no disk cap, 1 shard,
    /// no faults, 2 crash retries.
    pub fn new(store_dir: impl Into<PathBuf>) -> Self {
        Self {
            store_dir: store_dir.into(),
            queue_capacity: 64,
            mem_budget_bytes: 256 << 20,
            store_budget_bytes: 0,
            n_shards: 1,
            fault_plan: FaultPlan::none(),
            max_request_retries: 2,
            collect_reports: false,
            panic_at_op: None,
        }
    }
}

/// Typed request failure.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The bounded queue is full; the request was not accepted.
    QueueFull,
    /// The request's band window cannot straddle the gap: the structure
    /// solves to `n_valence` occupied bands out of `n_bands` kept, so the
    /// window would miss HOMO and/or LUMO (rejected at enqueue — the
    /// band solver itself requires at least one empty band).
    InvalidBandWindow {
        /// Occupied valence bands of the requested structure.
        n_valence: usize,
        /// Bands the solver would keep (request's `n_bands`, clamped to
        /// the wavefunction basis size).
        n_bands: usize,
    },
    /// The request was cancelled before completion.
    Cancelled,
    /// Injected crashes exhausted the re-enqueue budget.
    Faulted {
        /// Evaluation attempts made.
        attempts: usize,
    },
    /// An injected transient fault outlived the bounded-backoff budget.
    RetriesExhausted {
        /// Retries attempted.
        attempts: u32,
    },
    /// The dielectric inversion failed for this structure.
    Epsilon(EpsilonError),
    /// The owning dispatcher shard died (panicked) before this request
    /// retired; every outstanding ticket on the shard fails with this
    /// instead of blocking forever.
    DispatcherDown,
    /// An engine invariant broke mid-evaluation (a logic regression —
    /// e.g. a band missing from the batch union). The request fails
    /// typed instead of panicking the shard.
    Internal {
        /// Which invariant broke.
        what: String,
    },
}

/// A typed internal-invariant failure (never expected in a correct
/// build; degrades a logic regression to a failed request instead of a
/// dead shard).
fn internal(what: impl Into<String>) -> ServeError {
    ServeError::Internal { what: what.into() }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "queue full"),
            ServeError::InvalidBandWindow { n_valence, n_bands } => write!(
                f,
                "band window cannot straddle the gap: {n_valence} valence bands, \
                 {n_bands} bands kept"
            ),
            ServeError::Cancelled => write!(f, "cancelled"),
            ServeError::Faulted { attempts } => {
                write!(f, "faulted after {attempts} attempts")
            }
            ServeError::RetriesExhausted { attempts } => {
                write!(f, "transient fault persisted through {attempts} retries")
            }
            ServeError::Epsilon(e) => write!(f, "epsilon stage: {e}"),
            ServeError::DispatcherDown => write!(f, "dispatcher shard died"),
            ServeError::Internal { what } => {
                write!(f, "internal invariant broke: {what}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// How the batch's screening was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheStatus {
    /// Computed from scratch (and stored).
    Miss,
    /// Served from the in-memory LRU.
    MemHit,
    /// Restored from the on-disk artifact store (a restart).
    DiskHit,
}

/// Per-request response telemetry.
#[derive(Clone, Debug)]
pub struct ServeTelemetry {
    /// How the screening was obtained for this request's batch.
    pub cache: CacheStatus,
    /// Requests in the coalesced batch (1 = alone).
    pub batch_size: usize,
    /// Evaluation attempts (1 + crash re-enqueues).
    pub attempts: usize,
    /// Seconds between enqueue and the start of the completing batch.
    pub queue_seconds: f64,
    /// Seconds of batch compute (shared across the batch's members).
    pub compute_seconds: f64,
    /// Span-tree delta bracketing the completing batch, when
    /// [`ServeConfig::collect_reports`] is set and tracing is compiled in.
    pub report: Option<RunReport>,
}

/// GPP response payload.
#[derive(Clone, Debug)]
pub struct GppPayload {
    /// Band indices evaluated (the request's window).
    pub bands: Vec<usize>,
    /// Mean-field energies of those bands (Ry).
    pub e_mf: Vec<f64>,
    /// Quasiparticle energies (Ry), aligned with `bands`.
    pub e_qp: Vec<f64>,
    /// Renormalization factors, aligned with `bands`.
    pub z: Vec<f64>,
    /// Mean-field gap (Ry).
    pub gap_mf_ry: f64,
    /// Quasiparticle gap (Ry) from this request's own band window.
    pub gap_qp_ry: f64,
    /// Macroscopic dielectric constant of the screening.
    pub eps_macro: f64,
    /// Sigma kernel FLOPs attributed to this request's rows.
    pub flops: u64,
}

/// Full-frequency response payload.
#[derive(Clone, Debug)]
pub struct FfPayload {
    /// Band indices evaluated.
    pub bands: Vec<usize>,
    /// Mean-field energies of those bands (Ry).
    pub e_mf: Vec<f64>,
    /// `sigma[s][e]` (complex, Ry) on the request's 3-point grids.
    pub sigma: Vec<Vec<Complex64>>,
    /// Macroscopic dielectric constant of the screening.
    pub eps_macro: f64,
    /// Kernel FLOPs of this request's evaluation.
    pub flops: u64,
}

/// A served result.
#[derive(Clone, Debug)]
pub enum Payload {
    /// GPP diagonals + QP energies.
    Gpp(GppPayload),
    /// Full-frequency diagonals.
    FullFreq(FfPayload),
}

/// A successful response: payload plus telemetry.
#[derive(Clone, Debug)]
pub struct ServeOk {
    /// The physics.
    pub payload: Payload,
    /// How it was served.
    pub telemetry: ServeTelemetry,
}

/// One entry of the deterministic event log — the traffic-replay test
/// battery asserts exact sequences of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeEvent {
    /// Batch screening served from the in-memory LRU (attributed to the
    /// batch leader).
    MemHit {
        /// Batch leader request.
        id: RequestId,
    },
    /// Batch screening restored from the on-disk artifact store.
    DiskHit {
        /// Batch leader request.
        id: RequestId,
    },
    /// Batch screening recomputed (and stored).
    Miss {
        /// Batch leader request.
        id: RequestId,
    },
    /// `id` rode along in the batch led by `with`.
    Coalesced {
        /// Coalesced member.
        id: RequestId,
        /// Batch leader it joined.
        with: RequestId,
    },
    /// A present-but-unreadable store record degraded to a recompute.
    StoreInvalid {
        /// Batch leader request.
        id: RequestId,
    },
    /// The batch yielded to a higher-priority request after `rows_done`
    /// band rows; its members went back to the queue.
    Preempted {
        /// Batch leader request.
        id: RequestId,
        /// Band rows completed before the yield.
        rows_done: usize,
    },
    /// The batch resumed from a preemption partial with `rows_done` rows
    /// already on record.
    Resumed {
        /// Batch leader request.
        id: RequestId,
        /// Band rows recovered from the partial.
        rows_done: usize,
    },
    /// An injected transient fault retried this request's evaluation.
    Retried {
        /// Affected request.
        id: RequestId,
        /// 1-based retry attempt.
        attempt: u32,
    },
    /// An injected crash re-enqueued this request (and only it).
    Reenqueued {
        /// Affected request.
        id: RequestId,
    },
    /// The request was cancelled.
    Cancelled {
        /// Affected request.
        id: RequestId,
    },
    /// The request retired successfully.
    Completed {
        /// Affected request.
        id: RequestId,
    },
    /// The request retired with an error.
    Failed {
        /// Affected request.
        id: RequestId,
    },
}

struct Pending {
    id: RequestId,
    seq: u64,
    req: GwRequest,
    attempts: usize,
    enqueued: Instant,
    cancel: Arc<AtomicBool>,
}

/// Dedup identity of one Sigma row within a batch: `(band, delta_milli_ry)`.
type RowKey = (usize, u32);
/// One evaluated row: the 3-point Sigma grid plus its FLOP attribution.
type RowVal = (Vec<f64>, u64);

/// A preemption partial: per-`(band, delta_milli_ry)` Sigma rows already
/// evaluated for a W batch, plus their FLOP attribution.
#[derive(Clone, Debug, Default, PartialEq)]
struct BatchPartial {
    rows: Vec<(RowKey, RowVal)>,
}

const PARTIAL_N_GRID: usize = 3;

impl BatchPartial {
    fn get(&self, key: RowKey) -> Option<&RowVal> {
        self.rows.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    fn to_checkpoint(&self) -> Checkpoint {
        let mut meta = vec![self.rows.len() as f64];
        for ((band, delta), (row, flops)) in &self.rows {
            meta.push(*band as f64);
            meta.push(*delta as f64);
            meta.push(*flops as f64);
            meta.extend_from_slice(row);
        }
        Checkpoint {
            stage: GwStage::SigmaPartial as u64,
            step: self.rows.len() as u64,
            meta,
            matrices: vec![],
        }
    }

    fn from_checkpoint(ck: &Checkpoint) -> Option<BatchPartial> {
        if ck.stage != GwStage::SigmaPartial as u64 || ck.meta.is_empty() {
            return None;
        }
        let n = ck.meta[0] as usize;
        if ck.step as usize != n || ck.meta.len() != 1 + n * (3 + PARTIAL_N_GRID) {
            return None;
        }
        let mut rows = Vec::with_capacity(n);
        for chunk in ck.meta[1..].chunks_exact(3 + PARTIAL_N_GRID) {
            let row = chunk[3..].to_vec();
            if row.iter().any(|x| !x.is_finite()) {
                return None;
            }
            rows.push(((chunk[0] as usize, chunk[1] as u32), (row, chunk[2] as u64)));
        }
        Some(BatchPartial { rows })
    }
}

/// The synchronous serving engine. See the module docs for the step
/// anatomy; [`Server`](crate::server::Server) is the threaded wrapper.
pub struct ServeCore {
    cfg: ServeConfig,
    store: ArtifactStore,
    queue: VecDeque<Pending>,
    mem: Vec<(ArtifactKey, Arc<Screening>, u64)>,
    mem_bytes: u64,
    partials: HashMap<ArtifactKey, BatchPartial>,
    events: Vec<ServeEvent>,
    responses: Vec<(RequestId, Result<ServeOk, ServeError>)>,
    next_id: RequestId,
    next_seq: u64,
    op_counter: u64,
}

impl ServeCore {
    /// An idle engine over `cfg.store_dir`.
    pub fn new(cfg: ServeConfig) -> Self {
        let store = ArtifactStore::new(cfg.store_dir.clone());
        Self::with_store(cfg, store)
    }

    /// An idle engine over an existing store handle. Shards of a
    /// [`Server`](crate::server::Server) all clone one handle, so the
    /// pin/interest/access bookkeeping that guards GC is shared across
    /// shards while each shard keeps its own queue and memory cache.
    pub fn with_store(cfg: ServeConfig, store: ArtifactStore) -> Self {
        Self {
            cfg,
            store,
            queue: VecDeque::new(),
            mem: Vec::new(),
            mem_bytes: 0,
            partials: HashMap::new(),
            events: Vec::new(),
            responses: Vec::new(),
            next_id: 1,
            next_seq: 0,
            op_counter: 0,
        }
    }

    /// The artifact store this engine serves from.
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// Queued (not yet retired) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True when no request is queued.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Highest priority currently queued, if any.
    pub fn max_queued_priority(&self) -> Option<u8> {
        self.queue.iter().map(|p| p.req.priority).max()
    }

    /// The event log so far (monotonic; see [`ServeCore::take_events`]).
    pub fn events(&self) -> &[ServeEvent] {
        &self.events
    }

    /// Drains the event log.
    pub fn take_events(&mut self) -> Vec<ServeEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drains retired responses.
    pub fn take_responses(&mut self) -> Vec<(RequestId, Result<ServeOk, ServeError>)> {
        std::mem::take(&mut self.responses)
    }

    /// Accepts a request into the bounded queue.
    pub fn enqueue(&mut self, req: GwRequest) -> Result<RequestId, ServeError> {
        self.enqueue_with_cancel(req, Arc::new(AtomicBool::new(false)))
    }

    /// Accepts a request with an externally shared cancellation flag (the
    /// threaded server's ticket holds the other end).
    pub fn enqueue_with_cancel(
        &mut self,
        req: GwRequest,
        cancel: Arc<AtomicBool>,
    ) -> Result<RequestId, ServeError> {
        if self.queue.len() >= self.cfg.queue_capacity {
            return Err(ServeError::QueueFull);
        }
        // Reject windows that cannot straddle the gap *before* any
        // evaluation: `n_bands` is client-supplied, and a window missing
        // HOMO/LUMO would otherwise panic the engine mid-batch (killing
        // the threaded daemon's dispatcher). The check mirrors the band
        // derivation the evaluator uses: n_valence from the crystal,
        // n_bands clamped to the wavefunction basis.
        let sys = req.structure.system();
        let nv = sys.n_valence();
        let nb = sys.n_bands.min(sys.wfn_sphere().len());
        if nv == 0 || nb <= nv {
            return Err(ServeError::InvalidBandWindow {
                n_valence: nv,
                n_bands: nb,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        // Register interest in the request's W with the shared store:
        // the GC orphan sweep must not reclaim a preemption partial
        // while any request that could resume from it is still queued.
        self.store.add_interest(req.w_key());
        self.queue.push_back(Pending {
            id,
            seq,
            req,
            attempts: 0,
            enqueued: Instant::now(),
            cancel,
        });
        counters::record_serve_request();
        Ok(id)
    }

    /// Cancels a request: sets its flag and, if it is still queued,
    /// retires it immediately with [`ServeError::Cancelled`]. Returns
    /// `false` for unknown (already retired) ids.
    pub fn cancel(&mut self, id: RequestId) -> bool {
        if let Some(pos) = self.queue.iter().position(|p| p.id == id) {
            let p = self.queue.remove(pos).unwrap();
            p.cancel.store(true, Ordering::Release);
            self.retire_cancelled(p);
            return true;
        }
        false
    }

    /// Runs batches until the queue drains. `peek` is consulted between
    /// band rows for preemption (return the highest priority waiting
    /// *outside* the engine, or `None`).
    pub fn run_until_idle(&mut self, peek: &mut dyn FnMut() -> Option<u8>) {
        while self.step_with(peek) {}
    }

    /// Processes one coalesced batch; returns `false` when the queue was
    /// empty. See the module docs for the step anatomy.
    pub fn step_with(&mut self, peek: &mut dyn FnMut() -> Option<u8>) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        let _batch_span = bgw_trace::span!("serve.batch");

        // --- batch selection: highest priority, then arrival order ------
        let leader = self
            .queue
            .iter()
            .min_by_key(|p| (std::cmp::Reverse(p.req.priority), p.seq))
            .expect("non-empty queue");
        let wkey = leader.req.w_key();
        let batch_prio = leader.req.priority;
        // Pin this batch's W for the whole step: a GC pass (from this
        // shard or a concurrent one sharing the store) must never
        // reclaim the artifact or preemption partial of an in-flight
        // batch.
        let _pin = self.store.pin(wkey);
        let mut batch: Vec<Pending> = Vec::new();
        let mut rest: VecDeque<Pending> = VecDeque::new();
        for p in std::mem::take(&mut self.queue) {
            if p.req.w_key() == wkey {
                batch.push(p);
            } else {
                rest.push_back(p);
            }
        }
        self.queue = rest;
        batch.sort_by_key(|p| p.seq);

        // --- drop members already cancelled ------------------------------
        let mut live = Vec::new();
        for p in batch {
            if p.cancel.load(Ordering::Acquire) {
                self.retire_cancelled(p);
            } else {
                live.push(p);
            }
        }
        let batch = live;
        if batch.is_empty() {
            return true;
        }
        let leader_id = batch[0].id;
        if batch.len() > 1 {
            counters::record_serve_coalesced((batch.len() - 1) as u64);
            for m in &batch[1..] {
                self.events.push(ServeEvent::Coalesced {
                    id: m.id,
                    with: leader_id,
                });
            }
        }

        let report_before = if self.cfg.collect_reports && bgw_trace::compiled_in() {
            Some(bgw_trace::report())
        } else {
            None
        };
        let t_batch = Instant::now();

        // --- screening acquisition ---------------------------------------
        let (screening, cache) = match self.acquire_screening(&batch[0].req, leader_id) {
            Ok(pair) => pair,
            Err(e) => {
                for p in batch {
                    self.retire_err(p, ServeError::Epsilon(e.clone()));
                }
                return true;
            }
        };

        // --- evaluation ---------------------------------------------------
        match batch[0].req.kind {
            RequestKind::GppDiag { .. } => self.eval_gpp_batch(
                batch,
                &screening,
                wkey,
                batch_prio,
                cache,
                t_batch,
                peek,
                report_before,
            ),
            RequestKind::FullFreq { .. } => {
                self.eval_ff_batch(batch, &screening, cache, t_batch, report_before)
            }
        }
        // Disk GC after the batch retires, while the batch's W is still
        // pinned: reclaim oldest-accessed records until the store fits
        // the byte budget again (0 = uncapped).
        if self.cfg.store_budget_bytes > 0 {
            let _ = self.store.gc(self.cfg.store_budget_bytes);
        }
        true
    }

    // ---------------------------------------------------------------------

    /// Releases the retiring request's interest in its W key; when the
    /// last interested request retires, any preemption partial for that
    /// key is unreachable and is deleted (memory and disk) instead of
    /// leaking — the orphaned-partial bug this PR fixes.
    fn note_retired(&mut self, req: &GwRequest) {
        let wkey = req.w_key();
        if self.store.release_interest(wkey) == 0 {
            self.partials.remove(&wkey);
            self.store.clear_partial(wkey);
        }
    }

    fn retire_cancelled(&mut self, p: Pending) {
        self.note_retired(&p.req);
        self.events.push(ServeEvent::Cancelled { id: p.id });
        self.responses.push((p.id, Err(ServeError::Cancelled)));
    }

    fn retire_err(&mut self, p: Pending, e: ServeError) {
        self.note_retired(&p.req);
        self.events.push(ServeEvent::Failed { id: p.id });
        self.responses.push((p.id, Err(e)));
    }

    fn mem_get(&mut self, key: ArtifactKey) -> Option<Arc<Screening>> {
        let pos = self.mem.iter().position(|(k, _, _)| *k == key)?;
        let entry = self.mem.remove(pos);
        let hit = entry.1.clone();
        self.mem.push(entry); // most-recently-used at the back
        Some(hit)
    }

    /// Cost-aware insert: the entry is charged its decoded byte
    /// footprint and least-recently-used entries are evicted until the
    /// cache fits the byte budget again. The newest entry always stays
    /// (even alone over budget) so a hot oversized screening still
    /// coalesces; budget 0 disables the cache.
    fn mem_insert(&mut self, key: ArtifactKey, s: Arc<Screening>) {
        if self.cfg.mem_budget_bytes == 0 {
            return;
        }
        let bytes = s.approx_bytes();
        if let Some(pos) = self.mem.iter().position(|(k, _, _)| *k == key) {
            let (_, _, old) = self.mem.remove(pos);
            self.mem_bytes = self.mem_bytes.saturating_sub(old);
        }
        self.mem.push((key, s, bytes));
        self.mem_bytes += bytes;
        while self.mem_bytes > self.cfg.mem_budget_bytes && self.mem.len() > 1 {
            let (_, _, b) = self.mem.remove(0);
            self.mem_bytes = self.mem_bytes.saturating_sub(b);
            counters::record_serve_mem_evicted();
        }
    }

    /// (entries, charged bytes) currently held by the memory cache.
    pub fn mem_stats(&self) -> (usize, u64) {
        (self.mem.len(), self.mem_bytes)
    }

    fn acquire_screening(
        &mut self,
        req: &GwRequest,
        leader_id: RequestId,
    ) -> Result<(Arc<Screening>, CacheStatus), EpsilonError> {
        let wspec = req.w_spec();
        let wkey = wspec.key();
        let wcanon = wspec.canonical();
        if let Some(s) = self.mem_get(wkey) {
            counters::record_serve_hit_mem();
            self.events.push(ServeEvent::MemHit { id: leader_id });
            return Ok((s, CacheStatus::MemHit));
        }
        let system = req.structure.system();
        let cfg = req.gw_config();
        let had_record = self.store.contains(wkey);
        if let Some(ck) = self.store.load(wkey, &wcanon) {
            if let Some(s) = screening_from_checkpoint(&system, &cfg, &ck) {
                counters::record_serve_hit_disk();
                self.events.push(ServeEvent::DiskHit { id: leader_id });
                let s = Arc::new(s);
                self.mem_insert(wkey, s.clone());
                return Ok((s, CacheStatus::DiskHit));
            }
            // Readable record, wrong payload: count it like a torn entry.
            counters::record_serve_store_invalid();
            self.events.push(ServeEvent::StoreInvalid { id: leader_id });
        } else if had_record {
            // Present but failed the checksummed read or the embedded-spec
            // comparison (already counted by the store); surface it in the
            // event log.
            self.events.push(ServeEvent::StoreInvalid { id: leader_id });
        }
        counters::record_serve_miss();
        self.events.push(ServeEvent::Miss { id: leader_id });
        let s = build_screening(&system, &cfg, req.ff_spec())?;
        let _ = self.store.save(wkey, &wcanon, screening_to_checkpoint(&s));
        let s = Arc::new(s);
        self.mem_insert(wkey, s.clone());
        Ok((s, CacheStatus::Miss))
    }

    /// Consults the fault plan for one request evaluation op. `Ok(true)`
    /// means proceed, `Ok(false)` means the request was re-enqueued or
    /// retired and must be skipped; corruption targets the stored
    /// artifact of `wkey`.
    fn fault_gate(&mut self, p: &mut Pending, wkey: ArtifactKey) -> Result<bool, ServeError> {
        let op = self.op_counter;
        self.op_counter += 1;
        if self.cfg.panic_at_op == Some(op) {
            panic!("injected dispatcher panic at evaluation op {op}");
        }
        match self.cfg.fault_plan.event(0, op) {
            None => Ok(true),
            Some(FaultKind::Crash) => {
                p.attempts += 1;
                if p.attempts > self.cfg.max_request_retries {
                    return Err(ServeError::Faulted {
                        attempts: p.attempts,
                    });
                }
                counters::record_serve_reenqueued();
                self.events.push(ServeEvent::Reenqueued { id: p.id });
                Ok(false)
            }
            Some(FaultKind::Transient { failures }) => {
                if failures > self.cfg.fault_plan.max_retries() {
                    return Err(ServeError::RetriesExhausted { attempts: failures });
                }
                for attempt in 1..=failures {
                    counters::record_serve_retry();
                    self.events.push(ServeEvent::Retried { id: p.id, attempt });
                    std::thread::sleep(std::time::Duration::from_micros(
                        self.cfg.fault_plan.backoff_us(attempt - 1),
                    ));
                }
                Ok(true)
            }
            Some(FaultKind::Corrupt { .. }) => {
                // A torn write: the stored artifact is damaged but this
                // in-memory evaluation is fine. The checksummed reader
                // must catch it on the next cold load.
                self.store.corrupt_artifact(wkey);
                Ok(true)
            }
            Some(FaultKind::Delay { micros }) => {
                std::thread::sleep(std::time::Duration::from_micros(micros));
                Ok(true)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_gpp_batch(
        &mut self,
        batch: Vec<Pending>,
        screening: &Arc<Screening>,
        wkey: ArtifactKey,
        batch_prio: u8,
        cache: CacheStatus,
        t_batch: Instant,
        peek: &mut dyn FnMut() -> Option<u8>,
        report_before: Option<RunReport>,
    ) {
        let batch_size = batch.len();
        let nv = screening.wf.n_valence;
        let nb = screening.wf.n_bands();
        let wcanon = batch[0].req.w_spec().canonical();
        // Each member carries its own band list: mid-batch cancellation
        // drops a member and its bands together, so the retire loop can
        // never pair a survivor with another request's band window.
        let mut batch: Vec<(Pending, Vec<usize>)> = batch
            .into_iter()
            .map(|p| {
                let bands = p.req.bands(nv, nb);
                (p, bands)
            })
            .collect();

        // Union band list (sorted, deduped) and the distinct rows to do.
        let mut union: Vec<usize> = batch.iter().flat_map(|(_, b)| b).copied().collect();
        union.sort_unstable();
        union.dedup();
        let mut rows_needed: Vec<(usize, u32)> = Vec::new();
        for (p, bands) in &batch {
            for &b in bands {
                let key = (b, p.req.delta_milli_ry());
                if !rows_needed.contains(&key) {
                    rows_needed.push(key);
                }
            }
        }
        rows_needed.sort_unstable();

        // Resume a preemption partial if one is on record (memory first,
        // then the checksummed, spec-verified on-disk record).
        let mut partial = match self.partials.remove(&wkey) {
            Some(p) => p,
            None => self
                .store
                .load_partial(wkey, &wcanon)
                .and_then(|ck| BatchPartial::from_checkpoint(&ck))
                .unwrap_or_default(),
        };
        // Only keep rows this batch actually needs (a reshaped batch after
        // preemption must not resurrect stale rows at retire time).
        partial.rows.retain(|(k, _)| rows_needed.contains(k));
        if !partial.rows.is_empty() {
            self.events.push(ServeEvent::Resumed {
                id: batch[0].0.id,
                rows_done: partial.rows.len(),
            });
        }

        let ctx = sigma_context(screening, &union);
        let todo: Vec<(usize, u32)> = rows_needed
            .iter()
            .copied()
            .filter(|k| partial.get(*k).is_none())
            .collect();
        for (i, &(band, delta_m)) in todo.iter().enumerate() {
            let row_result: Result<(Vec<f64>, u64), ServeError> = {
                let _row_span = bgw_trace::span!("serve.sigma.gpp");
                match union.iter().position(|&b| b == band) {
                    None => Err(internal(format!("band {band} missing from batch union"))),
                    Some(s) => {
                        let one = band_slice(&ctx, s);
                        let e = ctx.sigma_energies[s];
                        let d = delta_m as f64 / 1000.0;
                        let grid = vec![vec![e - d, e, e + d]];
                        let r = gpp_sigma_diag(&one, &grid, batch[0].0.req.gw_config().variant);
                        match r.sigma.into_iter().next() {
                            Some(row) => Ok((row, r.flops)),
                            None => Err(internal("GPP sigma returned no rows")),
                        }
                    }
                }
            };
            match row_result {
                Ok(row) => partial.rows.push(((band, delta_m), row)),
                Err(e) => {
                    // An engine invariant broke: degrade to failed
                    // requests (typed), never a panicked (dead) shard.
                    for (p, _) in batch {
                        self.retire_err(p, e.clone());
                    }
                    return;
                }
            }
            // Drop members cancelled mid-batch; their rows may become
            // unneeded but recomputing the need-set is not worth it.
            let mut live = Vec::new();
            for (p, bands) in batch {
                if p.cancel.load(Ordering::Acquire) {
                    self.retire_cancelled(p);
                } else {
                    live.push((p, bands));
                }
            }
            batch = live;
            if batch.is_empty() {
                self.partials.remove(&wkey);
                self.store.clear_partial(wkey);
                return;
            }
            // Preemption: yield only with progress made and work left.
            if i + 1 < todo.len() && peek().is_some_and(|w| w > batch_prio) {
                counters::record_serve_preemption();
                self.events.push(ServeEvent::Preempted {
                    id: batch[0].0.id,
                    rows_done: partial.rows.len(),
                });
                let _ = self
                    .store
                    .save_partial(wkey, &wcanon, partial.to_checkpoint());
                self.partials.insert(wkey, partial);
                for (p, _) in batch {
                    self.queue.push_back(p); // keeps seq: resumes in order
                }
                return;
            }
        }

        // --- assemble + retire per member --------------------------------
        let report = self.finish_report(report_before);
        let compute_seconds = t_batch.elapsed().as_secs_f64();
        for (mut p, bands) in batch {
            match self.fault_gate(&mut p, wkey) {
                Ok(true) => {}
                Ok(false) => {
                    // Crash: re-enqueue only this request.
                    self.queue.push_back(p);
                    continue;
                }
                Err(e) => {
                    self.retire_err(p, e);
                    continue;
                }
            }
            if p.cancel.load(Ordering::Acquire) {
                self.retire_cancelled(p);
                continue;
            }
            let delta_m = p.req.delta_milli_ry();
            let d = p.req.delta_ry();
            let mut sigma = Vec::with_capacity(bands.len());
            let mut grids = Vec::with_capacity(bands.len());
            let mut energies = Vec::with_capacity(bands.len());
            let mut flops = 0u64;
            let mut member_err: Option<ServeError> = None;
            for &b in &bands {
                let Some((row, row_flops)) = partial.get((b, delta_m)).cloned() else {
                    member_err = Some(internal(format!("row for band {b} missing at retire")));
                    break;
                };
                let Some(s) = union.iter().position(|&u| u == b) else {
                    member_err = Some(internal(format!("band {b} missing from batch union")));
                    break;
                };
                let e = ctx.sigma_energies[s];
                sigma.push(row);
                grids.push(vec![e - d, e, e + d]);
                energies.push(e);
                flops += row_flops;
            }
            if let Some(e) = member_err {
                self.retire_err(p, e);
                continue;
            }
            let diag = SigmaDiagResult {
                sigma,
                e_grids: grids,
                seconds: 0.0,
                flops,
            };
            let states = solve_qp_diag(&energies, &diag);
            let (Some(homo), Some(lumo)) = (
                bands.iter().position(|&b| b == nv - 1),
                bands.iter().position(|&b| b == nv),
            ) else {
                // enqueue() rejects windows that cannot straddle the gap,
                // so reaching this means the band derivation regressed.
                self.retire_err(p, internal("band window lost HOMO/LUMO"));
                continue;
            };
            let payload = GppPayload {
                e_mf: energies,
                e_qp: states.iter().map(|st| st.e_qp).collect(),
                z: states.iter().map(|st| st.z).collect(),
                gap_mf_ry: screening.wf.gap_ry(),
                gap_qp_ry: states[lumo].e_qp - states[homo].e_qp,
                eps_macro: screening.eps_macro,
                flops,
                bands,
            };
            self.retire_ok(
                p,
                Payload::Gpp(payload),
                cache,
                batch_size,
                compute_seconds,
                &report,
            );
        }
        self.partials.remove(&wkey);
        self.store.clear_partial(wkey);
    }

    fn eval_ff_batch(
        &mut self,
        batch: Vec<Pending>,
        screening: &Arc<Screening>,
        cache: CacheStatus,
        t_batch: Instant,
        report_before: Option<RunReport>,
    ) {
        let batch_size = batch.len();
        let nv = screening.wf.n_valence;
        let nb = screening.wf.n_bands();
        let member_bands: Vec<Vec<usize>> = batch.iter().map(|p| p.req.bands(nv, nb)).collect();
        let mut union: Vec<usize> = member_bands.iter().flatten().copied().collect();
        union.sort_unstable();
        union.dedup();
        let ctx = sigma_context(screening, &union);
        let wkey = batch[0].req.w_key();

        let mut retirements = Vec::new();
        for (mut p, bands) in batch.into_iter().zip(member_bands) {
            match self.fault_gate(&mut p, wkey) {
                Ok(true) => {}
                Ok(false) => {
                    self.queue.push_back(p);
                    continue;
                }
                Err(e) => {
                    self.retire_err(p, e);
                    continue;
                }
            }
            if p.cancel.load(Ordering::Acquire) {
                self.retire_cancelled(p);
                continue;
            }
            let mut positions = Vec::with_capacity(bands.len());
            for &b in &bands {
                match union.iter().position(|&u| u == b) {
                    Some(s) => positions.push(s),
                    None => break,
                }
            }
            if positions.len() != bands.len() {
                self.retire_err(p, internal("band missing from batch union"));
                continue;
            }
            let view = band_subset(&ctx, &positions);
            let Some(r) = ff_eval(screening, &view, p.req.delta_ry(), p.req.eta_ry()) else {
                // Request kind and screening kind diverged: the W spec
                // should have carried the FF grid for this request.
                self.retire_err(p, internal("FF request paired with a non-FF screening"));
                continue;
            };
            let payload = FfPayload {
                e_mf: r.sigma_energies,
                sigma: r.sigma,
                eps_macro: screening.eps_macro,
                flops: r.flops,
                bands,
            };
            retirements.push((p, payload));
        }
        let report = self.finish_report(report_before);
        let compute_seconds = t_batch.elapsed().as_secs_f64();
        for (p, payload) in retirements {
            self.retire_ok(
                p,
                Payload::FullFreq(payload),
                cache,
                batch_size,
                compute_seconds,
                &report,
            );
        }
    }

    fn finish_report(&self, before: Option<RunReport>) -> Option<RunReport> {
        before.map(|b| b.delta(&bgw_trace::report()))
    }

    fn retire_ok(
        &mut self,
        p: Pending,
        payload: Payload,
        cache: CacheStatus,
        batch_size: usize,
        compute_seconds: f64,
        report: &Option<RunReport>,
    ) {
        self.note_retired(&p.req);
        let queue_seconds = p.enqueued.elapsed().as_secs_f64() - compute_seconds;
        let queue_seconds = queue_seconds.max(0.0);
        counters::record_serve_completed((queue_seconds * 1e9) as u64);
        self.events.push(ServeEvent::Completed { id: p.id });
        self.responses.push((
            p.id,
            Ok(ServeOk {
                payload,
                telemetry: ServeTelemetry {
                    cache,
                    batch_size,
                    attempts: p.attempts + 1,
                    queue_seconds,
                    compute_seconds,
                    report: report.clone(),
                },
            }),
        ));
    }
}
