//! Model local pseudopotentials (empirical-pseudopotential method).
//!
//! The paper starts from DFT wavefunctions produced by Quantum ESPRESSO.
//! Here the mean field is an empirical-pseudopotential model: each species
//! carries a smooth local form factor `v(q)` (Ry, normalized to a reference
//! primitive-cell volume). For silicon the curve interpolates the classic
//! Cohen-Bergstresser form factors, so the bulk band structure (and its
//! ~1 eV indirect gap) comes out with the right shape; the other species
//! are *model* potentials tuned to give insulating band structures with the
//! correct electron counts. See DESIGN.md Sec. 2 for why this substitution
//! preserves the behaviour GW needs: the GW engine consumes only
//! `{psi_n, E_n}` on a plane-wave grid.

/// Chemical species available to the model systems.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Species {
    /// Silicon (4 valence electrons) — Cohen-Bergstresser-interpolated.
    Si,
    /// Lithium (1 valence electron) — model rocksalt cation.
    Li,
    /// Hydrogen (1 electron) — model rocksalt anion.
    H,
    /// Boron (3 valence electrons) — model sheet species.
    B,
    /// Nitrogen (5 valence electrons) — model sheet species.
    N,
    /// Carbon (4 valence electrons) — substitutional defect species.
    C,
}

/// Conventional lattice constant of diamond silicon (bohr).
pub const SI_A0: f64 = 10.26;
/// Conventional lattice constant of the model rocksalt LiH (bohr).
pub const LIH_A0: f64 = 7.72;
/// In-plane lattice constant of the model BN sheet (bohr).
pub const BN_A0: f64 = 4.75;

impl Species {
    /// Number of valence electrons contributed to the bands.
    pub fn valence_electrons(&self) -> usize {
        match self {
            Species::Si | Species::C => 4,
            Species::Li | Species::H => 1,
            Species::B => 3,
            Species::N => 5,
        }
    }

    /// Atomic form factor `u(q)` in Ry * bohr^3: the local potential a
    /// single atom contributes, `V(G) = (1/Omega) sum_j u_j(|G|)
    /// e^{-i G . r_j}` (Eq. assembled in `hamiltonian`).
    ///
    /// Each species' `v(q)` control curve is normalized per its reference
    /// primitive cell so that bulk calculations reproduce the intended
    /// form factors exactly.
    pub fn form_factor(&self, q: f64) -> f64 {
        match self {
            Species::Si => {
                // Cohen-Bergstresser symmetric form factors, interpolated:
                // V_S(sqrt(3) g0) = -0.21 Ry, V_S(sqrt(8) g0) = +0.04,
                // V_S(sqrt(11) g0) = +0.08 with g0 = 2 pi / a0.
                // Per-atom factor = V_S / 2; reference volume = fcc
                // primitive cell a0^3 / 4.
                let g0 = 2.0 * std::f64::consts::PI / SI_A0;
                let vol_ref = SI_A0.powi(3) / 4.0;
                let v = interp_monotone(
                    q / g0,
                    &[
                        (0.0, -0.420),
                        (3f64.sqrt(), -0.21),
                        (8f64.sqrt(), 0.04),
                        (11f64.sqrt(), 0.08),
                        (4.2, 0.0),
                    ],
                );
                0.5 * v * vol_ref
            }
            Species::C => {
                // Carbon-like: same shape as Si, deeper and stiffer
                // (diamond's larger gap), on the Si length scale so it can
                // substitute into Si and BN hosts.
                let g0 = 2.0 * std::f64::consts::PI / SI_A0;
                let vol_ref = SI_A0.powi(3) / 4.0;
                let v = interp_monotone(
                    q / g0,
                    &[
                        (0.0, -0.60),
                        (3f64.sqrt(), -0.30),
                        (8f64.sqrt(), 0.06),
                        (11f64.sqrt(), 0.10),
                        (4.5, 0.0),
                    ],
                );
                0.5 * v * vol_ref
            }
            Species::Li => {
                // Shallow cation: weakly attractive, quickly decaying.
                let g0 = 2.0 * std::f64::consts::PI / LIH_A0;
                let vol_ref = LIH_A0.powi(3) / 4.0;
                let v = interp_monotone(
                    q / g0,
                    &[(0.0, -0.18), (1.5, -0.10), (2.5, -0.02), (3.5, 0.0)],
                );
                0.5 * v * vol_ref
            }
            Species::H => {
                // Deep anion: strongly attractive (the hydride ion), giving
                // the rocksalt model its wide ionic gap.
                let g0 = 2.0 * std::f64::consts::PI / LIH_A0;
                let vol_ref = LIH_A0.powi(3) / 4.0;
                let v = interp_monotone(
                    q / g0,
                    &[(0.0, -0.85), (1.5, -0.45), (2.5, -0.10), (3.8, 0.0)],
                );
                0.5 * v * vol_ref
            }
            Species::B => {
                let g0 = 2.0 * std::f64::consts::PI / BN_A0;
                let vol_ref = BN_A0 * BN_A0 * 3f64.sqrt() / 2.0 * 12.0;
                let v = interp_monotone(
                    q / g0,
                    &[(0.0, -0.25), (1.0, -0.12), (2.0, 0.02), (3.0, 0.0)],
                );
                0.5 * v * vol_ref
            }
            Species::N => {
                let g0 = 2.0 * std::f64::consts::PI / BN_A0;
                let vol_ref = BN_A0 * BN_A0 * 3f64.sqrt() / 2.0 * 12.0;
                let v = interp_monotone(
                    q / g0,
                    &[(0.0, -0.70), (1.0, -0.38), (2.0, -0.06), (3.2, 0.0)],
                );
                0.5 * v * vol_ref
            }
        }
    }
}

/// Monotone piecewise-cubic (Fritsch-Carlson) interpolation through control
/// points `(x, y)` sorted by `x`; clamps to the end values outside the
/// range and returns exactly `y_i` at the knots.
pub fn interp_monotone(x: f64, pts: &[(f64, f64)]) -> f64 {
    let n = pts.len();
    assert!(n >= 2, "need at least two control points");
    if x <= pts[0].0 {
        return pts[0].1;
    }
    if x >= pts[n - 1].0 {
        return pts[n - 1].1;
    }
    // Find the interval.
    let mut i = 0;
    while pts[i + 1].0 < x {
        i += 1;
    }
    let (x0, y0) = pts[i];
    let (x1, y1) = pts[i + 1];
    let h = x1 - x0;
    let d = (y1 - y0) / h;
    // Fritsch-Carlson endpoint slopes.
    let slope = |j: usize| -> f64 {
        if j == 0 {
            (pts[1].1 - pts[0].1) / (pts[1].0 - pts[0].0)
        } else if j == n - 1 {
            (pts[n - 1].1 - pts[n - 2].1) / (pts[n - 1].0 - pts[n - 2].0)
        } else {
            let d0 = (pts[j].1 - pts[j - 1].1) / (pts[j].0 - pts[j - 1].0);
            let d1 = (pts[j + 1].1 - pts[j].1) / (pts[j + 1].0 - pts[j].0);
            if d0 * d1 <= 0.0 {
                0.0
            } else {
                2.0 * d0 * d1 / (d0 + d1) // harmonic mean limits overshoot
            }
        }
    };
    let m0 = slope(i);
    let m1 = slope(i + 1);
    let t = (x - x0) / h;
    let t2 = t * t;
    let t3 = t2 * t;
    let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
    let h10 = t3 - 2.0 * t2 + t;
    let h01 = -2.0 * t3 + 3.0 * t2;
    let h11 = t3 - t2;
    let _ = d;
    h00 * y0 + h10 * h * m0 + h01 * y1 + h11 * h * m1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interp_hits_knots_and_clamps() {
        let pts = [(0.0, 1.0), (1.0, -1.0), (2.0, 0.5)];
        for &(x, y) in &pts {
            assert!((interp_monotone(x, &pts) - y).abs() < 1e-12);
        }
        assert_eq!(interp_monotone(-5.0, &pts), 1.0);
        assert_eq!(interp_monotone(99.0, &pts), 0.5);
    }

    #[test]
    fn interp_is_monotone_between_monotone_knots() {
        let pts = [(0.0, 0.0), (1.0, 1.0), (2.0, 3.0), (3.0, 3.5)];
        let mut last = -1.0;
        for i in 0..=300 {
            let x = i as f64 * 0.01;
            let y = interp_monotone(x, &pts);
            assert!(y >= last - 1e-12, "not monotone at x={x}");
            last = y;
        }
    }

    #[test]
    fn si_reproduces_cohen_bergstresser_points() {
        let g0 = 2.0 * std::f64::consts::PI / SI_A0;
        let vol_ref = SI_A0.powi(3) / 4.0;
        // per-atom u(q) = V_S/2 * vol_ref at the CB reciprocal vectors
        let cases = [
            (3f64.sqrt(), -0.21),
            (8f64.sqrt(), 0.04),
            (11f64.sqrt(), 0.08),
        ];
        for (qn, vs) in cases {
            let u = Species::Si.form_factor(qn * g0);
            assert!(
                (u - 0.5 * vs * vol_ref).abs() < 1e-10,
                "q = sqrt({}) g0",
                qn * qn
            );
        }
    }

    #[test]
    fn form_factors_decay_to_zero() {
        for sp in [
            Species::Si,
            Species::Li,
            Species::H,
            Species::B,
            Species::N,
            Species::C,
        ] {
            assert_eq!(sp.form_factor(50.0), 0.0, "{sp:?} tail");
            // attractive at q -> 0
            assert!(sp.form_factor(0.0) < 0.0, "{sp:?} head");
        }
    }

    #[test]
    fn electron_counts() {
        assert_eq!(Species::Si.valence_electrons(), 4);
        assert_eq!(Species::Li.valence_electrons(), 1);
        assert_eq!(Species::H.valence_electrons(), 1);
        assert_eq!(Species::B.valence_electrons(), 3);
        assert_eq!(Species::N.valence_electrons(), 5);
        assert_eq!(Species::C.valence_electrons(), 4);
    }

    #[test]
    fn anion_deeper_than_cation() {
        // the LiH gap is ionic: H- must be much deeper than Li+.
        assert!(Species::H.form_factor(0.5) < Species::Li.form_factor(0.5));
    }
}
