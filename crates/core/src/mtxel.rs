//! MTXEL: plane-wave matrix elements via FFT.
//!
//! `M_mn^G = <psi_m| e^{i G.r} |psi_n> = sum_{G'} c_m^*(G' + G) c_n(G')`,
//! computed by transforming both bands to real space, forming the pointwise
//! product `psi_m^*(r) psi_n(r)`, and transforming back (the MTXEL kernel
//! of paper Sec. 5.2 and ref 8). The output sphere (for `chi`/`Sigma`) is in
//! general smaller than the wavefunction sphere.

use bgw_fft::{Direction, Fft3d};
use bgw_num::Complex64;
use bgw_pwdft::{GSphere, Wavefunctions};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Bytes of one real-space grid of `npts` complex amplitudes.
fn grid_bytes(npts: usize) -> usize {
    npts * std::mem::size_of::<Complex64>()
}

/// Caller-owned LRU cache of real-space band amplitudes with a byte
/// budget.
///
/// The MTXEL pair kernel transforms *two* bands per pair; every consumer
/// loop (`chi` panels, the Sigma bare-exchange sum, GWPT's `l`-loop, BSE
/// kernels) iterates an outer band against many inner bands, so caching
/// the inner transforms turns `O(n_outer * n_inner)` inverse FFTs into
/// `O(n_inner)`. The cache is owned by the *caller*, not the engine: the
/// same [`Mtxel`] is routinely used with several `Wavefunctions` objects
/// (e.g. GWPT's displaced crystals), and a band index alone would alias
/// between them. Entries are `Arc`s, so a hit is a pointer clone and
/// eviction never invalidates grids still in use.
pub struct BandCache {
    budget: usize,
    inner: Mutex<CacheInner>,
}

struct CacheInner {
    map: HashMap<usize, (Arc<Vec<Complex64>>, u64)>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl BandCache {
    /// Creates a cache that holds at most `budget_bytes` of grids (at
    /// least one grid is always retained, so a tiny budget degrades to
    /// per-call memoization of the most recent band, never to a panic).
    pub fn with_budget(budget_bytes: usize) -> Self {
        Self {
            budget: budget_bytes,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Sizing rule used by the GW kernels: room for `max_grids` grids of
    /// `npts` points each.
    pub fn for_grids(npts: usize, max_grids: usize) -> Self {
        Self::with_budget(grid_bytes(npts) * max_grids.max(1))
    }

    /// Returns the cached grid for `key`, computing it with `make` on a
    /// miss. Oldest-used entries are evicted once the budget overflows.
    pub fn get_or(&self, key: usize, make: impl FnOnce() -> Vec<Complex64>) -> Arc<Vec<Complex64>> {
        {
            let mut st = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            st.tick += 1;
            let tick = st.tick;
            if let Some(entry) = st.map.get_mut(&key) {
                entry.1 = tick;
                let grid = Arc::clone(&entry.0);
                st.hits += 1;
                return grid;
            }
        }
        // Compute outside the lock: transforms are expensive and other
        // bands' lookups should not serialize behind this one.
        let grid = Arc::new(make());
        let mut st = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        st.misses += 1;
        st.tick += 1;
        let tick = st.tick;
        let added = grid_bytes(grid.len());
        if let Some(prev) = st.map.insert(key, (Arc::clone(&grid), tick)) {
            st.bytes -= grid_bytes(prev.0.len());
        }
        st.bytes += added;
        while st.bytes > self.budget && st.map.len() > 1 {
            let oldest = st
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| *k);
            match oldest {
                Some(k) => {
                    if let Some((g, _)) = st.map.remove(&k) {
                        st.bytes -= grid_bytes(g.len());
                    }
                }
                None => break,
            }
        }
        grid
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        let st = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (st.hits, st.misses)
    }

    /// Bytes currently held.
    pub fn bytes(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).bytes
    }

    /// Drops every entry (the `Arc`s keep outstanding grids alive).
    pub fn clear(&self) {
        let mut st = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        st.map.clear();
        st.bytes = 0;
    }
}

/// Counts of work done by an MTXEL engine (for the perf model).
#[derive(Debug, Default)]
pub struct MtxelStats {
    /// 3-D FFTs executed.
    pub ffts: AtomicU64,
    /// Band-pair products formed.
    pub pairs: AtomicU64,
}

/// FFT-based matrix-element engine between a wavefunction sphere and an
/// output sphere (both on the same lattice, sharing the same FFT box).
pub struct Mtxel {
    plan: Fft3d,
    /// Scatter indices of the wavefunction sphere into the FFT box.
    wfn_scatter: Vec<usize>,
    /// Gather indices: for output G, position of `-G` in the box (the
    /// correlation `M^G = (1/N) FFT[psi_m^* psi_n](-G)`).
    out_gather: Vec<usize>,
    /// Cartesian G-vectors of the wavefunction sphere (for the k.p head).
    wfn_cart: Vec<[f64; 3]>,
    npts: usize,
    stats: MtxelStats,
}

impl Mtxel {
    /// Builds the engine. `wfn_sph` and `out_sph` must come from the same
    /// lattice. The FFT box is the smallest alias-free one for this
    /// kernel: the product `psi_m^* psi_n` has spectral support up to
    /// `2 m_psi` per axis, and reading components inside the output sphere
    /// (`<= m_out`) stays alias-free for box sizes `>= 2 m_psi + m_out + 1`
    /// — substantially smaller than the `4 m_psi + 1` box the Hamiltonian
    /// difference-lookup table needs.
    pub fn new(wfn_sph: &GSphere, out_sph: &GSphere) -> Self {
        let max_m = |sph: &GSphere, axis: usize| {
            sph.miller
                .iter()
                .map(|m| m[axis].unsigned_abs() as usize)
                .max()
                .unwrap_or(0)
        };
        let dim =
            |axis: usize| bgw_fft::good_size(2 * max_m(wfn_sph, axis) + max_m(out_sph, axis) + 1);
        let (nx, ny, nz) = (dim(0), dim(1), dim(2));
        let plan = Fft3d::new(nx, ny, nz);
        let wrap = |v: i32, n: usize| -> usize {
            let n = n as i32;
            (((v % n) + n) % n) as usize
        };
        let wfn_scatter: Vec<usize> = (0..wfn_sph.len())
            .map(|i| {
                let m = wfn_sph.miller[i];
                (wrap(m[0], nx) * ny + wrap(m[1], ny)) * nz + wrap(m[2], nz)
            })
            .collect();
        let out_gather: Vec<usize> = (0..out_sph.len())
            .map(|i| {
                let m = out_sph.miller[i];
                // position of -G in the box
                (wrap(-m[0], nx) * ny + wrap(-m[1], ny)) * nz + wrap(-m[2], nz)
            })
            .collect();
        Self {
            npts: plan.len(),
            plan,
            wfn_scatter,
            out_gather,
            wfn_cart: wfn_sph.cart.clone(),
            stats: MtxelStats::default(),
        }
    }

    /// The `q -> 0` (head) matrix element by k.p perturbation theory:
    /// `<m| e^{i q.r} |n> ~ i q . <m|r|n>` with
    /// `<m|r|n> = -2 <m|grad|n> / (E_m - E_n)` (Ry units), evaluated for
    /// `q = q0 x^`. A Gamma-only supercell calculation needs this because
    /// the naive `G = 0` element vanishes by orthogonality while the
    /// screening head is physical and finite.
    ///
    /// Returns 1 for `m == n`, 0 for distinct (quasi-)degenerate bands,
    /// and the k.p value otherwise. `q0 = 0` reduces to the naive elements.
    pub fn head_kp(&self, wf: &Wavefunctions, m: usize, n: usize, q0: f64) -> Complex64 {
        if m == n {
            return Complex64::ONE;
        }
        if q0 == 0.0 {
            return Complex64::ZERO;
        }
        self.kp_element(wf, m, n, [q0, 0.0, 0.0])
    }

    /// The k.p matrix element `<m| e^{i q.r} |n> ~ i q . <m|r|n>` for an
    /// arbitrary small `q` (bohr^-1); returns 0 for (quasi-)degenerate
    /// pairs. Used for the q -> 0 heads and for optical dipoles.
    pub fn kp_element(&self, wf: &Wavefunctions, m: usize, n: usize, q: [f64; 3]) -> Complex64 {
        let de = wf.energies[m] - wf.energies[n];
        if de.abs() < 1e-9 {
            return Complex64::ZERO;
        }
        // sum_G conj(c_m(G)) (q . G) c_n(G)
        let mut acc = Complex64::ZERO;
        let rm = wf.coeffs.row(m);
        let rn = wf.coeffs.row(n);
        for (g, cart) in self.wfn_cart.iter().enumerate() {
            let qg = q[0] * cart[0] + q[1] * cart[1] + q[2] * cart[2];
            if qg != 0.0 {
                acc = acc.conj_mul_add(rm[g], rn[g].scale(qg));
            }
        }
        acc.scale(2.0 / de)
    }

    /// Number of output G-vectors.
    pub fn n_out(&self) -> usize {
        self.out_gather.len()
    }

    /// FFT and pair counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.stats.ffts.load(Ordering::Relaxed),
            self.stats.pairs.load(Ordering::Relaxed),
        )
    }

    /// Transforms band `n` of `wf` to real space (amplitude on the box).
    pub fn to_real_space(&self, wf: &Wavefunctions, band: usize) -> Vec<Complex64> {
        let mut grid = vec![Complex64::ZERO; self.npts];
        for (g, &pos) in self.wfn_scatter.iter().enumerate() {
            grid[pos] = wf.coeffs[(band, g)];
        }
        self.plan.process(&mut grid, Direction::Inverse);
        // undo the 1/N of the inverse so grid holds sum_G c e^{iGr}
        let s = self.npts as f64;
        for z in grid.iter_mut() {
            *z = z.scale(s);
        }
        self.stats.ffts.fetch_add(1, Ordering::Relaxed);
        grid
    }

    /// Transforms an arbitrary coefficient vector on the wavefunction
    /// sphere to real space (used by GWPT for the first-order states).
    pub fn vector_to_real_space(&self, coeffs: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(coeffs.len(), self.wfn_scatter.len());
        let mut grid = vec![Complex64::ZERO; self.npts];
        for (g, &pos) in self.wfn_scatter.iter().enumerate() {
            grid[pos] = coeffs[g];
        }
        self.plan.process(&mut grid, Direction::Inverse);
        let s = self.npts as f64;
        for z in grid.iter_mut() {
            *z = z.scale(s);
        }
        self.stats.ffts.fetch_add(1, Ordering::Relaxed);
        grid
    }

    /// [`Mtxel::to_real_space`] through a caller-owned [`BandCache`]
    /// keyed by band index. The cache must be used with a single
    /// `Wavefunctions` object (band indices alias across different ones).
    pub fn to_real_space_cached(
        &self,
        cache: &BandCache,
        wf: &Wavefunctions,
        band: usize,
    ) -> Arc<Vec<Complex64>> {
        cache.get_or(band, || self.to_real_space(wf, band))
    }

    /// [`Mtxel::vector_to_real_space`] through a caller-owned cache under
    /// a caller-chosen `key` (GWPT keys first-order states by row index).
    pub fn vector_to_real_space_cached(
        &self,
        cache: &BandCache,
        key: usize,
        coeffs: &[Complex64],
    ) -> Arc<Vec<Complex64>> {
        cache.get_or(key, || self.vector_to_real_space(coeffs))
    }

    /// Transforms several bands of `wf` to real space in one batched pass
    /// over the pooled 3-D FFT (grids are distributed over workers; each
    /// grid's axis passes run the batched line kernel inline).
    pub fn to_real_space_many(&self, wf: &Wavefunctions, bands: &[usize]) -> Vec<Vec<Complex64>> {
        let mut grids: Vec<Vec<Complex64>> = bands
            .iter()
            .map(|&b| {
                let mut grid = vec![Complex64::ZERO; self.npts];
                for (g, &pos) in self.wfn_scatter.iter().enumerate() {
                    grid[pos] = wf.coeffs[(b, g)];
                }
                grid
            })
            .collect();
        self.plan.inverse_many(&mut grids);
        let s = self.npts as f64;
        for grid in grids.iter_mut() {
            for z in grid.iter_mut() {
                *z = z.scale(s);
            }
        }
        self.stats
            .ffts
            .fetch_add(bands.len() as u64, Ordering::Relaxed);
        grids
    }

    /// Batched [`Mtxel::vector_to_real_space`] over several coefficient
    /// vectors (GWPT transforms every first-order state once this way).
    pub fn vectors_to_real_space_many(&self, vecs: &[&[Complex64]]) -> Vec<Vec<Complex64>> {
        let mut grids: Vec<Vec<Complex64>> = vecs
            .iter()
            .map(|coeffs| {
                assert_eq!(coeffs.len(), self.wfn_scatter.len());
                let mut grid = vec![Complex64::ZERO; self.npts];
                for (g, &pos) in self.wfn_scatter.iter().enumerate() {
                    grid[pos] = coeffs[g];
                }
                grid
            })
            .collect();
        self.plan.inverse_many(&mut grids);
        let s = self.npts as f64;
        for grid in grids.iter_mut() {
            for z in grid.iter_mut() {
                *z = z.scale(s);
            }
        }
        self.stats
            .ffts
            .fetch_add(vecs.len() as u64, Ordering::Relaxed);
        grids
    }

    /// Computes `M_mn^G` over the output sphere given the two bands'
    /// real-space amplitudes.
    pub fn pair_from_real(&self, psi_m_r: &[Complex64], psi_n_r: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(psi_m_r.len(), self.npts);
        assert_eq!(psi_n_r.len(), self.npts);
        let mut prod: Vec<Complex64> = psi_m_r
            .iter()
            .zip(psi_n_r)
            .map(|(m, n)| m.conj() * *n)
            .collect();
        self.plan.process(&mut prod, Direction::Forward);
        self.stats.ffts.fetch_add(1, Ordering::Relaxed);
        self.stats.pairs.fetch_add(1, Ordering::Relaxed);
        let norm = 1.0 / self.npts as f64;
        self.out_gather
            .iter()
            .map(|&pos| prod[pos].scale(norm))
            .collect()
    }

    /// Convenience: `M_mn^G` for a band pair of `wf`.
    pub fn band_pair(&self, wf: &Wavefunctions, m: usize, n: usize) -> Vec<Complex64> {
        let pm = self.to_real_space(wf, m);
        let pn = self.to_real_space(wf, n);
        self.pair_from_real(&pm, &pn)
    }

    /// Reference O(N_G^psi * N_G) direct evaluation (correctness oracle).
    pub fn band_pair_direct(
        wf: &Wavefunctions,
        wfn_sph: &GSphere,
        out_sph: &GSphere,
        m: usize,
        n: usize,
    ) -> Vec<Complex64> {
        let mut out = vec![Complex64::ZERO; out_sph.len()];
        for (gi, slot) in out.iter_mut().enumerate() {
            let gm = out_sph.miller[gi];
            let mut acc = Complex64::ZERO;
            for gp in 0..wfn_sph.len() {
                let mp = wfn_sph.miller[gp];
                // c_m^*(G' + G) c_n(G')
                if let Some(gshift) = wfn_sph.find([mp[0] + gm[0], mp[1] + gm[1], mp[2] + gm[2]]) {
                    acc = acc.conj_mul_add(wf.coeffs[(m, gshift)], wf.coeffs[(n, gp)]);
                }
            }
            *slot = acc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgw_pwdft::{solve_bands, Crystal, Species};

    fn setup() -> (GSphere, GSphere, Wavefunctions) {
        let c = Crystal::diamond(Species::Si, bgw_pwdft::pseudo::SI_A0);
        let wfn = GSphere::new(&c.lattice, 2.4);
        let eps = GSphere::new(&c.lattice, 1.2);
        let wf = solve_bands(&c, &wfn, 20);
        (wfn, eps, wf)
    }

    #[test]
    fn fft_matches_direct_evaluation() {
        let (wfn, eps, wf) = setup();
        let eng = Mtxel::new(&wfn, &eps);
        for (m, n) in [(0usize, 0usize), (0, 5), (3, 7), (10, 2)] {
            let fast = eng.band_pair(&wf, m, n);
            let slow = Mtxel::band_pair_direct(&wf, &wfn, &eps, m, n);
            let err = fast
                .iter()
                .zip(&slow)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-10, "pair ({m},{n}): err {err}");
        }
    }

    #[test]
    fn diagonal_g0_is_norm() {
        // M_nn^{G=0} = <n|n> = 1.
        let (wfn, eps, wf) = setup();
        let eng = Mtxel::new(&wfn, &eps);
        for n in [0usize, 4, 9] {
            let m = eng.band_pair(&wf, n, n);
            assert!((m[0] - Complex64::ONE).abs() < 1e-9, "band {n}: {}", m[0]);
        }
    }

    #[test]
    fn offdiagonal_g0_is_orthogonality() {
        // M_mn^{G=0} = <m|n> = 0 for m != n.
        let (wfn, eps, wf) = setup();
        let eng = Mtxel::new(&wfn, &eps);
        let m = eng.band_pair(&wf, 2, 6);
        assert!(m[0].abs() < 1e-9, "overlap leak {}", m[0]);
    }

    #[test]
    fn hermitian_symmetry() {
        // M_mn^G = conj(M_nm^{-G}).
        let (wfn, eps, wf) = setup();
        let eng = Mtxel::new(&wfn, &eps);
        let mn = eng.band_pair(&wf, 1, 4);
        let nm = eng.band_pair(&wf, 4, 1);
        for (g, &mng) in mn.iter().enumerate().take(eps.len()) {
            let gm = eps.minus(g);
            assert!(
                (mng - nm[gm].conj()).abs() < 1e-10,
                "g = {g}: {} vs conj {}",
                mng,
                nm[gm]
            );
        }
    }

    #[test]
    fn band_cache_hits_reuse_and_budget_evicts() {
        let (wfn, eps, wf) = setup();
        let eng = Mtxel::new(&wfn, &eps);
        let npts = eng.to_real_space(&wf, 0).len();
        let cache = BandCache::for_grids(npts, 2);
        // First touch of each band misses; repeats hit and return the
        // exact same allocation.
        let a = eng.to_real_space_cached(&cache, &wf, 3);
        let b = eng.to_real_space_cached(&cache, &wf, 3);
        assert!(Arc::ptr_eq(&a, &b));
        let direct = eng.to_real_space(&wf, 3);
        assert_eq!(a.as_slice(), direct.as_slice());
        let (h, m) = cache.stats();
        assert_eq!((h, m), (1, 1));
        // Budget of 2 grids: touching a third band must evict the oldest.
        eng.to_real_space_cached(&cache, &wf, 4);
        eng.to_real_space_cached(&cache, &wf, 5);
        assert!(cache.bytes() <= npts * std::mem::size_of::<Complex64>() * 2);
        // Band 3 was evicted: next touch is a miss but still correct.
        let a2 = eng.to_real_space_cached(&cache, &wf, 3);
        assert_eq!(a2.as_slice(), direct.as_slice());
        let (_, m2) = cache.stats();
        assert!(m2 >= 4);
        cache.clear();
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn tiny_budget_degrades_to_most_recent_band() {
        let (wfn, eps, wf) = setup();
        let eng = Mtxel::new(&wfn, &eps);
        let cache = BandCache::with_budget(1); // below one grid
        let a = eng.to_real_space_cached(&cache, &wf, 0);
        let b = eng.to_real_space_cached(&cache, &wf, 0);
        assert!(Arc::ptr_eq(&a, &b), "most recent band must stay cached");
        assert_eq!(a.as_slice(), eng.to_real_space(&wf, 0).as_slice());
    }

    #[test]
    fn to_real_space_many_matches_single() {
        let (wfn, eps, wf) = setup();
        let eng = Mtxel::new(&wfn, &eps);
        let bands = [0usize, 2, 7, 11];
        let grids = eng.to_real_space_many(&wf, &bands);
        for (i, &b) in bands.iter().enumerate() {
            let want = eng.to_real_space(&wf, b);
            assert_eq!(grids[i].as_slice(), want.as_slice(), "band {b}");
        }
    }

    #[test]
    fn alias_free_box_holds_at_max_output_g() {
        // The box rule is n >= 2 m_psi + m_out + 1 per axis; the claim is
        // that reading M at the *largest* output |m| is still alias-free.
        // Check the FFT path against the direct convolution exactly at the
        // output G-vectors of maximal |m| along each axis.
        let (wfn, eps, wf) = setup();
        let eng = Mtxel::new(&wfn, &eps);
        let fast = eng.band_pair(&wf, 1, 6);
        let slow = Mtxel::band_pair_direct(&wf, &wfn, &eps, 1, 6);
        for axis in 0..3 {
            let mmax = eps
                .miller
                .iter()
                .map(|m| m[axis].unsigned_abs())
                .max()
                .unwrap();
            for (gi, m) in eps.miller.iter().enumerate() {
                if m[axis].unsigned_abs() == mmax {
                    let err = (fast[gi] - slow[gi]).abs();
                    assert!(err < 1e-10, "axis {axis} boundary G {m:?}: err {err}");
                }
            }
        }
    }

    #[test]
    fn reusing_real_space_amplitudes() {
        let (wfn, eps, wf) = setup();
        let eng = Mtxel::new(&wfn, &eps);
        let p1 = eng.to_real_space(&wf, 1);
        let p4 = eng.to_real_space(&wf, 4);
        let via_cache = eng.pair_from_real(&p1, &p4);
        let direct = eng.band_pair(&wf, 1, 4);
        let err = via_cache
            .iter()
            .zip(&direct)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-13);
        let (ffts, pairs) = eng.stats();
        assert!(ffts >= 5 && pairs >= 2);
    }
}
