//! `bgw-perf`: performance models for the paper's experiments.
//!
//! Carries the published hardware descriptions of Frontier, Aurora, and
//! Perlmutter (Sec. 6), the FLOP-count models of Eqs. 7-8 with the
//! paper's measured `alpha` prefactors (Table 3), and a time/scaling model
//! that executes the paper's data decompositions symbolically (pools,
//! per-rank `G'` splits, `(n, E)` ZGEMM pairs) and charges calibrated
//! per-unit rates — the documented substitution for the machines we do
//! not have (DESIGN.md Sec. 2).

#![warn(missing_docs)]

pub mod counters;
pub mod epsilonmodel;
pub mod flopmodel;
pub mod machine;
pub mod report;
pub mod roofline;
pub mod timemodel;
pub mod validate;

pub use counters::CounterSnapshot;
pub use epsilonmodel::{epsilon_time, epsilon_weak_scaling, EpsilonTimes, EpsilonWorkload};
pub use flopmodel::{gpp_diag_flops, gpp_offdiag_flops, ALPHA_AURORA, ALPHA_FRONTIER};
pub use machine::Machine;
pub use report::{fmt_pflops, fmt_secs, Table};
pub use roofline::{attainable, diag_intensity, offdiag_intensity, roofline_point, RooflinePoint};
pub use timemodel::{
    sigma_time, strong_scaling, weak_scaling, Efficiencies, Kernel, ScalingPoint, SigmaWorkload,
    TimeBreakdown,
};
pub use validate::{ModelCheck, ValidationTable};
