//! GWPT: electron-phonon coupling at the many-body level (paper Sec. 5.1).
//!
//! Reproduces the structure of the paper's LiH998 GWPT run at model scale:
//! several atomic-displacement perturbations (`N_p`), each giving the
//! DFPT-level coupling `g^DFPT` and the GW-corrected `g^GW = g^DFPT +
//! dSigma`, for the bands around the gap. The perturbations are
//! independent — the paper parallelizes them across the machine; here they
//! run in a loop with per-perturbation timing.
//!
//! Run with: `cargo run --release --example gwpt_phonons`

use berkeleygw_rs::core::gwpt::gwpt_for_perturbation;
use berkeleygw_rs::core::mtxel::Mtxel;
use berkeleygw_rs::linalg::GemmBackend;
use berkeleygw_rs::num::{UniformGrid, RYDBERG_EV};
use berkeleygw_rs::pwdft::{lih_defect, Perturbation};

fn main() {
    let mut system = lih_defect(1, 3.6);
    system.n_bands = 40;
    let setup = bgw_bench_setup(system);
    let ctx = &setup.ctx;
    let mtxel = Mtxel::new(&setup.wfn_sph, &setup.eps_sph);
    let e_grid = UniformGrid::new(
        ctx.sigma_energies[0] - 0.3,
        *ctx.sigma_energies.last().unwrap() + 0.3,
        5,
    );

    // N_p = 6 perturbations: two atoms x three Cartesian directions,
    // matching the paper's LiH998 GWPT setup ("six atomic displacements").
    let perturbations: Vec<(usize, usize)> =
        (0..2).flat_map(|a| (0..3).map(move |ax| (a, ax))).collect();
    println!(
        "system {}: N_Sigma = {}, N_b = {}, N_G = {}, N_p = {}\n",
        setup.system.name,
        ctx.n_sigma(),
        ctx.n_b(),
        ctx.n_g(),
        perturbations.len()
    );
    println!("pert (atom,axis)   |g_DFPT| max (eV/bohr)   |g_GW| max   GW/DFPT   kernel s");
    for &(atom, axis) in &perturbations {
        let pert = Perturbation::new(&setup.system.crystal, &setup.wfn_sph, atom, axis);
        let r = gwpt_for_perturbation(
            ctx,
            &setup.wf,
            &mtxel,
            &pert,
            &setup.vsqrt,
            &e_grid,
            GemmBackend::Parallel,
        );
        let g_dfpt = r.g_dfpt.max_abs() * RYDBERG_EV;
        let g_gw = r.g_gw.max_abs() * RYDBERG_EV;
        println!(
            "      ({atom},{axis})        {g_dfpt:>12.4}        {g_gw:>10.4}   {:>7.3}   {:.2}",
            g_gw / g_dfpt.max(1e-12),
            r.seconds
        );
    }
    println!(
        "\nThe GW/DFPT ratio is the correlation enhancement of the\n\
         electron-phonon coupling — the physics GWPT was built to capture\n\
         (paper refs [6, 7]: up to ~2x in correlated materials)."
    );
}

/// Builds the shared GW context (same plumbing as the bench harness).
fn bgw_bench_setup(system: berkeleygw_rs::pwdft::ModelSystem) -> bgw_bench_like::Setup {
    bgw_bench_like::build(system)
}

/// Minimal local copy of the bench-harness setup so the example only
/// depends on the published library crates.
mod bgw_bench_like {
    use berkeleygw_rs::core::chi::{ChiConfig, ChiEngine};
    use berkeleygw_rs::core::coulomb::Coulomb;
    use berkeleygw_rs::core::epsilon::EpsilonInverse;
    use berkeleygw_rs::core::gpp::GppModel;
    use berkeleygw_rs::core::mtxel::Mtxel;
    use berkeleygw_rs::core::sigma::SigmaContext;
    use berkeleygw_rs::pwdft::{
        charge_density_g, solve_bands, GSphere, ModelSystem, Wavefunctions,
    };

    pub struct Setup {
        pub system: ModelSystem,
        pub wfn_sph: GSphere,
        pub eps_sph: GSphere,
        pub wf: Wavefunctions,
        pub vsqrt: Vec<f64>,
        pub ctx: SigmaContext,
    }

    pub fn build(system: ModelSystem) -> Setup {
        let wfn_sph = system.wfn_sphere();
        let eps_sph = system.eps_sphere();
        let wf = solve_bands(&system.crystal, &wfn_sph, system.n_bands.min(wfn_sph.len()));
        let coulomb = Coulomb::bulk_for_cell(system.crystal.lattice.volume());
        let mtxel = Mtxel::new(&wfn_sph, &eps_sph);
        let cfg = ChiConfig {
            q0: coulomb.q0,
            ..ChiConfig::default()
        };
        let chi0 = ChiEngine::new(&wf, &mtxel, cfg).chi_static();
        let eps_inv = EpsilonInverse::build(&[chi0], &[0.0], &coulomb, &eps_sph)
            .expect("dielectric matrix must be invertible");
        let rho = charge_density_g(&wf, &wfn_sph);
        let gpp = GppModel::new(
            &eps_inv,
            &eps_sph,
            &wfn_sph,
            &rho,
            system.crystal.lattice.volume(),
        );
        let vsqrt = coulomb.sqrt_on_sphere(&eps_sph);
        let nv = wf.n_valence;
        let sigma_bands: Vec<usize> = (nv.saturating_sub(2)..(nv + 2).min(wf.n_bands())).collect();
        let ctx = SigmaContext::build(&wf, &mtxel, gpp, &vsqrt, &sigma_bands, coulomb.q0);
        Setup {
            system,
            wfn_sph,
            eps_sph,
            wf,
            vsqrt,
            ctx,
        }
    }
}
