//! A production-style convergence study: sweep the band sum and the
//! dielectric cutoff, extrapolate the quasiparticle gap — the workflow
//! behind every published GW number (and the reason the paper's Table 2
//! lists tens of thousands of bands).
//!
//! Run with: `cargo run --release --example convergence_study`

use berkeleygw_rs::core::convergence::{sweep_bands, sweep_eps_cutoff};
use berkeleygw_rs::core::GwConfig;
use berkeleygw_rs::num::RYDBERG_EV;
use berkeleygw_rs::pwdft::si_bulk;

fn main() {
    let sys = si_bulk(1, 2.6);
    let cfg = GwConfig::default();

    println!("band-sum convergence (N_b sweep):");
    println!("  N_b    QP gap (eV)   step (meV)");
    let study = sweep_bands(&sys, &cfg, &[22, 28, 36, 44, 52]);
    let mut prev: Option<f64> = None;
    for p in &study.points {
        let step = prev.map_or("     -".to_string(), |q: f64| {
            format!("{:>6.1}", (p.gap_qp_ry - q).abs() * RYDBERG_EV * 1000.0)
        });
        println!(
            "  {:>3}    {:>10.4}   {step}",
            p.parameter as usize,
            p.gap_qp_ry * RYDBERG_EV
        );
        prev = Some(p.gap_qp_ry);
    }
    println!(
        "  1/N_b -> 0 extrapolation: {:.4} eV\n",
        study.extrapolated_gap_ry.unwrap() * RYDBERG_EV
    );

    println!("dielectric-cutoff convergence (ecut_eps sweep):");
    println!("  ecut (Ry)   N_G proxy   QP gap (eV)");
    let mut sys2 = sys.clone();
    sys2.n_bands = 36;
    let study2 = sweep_eps_cutoff(&sys2, &cfg, &[0.45, 0.6, 0.8, 1.0]);
    for p in &study2.points {
        println!(
            "  {:>8.2}   {:>9}   {:>10.4}",
            p.parameter,
            "-",
            p.gap_qp_ry * RYDBERG_EV
        );
    }
    println!(
        "\nconvergence diagnostics: band sweep last step {:.1} meV (max {:.1});\n\
         the 1/N_b tail is why the paper's Parabands module generates tens\n\
         of thousands of empty states — and why the pseudobands compression\n\
         of Sec. 5.3 pays off.",
        study.last_step() * RYDBERG_EV * 1000.0,
        study.max_step() * RYDBERG_EV * 1000.0
    );
}
