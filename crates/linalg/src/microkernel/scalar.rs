//! Portable scalar microkernel — the fallback every host can execute.
//!
//! This is the original 4x4 FMA lattice from the five-loop ZGEMM, behind
//! the unified raw-pointer kernel signature of the dispatch layer. It is
//! selected at *runtime* like the SIMD variants, so telemetry always
//! reports which kernel actually ran — previously the `fmadd` shim below
//! silently decided mul+add versus fused at **compile time**, and a build
//! without `-C target-cpu` degraded FMA-capable hosts with no trace of it.

/// Fused multiply-add that only uses the hardware FMA when the *compile
/// target* has one; `f64::mul_add` without FMA lowers to a (slow) libm
/// call. FMA-capable hosts running a generic build never reach this
/// kernel — runtime dispatch sends them to the AVX2/AVX-512/NEON variants
/// whose fused arithmetic is guaranteed by `#[target_feature]` — so the
/// compile-time choice here only governs genuinely scalar hosts.
#[inline(always)]
fn fmadd(a: f64, b: f64, c: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        c + a * b
    }
}

/// Scalar `4 x 4` register-tile kernel over split re/im panels.
///
/// Layout contract (shared by every kernel in this module tree):
/// `a*[p*MR + i]` is row `i` of depth step `p`, `b*[p*NR + j]` is column
/// `j`, and the `MR x NR` output tile is written row-major to `c*`
/// (overwriting — the caller owns accumulation into `C`).
///
/// # Safety
/// `are`/`aim` must be readable for `kk*4` elements, `bre`/`bim` for
/// `kk*4`, and `cre`/`cim` writable for `16`.
pub unsafe fn kernel_4x4(
    kk: usize,
    are: *const f64,
    aim: *const f64,
    bre: *const f64,
    bim: *const f64,
    cre: *mut f64,
    cim: *mut f64,
) {
    const MR: usize = 4;
    const NR: usize = 4;
    let mut acc_re = [[0.0f64; NR]; MR];
    let mut acc_im = [[0.0f64; NR]; MR];
    for p in 0..kk {
        let ap_re = are.add(p * MR);
        let ap_im = aim.add(p * MR);
        let bp_re = bre.add(p * NR);
        let bp_im = bim.add(p * NR);
        for i in 0..MR {
            let x = *ap_re.add(i);
            let y = *ap_im.add(i);
            for j in 0..NR {
                let br = *bp_re.add(j);
                let bi = *bp_im.add(j);
                acc_re[i][j] = fmadd(x, br, acc_re[i][j]);
                acc_re[i][j] = fmadd(-y, bi, acc_re[i][j]);
                acc_im[i][j] = fmadd(x, bi, acc_im[i][j]);
                acc_im[i][j] = fmadd(y, br, acc_im[i][j]);
            }
        }
    }
    for i in 0..MR {
        for j in 0..NR {
            *cre.add(i * NR + j) = acc_re[i][j];
            *cim.add(i * NR + j) = acc_im[i][j];
        }
    }
}
