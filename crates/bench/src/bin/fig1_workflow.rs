//! Regenerates paper Fig. 1 as a table: the full GW / GWPT workflow with
//! per-module timings on the scaled Table 2 roster — mean field (DFT
//! stand-in), Parabands, Epsilon (MTXEL + CHI_SUM + inversion), Sigma
//! (GPP kernel), and Dyson, plus the GWPT branch for the LiH system.

use bgw_bench::timed;
use bgw_core::workflow::{run_gpp_gw, GwConfig};
use bgw_core::{gwpt_for_perturbation, Mtxel, SigmaContext};
use bgw_linalg::GemmBackend;
use bgw_num::{UniformGrid, RYDBERG_EV};
use bgw_perf::Table;
use bgw_pwdft::Perturbation;

fn main() {
    let mut t = Table::new(
        "Fig. 1 workflow: per-module seconds across the scaled roster",
        &[
            "System",
            "atoms",
            "mean-field",
            "chi",
            "epsilon",
            "Sigma mtxel",
            "GPP kernel",
            "MF gap eV",
            "QP gap eV",
        ],
    );
    for (paper_name, sys, n_sigma) in bgw_bench::bench_roster() {
        let cfg = GwConfig {
            bands_around_gap: n_sigma / 2,
            slab: sys.name.starts_with("BN"),
            ..Default::default()
        };
        let (r, _total) = timed(|| run_gpp_gw(&sys, &cfg));
        t.row(&[
            format!("{} ({})", sys.name, paper_name),
            sys.crystal.n_atoms().to_string(),
            format!("{:.2}", r.timings.t_meanfield),
            format!("{:.2}", r.timings.t_chi),
            format!("{:.3}", r.timings.t_epsilon),
            format!("{:.2}", r.timings.t_mtxel_sigma),
            format!("{:.3}", r.timings.t_sigma),
            format!("{:.2}", r.gap_mf_ry * RYDBERG_EV),
            format!("{:.2}", r.gap_qp_ry * RYDBERG_EV),
        ]);
    }
    print!("{}", t.render());

    // GWPT branch (Fig. 1c): one perturbation on the LiH defect system.
    let mut sys = bgw_pwdft::lih_defect(1, 3.6);
    sys.n_bands = 36;
    let setup = bgw_bench::build_setup(sys, 4);
    let mtxel = Mtxel::new(&setup.wfn_sph, &setup.eps_sph);
    let ctx: &SigmaContext = &setup.ctx;
    let pert = Perturbation::new(&setup.system.crystal, &setup.wfn_sph, 0, 0);
    let e_grid = UniformGrid::new(
        ctx.sigma_energies[0] - 0.3,
        *ctx.sigma_energies.last().unwrap() + 0.3,
        5,
    );
    let (g, secs) = timed(|| {
        gwpt_for_perturbation(
            ctx,
            &setup.wf,
            &mtxel,
            &pert,
            &setup.vsqrt,
            &e_grid,
            GemmBackend::Parallel,
        )
    });
    println!(
        "\nGWPT branch ({}): dSigma/dR kernel {secs:.2} s per perturbation,\n\
         max |g_DFPT| = {:.4} eV/bohr, max |g_GW| = {:.4} eV/bohr\n\
         (the N_p perturbations run independently — the paper's massively\n\
         parallel dimension).",
        setup.system.name,
        g.g_dfpt.max_abs() * RYDBERG_EV,
        g.g_gw.max_abs() * RYDBERG_EV,
    );
}
